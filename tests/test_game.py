"""Tests for the LoadBalancingGame facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import StrategyProfile
from repro.game import LoadBalancingGame


@pytest.fixture(scope="module")
def game():
    return LoadBalancingGame.from_rates(
        [100.0, 50.0, 20.0, 20.0], [60.0, 30.0, 10.0]
    )


class TestConstruction:
    def test_from_rates(self, game):
        assert game.system.n_computers == 4
        assert game.system.n_users == 3

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancingGame.from_rates([1.0], [5.0])


class TestSolutions:
    def test_nash_converges_and_verifies(self, game):
        result = game.nash()
        assert result.converged
        cert = game.verify(result.profile)
        assert cert.epsilon < 1e-5

    def test_all_schemes_present_in_compare(self, game):
        results = game.compare()
        assert set(results) == {"NASH", "GOS", "IOS", "PS", "NBS"}

    def test_scheme_orderings(self, game):
        results = game.compare()
        gos = results["GOS"].overall_time
        for name in ("NASH", "IOS", "PS", "NBS"):
            assert results[name].overall_time >= gos - 1e-9

    def test_price_of_anarchy_at_least_one(self, game):
        assert game.price_of_anarchy() >= 1.0 - 1e-9

    def test_best_response_delegation(self, game):
        profile = StrategyProfile.proportional(game.system)
        reply = game.best_response(0, profile)
        assert reply.fractions.sum() == pytest.approx(1.0)


class TestCaching:
    def test_memoized_identity(self, game):
        assert game.nash() is game.nash()
        assert game.global_optimal() is game.global_optimal()

    def test_invalidate_clears(self):
        local = LoadBalancingGame.from_rates([10.0, 5.0], [4.0])
        first = local.nash()
        local.invalidate()
        assert local.nash() is not first
        np.testing.assert_allclose(
            local.nash().user_times, first.user_times
        )

    def test_init_variants_cached_separately(self, game):
        prop = game.nash(init="proportional")
        zero = game.nash(init="zero")
        assert prop is not zero
        np.testing.assert_allclose(
            prop.user_times, zero.user_times, rtol=1e-5
        )


class TestSummary:
    def test_summary_contains_all_schemes(self, game):
        text = game.summary()
        for name in ("NASH", "GOS", "IOS", "PS", "NBS"):
            assert name in text
        assert "price of anarchy" in text
