"""Round-trip tests for JSON persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import StrategyProfile
from repro.experiments import table1
from repro.schemes import NashScheme
from repro.serialization import (
    dump_json,
    load_json,
    profile_from_dict,
    profile_to_dict,
    scheme_result_from_dict,
    scheme_result_to_dict,
    system_from_dict,
    system_to_dict,
    table_from_dict,
    table_to_dict,
)
from repro.workloads import paper_table1_system


class TestSystemRoundTrip:
    def test_exact_rates(self, table1_medium):
        clone = system_from_dict(system_to_dict(table1_medium))
        np.testing.assert_array_equal(
            clone.service_rates, table1_medium.service_rates
        )
        np.testing.assert_array_equal(
            clone.arrival_rates, table1_medium.arrival_rates
        )
        assert clone.computer_names == table1_medium.computer_names

    def test_kind_checked(self):
        with pytest.raises(ValueError):
            system_from_dict({"kind": "Other"})


class TestProfileRoundTrip:
    def test_exact_fractions(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        clone = profile_from_dict(profile_to_dict(profile))
        np.testing.assert_array_equal(clone.fractions, profile.fractions)

    def test_kind_checked(self):
        with pytest.raises(ValueError):
            profile_from_dict({"kind": "Other"})


class TestSchemeResultRoundTrip:
    def test_metrics_preserved(self, table1_small):
        result = NashScheme().allocate(table1_small)
        clone = scheme_result_from_dict(scheme_result_to_dict(result))
        assert clone.scheme == "NASH"
        assert clone.overall_time == result.overall_time
        assert clone.fairness == result.fairness
        np.testing.assert_array_equal(clone.user_times, result.user_times)
        np.testing.assert_array_equal(
            clone.profile.fractions, result.profile.fractions
        )

    def test_extras_serialized(self, table1_small):
        result = NashScheme().allocate(table1_small)
        payload = scheme_result_to_dict(result)
        assert payload["extra"]["converged"] is True
        assert payload["dropped_extras"] == []


class TestTableRoundTrip:
    def test_table1(self):
        artifact = table1.run()
        clone = table_from_dict(table_to_dict(artifact))
        assert clone.experiment_id == artifact.experiment_id
        assert clone.columns == artifact.columns
        assert list(clone.rows) == [dict(r) for r in artifact.rows]
        assert clone.to_ascii() == artifact.to_ascii()


class TestFileHelpers:
    def test_dump_and_load_system(self, tmp_path, table1_small):
        path = tmp_path / "system.json"
        dump_json(table1_small, path)
        clone = load_json(path)
        np.testing.assert_array_equal(
            clone.service_rates, table1_small.service_rates
        )

    def test_dump_and_load_table(self, tmp_path):
        path = tmp_path / "t1.json"
        dump_json(table1.run(), path)
        clone = load_json(path)
        assert clone.experiment_id == "T1"

    def test_unsupported_type(self, tmp_path):
        with pytest.raises(TypeError):
            dump_json(object(), tmp_path / "bad.json")

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text('{"kind": "Alien"}')
        with pytest.raises(ValueError):
            load_json(path)
