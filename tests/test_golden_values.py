"""Golden-value regression tests.

These pin the exact numbers recorded in EXPERIMENTS.md so that future
refactors cannot silently change what the reproduction reports.  All
values are analytic (deterministic), so equality is asserted to many
digits; if an intentional algorithm change moves one, update both the
test and EXPERIMENTS.md together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nash import compute_nash_equilibrium
from repro.schemes import (
    GlobalOptimalScheme,
    IndividualOptimalScheme,
    NashScheme,
    ProportionalScheme,
)
from repro.workloads import paper_table1_system, skewed_system, table1_service_rates


class TestTable1Constants:
    def test_aggregate_rate(self):
        assert table1_service_rates().sum() == 510.0

    def test_rate_multiset(self):
        rates = sorted(table1_service_rates())
        assert rates == [10.0] * 6 + [20.0] * 5 + [50.0] * 3 + [100.0] * 2


class TestFigure4Goldens:
    """The analytic overall times reported in EXPERIMENTS.md."""

    CASES = {
        # rho: (nash, gos, ios, ps)
        0.1: (0.013423, 0.013423, 0.013423, 0.034858),
        0.5: (0.046075, 0.042047, 0.051282, 0.062745),
        0.9: (0.262270, 0.256230, 0.313725, 0.313725),
    }

    @pytest.mark.parametrize("rho", sorted(CASES))
    def test_overall_times(self, rho):
        system = paper_table1_system(utilization=rho)
        expected_nash, expected_gos, expected_ios, expected_ps = self.CASES[rho]
        assert NashScheme().allocate(system).overall_time == pytest.approx(
            expected_nash, abs=1e-5
        )
        assert GlobalOptimalScheme().allocate(
            system
        ).overall_time == pytest.approx(expected_gos, abs=2e-6)
        assert IndividualOptimalScheme().allocate(
            system
        ).overall_time == pytest.approx(expected_ios, abs=2e-6)
        assert ProportionalScheme().allocate(
            system
        ).overall_time == pytest.approx(expected_ps, abs=2e-6)

    def test_ps_closed_form_exact(self):
        # n / ((1-rho) * sum(mu)) at rho=0.5: 16/255.
        system = paper_table1_system(utilization=0.5)
        assert ProportionalScheme().allocate(
            system
        ).overall_time == pytest.approx(16.0 / 255.0, rel=1e-12)

    def test_ios_equals_ps_at_90(self):
        system = paper_table1_system(utilization=0.9)
        ios = IndividualOptimalScheme().allocate(system).overall_time
        ps = ProportionalScheme().allocate(system).overall_time
        assert ios == pytest.approx(ps, rel=1e-12)


class TestConvergenceGoldens:
    def test_figure2_iteration_counts(self):
        """NASH_0 = 74 and NASH_P = 69 sweeps at tolerance 1e-6."""
        system = paper_table1_system(utilization=0.6)
        zero = compute_nash_equilibrium(system, init="zero", tolerance=1e-6)
        prop = compute_nash_equilibrium(
            system, init="proportional", tolerance=1e-6
        )
        assert zero.iterations == 74
        assert prop.iterations == 69

    def test_figure3_endpoint_counts(self):
        """4 users: 15/12; 32 users: 207/178 (tolerance 1e-4)."""
        small = paper_table1_system(utilization=0.6, n_users=4)
        large = paper_table1_system(utilization=0.6, n_users=32)
        assert (
            compute_nash_equilibrium(
                small, init="zero", tolerance=1e-4
            ).iterations
            == 15
        )
        assert (
            compute_nash_equilibrium(
                small, init="proportional", tolerance=1e-4
            ).iterations
            == 12
        )
        assert (
            compute_nash_equilibrium(
                large, init="zero", tolerance=1e-4, max_sweeps=1000
            ).iterations
            == 207
        )
        assert (
            compute_nash_equilibrium(
                large, init="proportional", tolerance=1e-4, max_sweeps=1000
            ).iterations
            == 178
        )


class TestFigure6Goldens:
    def test_homogeneous_point(self):
        system = skewed_system(1.0, utilization=0.6)
        # 16 computers at 10 jobs/s, 60% load: 16/(0.4*160) = 0.25.
        assert ProportionalScheme().allocate(
            system
        ).overall_time == pytest.approx(0.25, rel=1e-12)

    def test_skew20_values(self):
        system = skewed_system(20.0, utilization=0.6)
        nash = NashScheme().allocate(system).overall_time
        gos = GlobalOptimalScheme().allocate(system).overall_time
        ps = ProportionalScheme().allocate(system).overall_time
        assert nash == pytest.approx(0.026316, abs=2e-6)
        assert gos == pytest.approx(0.025840, abs=2e-6)
        assert ps == pytest.approx(0.074074, abs=2e-6)


class TestEquilibriumGolden:
    def test_nash_user_time_at_60(self):
        """Every (symmetric) user's equilibrium time at the paper's
        flagship operating point."""
        system = paper_table1_system(utilization=0.6)
        result = compute_nash_equilibrium(system, tolerance=1e-10)
        np.testing.assert_allclose(result.user_times, 0.0626943, atol=1e-6)
