"""Metrics primitives: counters, gauges, histograms, the registry."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    DEFAULT_TIMING_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("messages")
        counter.inc()
        counter.inc(3)
        assert counter.snapshot() == 4

    def test_rejects_negative(self):
        counter = Counter("messages")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("sweep")
        gauge.set(3)
        gauge.set(7)
        assert gauge.snapshot() == 7.0


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram("timing", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # <=1.0 twice (0.5 and the inclusive edge 1.0), <=10 once, overflow once.
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_snapshot_order_independent(self):
        values = [0.002, 0.5, 3.0, 0.00001, 0.09]
        forward = Histogram("t", DEFAULT_TIMING_BOUNDS)
        backward = Histogram("t", DEFAULT_TIMING_BOUNDS)
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.snapshot() == backward.snapshot()

    def test_empty_snapshot_has_null_extrema(self):
        snapshot = Histogram("t").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None and snapshot["max"] is None

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("t", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("t", bounds=())

    def test_mean_of_empty_is_zero(self):
        assert Histogram("t").mean == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_cross_type_name_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z.second").inc(2)
        registry.counter("a.first").inc()
        registry.gauge("level").set(0.5)
        registry.histogram("lat").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a.first", "z.second"]
        assert snapshot["counters"]["z.second"] == 2
        assert snapshot["gauges"]["level"] == 0.5
        assert snapshot["histograms"]["lat"]["count"] == 1
