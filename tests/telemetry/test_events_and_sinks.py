"""Trace events and sinks: validation, JSONL round-trips, float exactness."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.telemetry.events import RESERVED_KEYS, TraceEvent, jsonable
from repro.telemetry.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TraceSink,
    iter_trace,
    read_trace,
)


class TestTraceEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="nonnegative"):
            TraceEvent(seq=-1, name="x", fields={})
        with pytest.raises(ValueError, match="nonempty"):
            TraceEvent(seq=0, name="", fields={})
        for key in RESERVED_KEYS:
            with pytest.raises(ValueError, match="reserved"):
                TraceEvent(seq=0, name="x", fields={key: 1})

    def test_json_round_trip(self):
        event = TraceEvent(
            seq=3, name="solver.sweep", fields={"index": 0, "norm": 0.1}
        )
        record = event.to_json_object()
        assert record == {
            "seq": 3, "event": "solver.sweep", "index": 0, "norm": 0.1
        }
        assert TraceEvent.from_json_object(record) == event

    def test_from_json_requires_envelope(self):
        with pytest.raises(ValueError, match="reserved key"):
            TraceEvent.from_json_object({"event": "x"})

    def test_jsonable_coerces_numpy(self):
        coerced = jsonable(
            {
                "arr": np.array([1.5, 2.5]),
                "i": np.int64(3),
                "f": np.float64(0.25),
                "b": np.bool_(True),
                "nested": (np.int32(1), [np.float32(2.0)]),
            }
        )
        assert coerced == {
            "arr": [1.5, 2.5],
            "i": 3,
            "f": 0.25,
            "b": True,
            "nested": [1, [2.0]],
        }
        assert json.dumps(coerced)  # fully JSON-native


class TestSinks:
    def test_base_sink_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TraceSink().emit(TraceEvent(0, "x", {}))
        TraceSink().close()  # close is an optional no-op hook

    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit(TraceEvent(0, "x", {}))
        sink.close()

    def test_in_memory_sink_accumulates(self):
        sink = InMemorySink()
        sink.emit(TraceEvent(0, "a", {}))
        sink.emit(TraceEvent(1, "b", {}))
        assert len(sink) == 2
        assert [e.name for e in sink.events] == ["a", "b"]
        sink.clear()
        assert len(sink) == 0

    def test_jsonl_sink_owns_path_handle(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(TraceEvent(0, "a", {"v": 1}))
        sink.close()
        sink.close()  # idempotent
        assert read_trace(path) == [TraceEvent(0, "a", {"v": 1})]

    def test_jsonl_sink_leaves_caller_handle_open(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        sink.emit(TraceEvent(0, "a", {}))
        sink.close()
        assert not handle.closed
        assert json.loads(handle.getvalue()) == {"seq": 0, "event": "a"}

    def test_floats_round_trip_exactly(self, tmp_path):
        # json serializes floats via repr (shortest round-trip), so the
        # norms a trace records reload bit-for-bit — the property the
        # norm-history acceptance test relies on.
        values = [0.1, 1e-300, 2.0 / 3.0, 1.2345678901234567e-8]
        path = tmp_path / "floats.trace.jsonl"
        sink = JsonlSink(path)
        for index, value in enumerate(values):
            sink.emit(TraceEvent(index, "v", {"x": value}))
        sink.close()
        loaded = [event.fields["x"] for event in iter_trace(path)]
        assert loaded == values  # exact equality, not approx

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.trace.jsonl"
        path.write_text('{"seq": 0, "event": "a"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.trace\.jsonl:2"):
            read_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gappy.trace.jsonl"
        path.write_text('\n{"seq": 0, "event": "a"}\n\n')
        assert [e.name for e in read_trace(path)] == ["a"]
