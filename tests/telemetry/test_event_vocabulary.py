"""The observability contract: DECLARED_EVENTS matches reality.

R010 enforces the static half (every emit site uses a declared kind);
these tests close the runtime loop: every view named in the vocabulary
is a real ``repro-trace`` subcommand, and every declared kind really is
emitted somewhere in the shipped code (no dead vocabulary accreting).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.telemetry.events import DECLARED_EVENTS

REPO_ROOT = Path(__file__).resolve().parents[2]


def _repro_trace_commands() -> set[str]:
    """The subcommand names registered by the repro-trace CLI."""
    from repro.telemetry import cli

    parser = cli._build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        return set(action.choices)
    raise AssertionError("repro-trace has no subparsers")


def _emitted_event_names() -> set[str]:
    names: set[str] = set()
    for base in ("src", "examples", "benchmarks"):
        for path in (REPO_ROOT / base).rglob("*.py"):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    names.add(node.args[0].value)
    return names


def test_every_declared_view_is_a_repro_trace_subcommand():
    commands = _repro_trace_commands()
    views = set(DECLARED_EVENTS.values())
    assert views, "vocabulary must not be empty"
    missing = views - commands
    assert not missing, (
        f"DECLARED_EVENTS names views {sorted(missing)} that repro-trace "
        f"does not provide (commands: {sorted(commands)})"
    )


def test_every_declared_kind_is_emitted_somewhere():
    emitted = _emitted_event_names()
    dead = set(DECLARED_EVENTS) - emitted
    assert not dead, (
        f"vocabulary declares kinds never emitted in shipped code: "
        f"{sorted(dead)}"
    )


def test_every_emitted_kind_is_declared():
    # The runtime mirror of R010 over the real tree.
    emitted = _emitted_event_names()
    undeclared = emitted - set(DECLARED_EVENTS)
    assert not undeclared, (
        f"shipped code emits undeclared kinds: {sorted(undeclared)}"
    )


def test_event_names_are_dotted_layer_kind():
    for name in DECLARED_EVENTS:
        layer, _, kind = name.partition(".")
        assert layer and kind, f"event name {name!r} is not layer.kind"
