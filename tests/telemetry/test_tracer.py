"""The Tracer handle and the ambient tracer stack."""

from __future__ import annotations

import pytest

from repro.telemetry.sinks import InMemorySink, read_trace
from repro.telemetry.trace import (
    DISABLED,
    Tracer,
    current_tracer,
    trace_to_file,
    use_tracer,
)


class TestTracer:
    def test_emit_assigns_monotone_seq(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.emit("a", x=1)
        tracer.emit("b")
        assert [(e.seq, e.name) for e in sink.events] == [(0, "a"), (1, "b")]
        assert sink.events[0].fields == {"x": 1}
        assert tracer.events_emitted == 2

    def test_disabled_tracer_is_inert(self):
        sink = InMemorySink()
        tracer = Tracer(sink, enabled=False)
        tracer.emit("a")
        tracer.count("c")
        tracer.gauge("g", 1.0)
        tracer.observe("h", 0.5)
        tracer.flush_metrics()
        assert len(sink) == 0
        assert len(tracer.registry) == 0
        assert tracer.events_emitted == 0

    def test_metrics_conveniences(self):
        tracer = Tracer(InMemorySink())
        tracer.count("msgs")
        tracer.count("msgs", 2)
        tracer.gauge("sweep", 4)
        tracer.observe("lat", 0.01)
        snapshot = tracer.registry.snapshot()
        assert snapshot["counters"]["msgs"] == 3
        assert snapshot["gauges"]["sweep"] == 4.0
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_flush_metrics_emits_snapshot_event(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.flush_metrics()  # empty registry: nothing to flush
        assert len(sink) == 0
        tracer.count("msgs")
        tracer.flush_metrics()
        assert sink.events[-1].name == "telemetry.metrics"
        assert sink.events[-1].fields["counters"]["msgs"] == 1


class TestAmbientStack:
    def test_default_is_disabled_singleton(self):
        assert current_tracer() is DISABLED
        assert DISABLED.enabled is False

    def test_use_tracer_pushes_and_restores(self):
        outer = Tracer(InMemorySink())
        inner = Tracer(InMemorySink())
        with use_tracer(outer) as handle:
            assert handle is outer
            assert current_tracer() is outer
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is DISABLED

    def test_stack_restored_on_exception(self):
        tracer = Tracer(InMemorySink())
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is DISABLED


class TestTraceToFile:
    def test_writes_events_and_final_metrics(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with trace_to_file(path) as tracer:
            tracer.emit("a", x=1)
            tracer.count("msgs", 5)
        events = read_trace(path)
        assert [e.name for e in events] == ["a", "telemetry.metrics"]
        assert events[-1].fields["counters"]["msgs"] == 5

    def test_closes_file_on_exception(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with pytest.raises(RuntimeError):
            with trace_to_file(path) as tracer:
                tracer.emit("a")
                raise RuntimeError("boom")
        assert [e.name for e in read_trace(path)] == ["a"]

    def test_composes_with_use_tracer(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with trace_to_file(path) as tracer, use_tracer(tracer):
            current_tracer().emit("ambient")
        assert current_tracer() is DISABLED
        assert [e.name for e in read_trace(path)] == ["ambient"]
