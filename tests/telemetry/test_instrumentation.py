"""Instrumentation of the solver, the protocol drivers and the simulator.

The acceptance property pinned here: a traced run's JSONL file ALONE
reconstructs the exact ``NashResult.norm_history`` (bit-for-bit float
equality) and per-kind message counts summing to
``ProtocolOutcome.messages_sent``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nash import NashSolver, compute_nash_equilibrium
from repro.distributed.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    run_nash_protocol_resilient,
)
from repro.distributed.faults import run_nash_protocol_lossy
from repro.distributed.runtime import run_nash_protocol
from repro.simengine.outages import ServerOutage
from repro.simengine.simulator import simulate_profile
from repro.experiments.common import run_schemes_sweep
from repro.schemes import NashScheme
from repro.telemetry.analysis import (
    event_counts,
    protocol_summary,
    reconstruct_norm_history,
    sim_summary,
    solver_summary,
    sweep_summary,
)
from repro.telemetry.sinks import InMemorySink, read_trace
from repro.telemetry.trace import Tracer, trace_to_file, use_tracer
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=4)


class TestSolverInstrumentation:
    def test_sweep_events_mirror_norm_history(self, system):
        sink = InMemorySink()
        tracer = Tracer(sink)
        result = NashSolver(tolerance=1e-8).solve(system, tracer=tracer)
        sweeps = [e for e in sink.events if e.name == "solver.sweep"]
        assert len(sweeps) == result.iterations
        assert [e.fields["index"] for e in sweeps] == list(
            range(result.iterations)
        )
        # Bit-for-bit: the event carries the very float the result holds.
        assert [e.fields["norm"] for e in sweeps] == list(
            result.norm_history
        )
        for event in sweeps:
            regrets = np.asarray(event.fields["regrets"])
            assert regrets.shape == (system.n_users,)
            assert float(regrets.sum()) == pytest.approx(
                event.fields["norm"]
            )
            assert event.fields["elapsed_s"] >= 0.0

    def test_start_done_bracketing(self, system):
        sink = InMemorySink()
        result = NashSolver(tolerance=1e-8).solve(
            system, tracer=Tracer(sink)
        )
        assert sink.events[0].name == "solver.start"
        assert sink.events[0].fields["users"] == system.n_users
        done = sink.events[-1]
        assert done.name == "solver.done"
        assert done.fields["converged"] is result.converged
        assert done.fields["iterations"] == result.iterations

    def test_counters_and_timing_histogram(self, system):
        tracer = Tracer(InMemorySink())
        result = NashSolver(tolerance=1e-8).solve(system, tracer=tracer)
        snapshot = tracer.registry.snapshot()
        assert snapshot["counters"]["solver.sweeps"] == result.iterations
        assert (
            snapshot["counters"]["solver.best_replies"]
            == result.iterations * system.n_users
        )
        assert (
            snapshot["histograms"]["solver.sweep_seconds"]["count"]
            == result.iterations
        )

    def test_ambient_tracer_is_picked_up(self, system):
        sink = InMemorySink()
        with use_tracer(Tracer(sink)):
            compute_nash_equilibrium(system, tolerance=1e-8)
        assert any(e.name == "solver.sweep" for e in sink.events)

    def test_solver_summary_view(self, system):
        sink = InMemorySink()
        result = NashSolver(tolerance=1e-8).solve(
            system, tracer=Tracer(sink)
        )
        summary = solver_summary(sink.events)
        assert summary["norm_history"] == list(result.norm_history)
        assert summary["outcome"]["converged"] is result.converged
        assert summary["total_elapsed_s"] >= 0.0


class TestProtocolTraceReconstruction:
    """The ISSUE acceptance criterion, on all three drivers."""

    def _assert_trace_reconstructs(self, path, outcome):
        events = read_trace(path)  # the JSONL file is the only input
        norms = reconstruct_norm_history(events)
        assert norms == list(outcome.result.norm_history)  # exact floats
        summary = protocol_summary(events)
        assert (
            sum(summary["messages_by_kind"].values())
            == outcome.messages_sent
        )
        return events, summary

    def test_reliable_driver(self, system, tmp_path):
        path = tmp_path / "reliable.trace.jsonl"
        with trace_to_file(path) as tracer, use_tracer(tracer):
            outcome = run_nash_protocol(system, tolerance=1e-8)
        events, summary = self._assert_trace_reconstructs(path, outcome)
        m = system.n_users
        sweeps = outcome.result.iterations
        assert summary["messages_by_kind"] == {
            "token": m * sweeps,
            "terminate": m - 1,
        }
        assert summary["token_hops"] == m * sweeps
        assert summary["retransmissions"] == 0
        assert summary["outcome"]["driver"] == "reliable"
        assert summary["outcome"]["messages_sent"] == outcome.messages_sent

    def test_lossy_driver(self, system, tmp_path):
        path = tmp_path / "lossy.trace.jsonl"
        with trace_to_file(path) as tracer, use_tracer(tracer):
            outcome = run_nash_protocol_lossy(
                system,
                drop=0.15,
                duplicate=0.05,
                fault_seed=7,
                tolerance=1e-8,
            )
        events, summary = self._assert_trace_reconstructs(path, outcome)
        assert outcome.retransmissions > 0  # faults actually exercised
        assert summary["retransmissions"] == outcome.retransmissions
        assert summary["outcome"]["driver"] == "lossy"
        assert summary["outcome"]["dropped"] > 0

    def test_resilient_driver_with_initiator_rollback(
        self, system, tmp_path
    ):
        # Crash rank 0 *after* it has recorded norms beyond its last
        # checkpoint: the restore rolls norm_history back to the
        # checkpointed prefix and re-executed sweeps overwrite — the
        # trace must replay exactly that.
        schedule = FaultSchedule(
            [
                FaultEvent(10, FaultKind.AGENT_CRASH, 0),
                FaultEvent(20, FaultKind.AGENT_RESTART, 0),
            ]
        )
        path = tmp_path / "resilient.trace.jsonl"
        with trace_to_file(path) as tracer, use_tracer(tracer):
            outcome = run_nash_protocol_resilient(
                system,
                schedule,
                tolerance=1e-8,
                checkpoint_interval=4,
            )
        assert outcome.crashes == 1 and outcome.restarts == 1
        events, summary = self._assert_trace_reconstructs(path, outcome)
        restores = [e for e in events if e.name == "protocol.restore"]
        assert [e.fields["rank"] for e in restores] == [0]
        assert summary["checkpoint_restores"] == outcome.checkpoint_restores
        assert summary["checkpoint_captures"] == outcome.checkpoint_captures
        assert summary["suspicions"] == outcome.suspicions
        assert summary["outcome"]["driver"] == "resilient"

    def test_resilient_driver_chaos_mix(self, system, tmp_path):
        schedule = FaultSchedule(
            [
                FaultEvent(10, FaultKind.AGENT_CRASH, 2),
                FaultEvent(14, FaultKind.COMPUTER_DOWN, 4),
                FaultEvent(26, FaultKind.AGENT_RESTART, 2),
            ]
        )
        path = tmp_path / "chaos.trace.jsonl"
        with trace_to_file(path) as tracer, use_tracer(tracer):
            outcome = run_nash_protocol_resilient(
                system,
                schedule,
                drop=0.15,
                duplicate=0.05,
                fault_seed=2,
                tolerance=1e-8,
            )
        events, summary = self._assert_trace_reconstructs(path, outcome)
        faults = summary["faults"]
        assert [f["kind"] for f in faults] == [
            "agent_crash", "computer_down", "agent_restart"
        ]
        assert summary["retransmissions"] == outcome.retransmissions
        assert summary["suspicions"] == outcome.suspicions
        assert summary["outcome"]["degraded"] is True


class TestSimInstrumentation:
    def test_run_summary_event(self, two_by_two):
        sink = InMemorySink()
        profile = compute_nash_equilibrium(two_by_two).profile
        with use_tracer(Tracer(sink)):
            result = simulate_profile(
                two_by_two, profile, horizon=200.0, warmup=50.0, seed=3
            )
        summary = sim_summary(sink.events)
        assert len(summary["runs"]) == 1
        run = summary["runs"][0]
        assert run["completions"] == result.total_jobs
        assert run["warmup_discards"] > 0
        assert run["arrivals"] >= run["completions"]
        assert summary["outage_windows"] == []

    def test_outage_events_match_downtime(self, two_by_two):
        sink = InMemorySink()
        profile = compute_nash_equilibrium(two_by_two).profile
        outages = (ServerOutage(computer=1, start=60.0, end=90.0),)
        with use_tracer(Tracer(sink)):
            result = simulate_profile(
                two_by_two,
                profile,
                horizon=200.0,
                warmup=50.0,
                seed=3,
                outages=outages,
            )
        windows = sim_summary(sink.events)["outage_windows"]
        assert len(windows) == 1
        assert windows[0]["computer"] == 1
        assert windows[0]["counted_downtime"] == pytest.approx(
            float(result.computer_downtime[1])
        )

    def test_counters(self, two_by_two):
        tracer = Tracer(InMemorySink())
        profile = compute_nash_equilibrium(two_by_two).profile
        with use_tracer(tracer):
            result = simulate_profile(
                two_by_two, profile, horizon=100.0, seed=3
            )
        counters = tracer.registry.snapshot()["counters"]
        assert counters["sim.runs"] == 1
        assert counters["sim.completions"] == result.total_jobs


class TestSweepInstrumentation:
    def _points(self):
        return [
            (rho, paper_table1_system(utilization=rho, n_users=4))
            for rho in (0.2, 0.4, 0.6)
        ]

    def test_sweep_point_events_and_rollup(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with use_tracer(tracer):
            sweep = run_schemes_sweep(self._points(), (NashScheme(),))
        events = [e for e in sink.events if e.name == "sweep.point"]
        assert len(events) == 3
        assert [e.fields["parameter"] for e in events] == [0.2, 0.4, 0.6]
        for event, (_, results) in zip(events, sweep):
            assert event.fields["scheme"] == "NASH"
            assert event.fields["iterations"] == int(
                results["NASH"].extra["iterations"]
            )
            assert event.fields["warm_started"] is False
            assert event.fields["continuation"] is False
        summary = sweep_summary(sink.events)
        assert summary["n_points"] == 3
        assert summary["by_scheme"]["NASH"]["points"] == 3
        assert summary["continuation"] is False
        assert tracer.registry.snapshot()["counters"]["sweep.points"] == 3

    def test_continuation_marks_warm_points(self):
        sink = InMemorySink()
        with use_tracer(Tracer(sink)):
            run_schemes_sweep(
                self._points(), (NashScheme(),), continuation=True
            )
        summary = sweep_summary(sink.events)
        assert summary["continuation"] is True
        # Only the axis-first point cold-starts.
        assert summary["by_scheme"]["NASH"]["warm_started"] == 2


class TestZeroCostWhenDisabled:
    def test_untraced_runs_emit_nothing(self, system):
        # No ambient tracer installed: the DISABLED singleton absorbs
        # every call without touching its registry or sink.
        before = len(event_counts([]))  # trivial; guards import cost only
        result = compute_nash_equilibrium(system, tolerance=1e-8)
        outcome = run_nash_protocol(system, tolerance=1e-8)
        assert result.converged and outcome.result.converged
        from repro.telemetry.trace import DISABLED

        assert DISABLED.events_emitted == 0
        assert len(DISABLED.registry) == 0
        assert before == 0
