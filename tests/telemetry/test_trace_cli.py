"""The ``repro-trace`` CLI: rendering, JSON mode, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.distributed.runtime import run_nash_protocol
from repro.telemetry.cli import main
from repro.telemetry.trace import trace_to_file, use_tracer
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "run.trace.jsonl"
    system = paper_table1_system(utilization=0.6, n_users=4)
    with trace_to_file(path) as tracer, use_tracer(tracer):
        outcome = run_nash_protocol(system, tolerance=1e-8)
    return path, outcome


class TestSummary:
    def test_text_output(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "protocol.deliver" in out
        assert f"{outcome.messages_sent} messages" in out

    def test_json_output(self, traced_run, capsys):
        path, _ = traced_run
        assert main(["summary", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] > 0
        assert "protocol.sweep" in payload["event_counts"]
        assert payload["metrics"] is not None


class TestConvergence:
    def test_norms_match_run(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["convergence", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iterations"] == outcome.result.iterations
        assert payload["norm_history"] == list(outcome.result.norm_history)
        assert payload["final_norm"] == outcome.result.norm_history[-1]

    def test_text_lists_each_iteration(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["convergence", str(path)]) == 0
        out = capsys.readouterr().out
        # Header plus one line per iteration.
        assert len(out.strip().splitlines()) == outcome.result.iterations + 1


class TestProtocol:
    def test_accounting(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["protocol", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert (
            sum(payload["messages_by_kind"].values())
            == outcome.messages_sent
        )
        assert payload["outcome"]["driver"] == "reliable"


class TestExitCodes:
    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro-trace:" in capsys.readouterr().err

    def test_corrupt_file_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["summary", str(path)]) == 2

    def test_empty_view_exits_one(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["convergence", str(path)]) == 1
        assert "no convergence data" in capsys.readouterr().err

    def test_solver_only_trace_has_no_protocol_data(
        self, tmp_path, capsys
    ):
        from repro.core.nash import compute_nash_equilibrium

        path = tmp_path / "solver.trace.jsonl"
        system = paper_table1_system(utilization=0.6, n_users=4)
        with trace_to_file(path) as tracer, use_tracer(tracer):
            compute_nash_equilibrium(system, tolerance=1e-8)
        assert main(["protocol", str(path)]) == 1
        assert main(["convergence", str(path)]) == 0  # solver.sweep works

    def test_module_entry_point(self, traced_run):
        import subprocess
        import sys

        path, _ = traced_run
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry", "summary", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "events:" in proc.stdout
