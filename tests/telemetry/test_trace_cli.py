"""The ``repro-trace`` CLI: rendering, JSON mode, exit codes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed.runtime import run_nash_protocol
from repro.engine import ComputerFailure, ComputerReopen, OnlineEquilibriumEngine
from repro.experiments.shm import SharedArrayPlane, shm_available
from repro.telemetry.analysis import engine_summary, pool_summary
from repro.telemetry.cli import main
from repro.telemetry.events import TraceEvent
from repro.telemetry.trace import trace_to_file, use_tracer
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "run.trace.jsonl"
    system = paper_table1_system(utilization=0.6, n_users=4)
    with trace_to_file(path) as tracer, use_tracer(tracer):
        outcome = run_nash_protocol(system, tolerance=1e-8)
    return path, outcome


@pytest.fixture(scope="module")
def engine_traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "engine.trace.jsonl"
    system = paper_table1_system(utilization=0.6, n_users=4)
    with trace_to_file(path) as tracer:
        engine = OnlineEquilibriumEngine(system, tracer=tracer)
        run = engine.run(
            [(ComputerFailure(15),), (), (ComputerReopen(15),)]
        )
    return path, run


class TestSummary:
    def test_text_output(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "protocol.deliver" in out
        assert f"{outcome.messages_sent} messages" in out

    def test_json_output(self, traced_run, capsys):
        path, _ = traced_run
        assert main(["summary", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] > 0
        assert "protocol.sweep" in payload["event_counts"]
        assert payload["metrics"] is not None


class TestConvergence:
    def test_norms_match_run(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["convergence", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iterations"] == outcome.result.iterations
        assert payload["norm_history"] == list(outcome.result.norm_history)
        assert payload["final_norm"] == outcome.result.norm_history[-1]

    def test_text_lists_each_iteration(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["convergence", str(path)]) == 0
        out = capsys.readouterr().out
        # Header plus one line per iteration.
        assert len(out.strip().splitlines()) == outcome.result.iterations + 1


class TestProtocol:
    def test_accounting(self, traced_run, capsys):
        path, outcome = traced_run
        assert main(["protocol", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert (
            sum(payload["messages_by_kind"].values())
            == outcome.messages_sent
        )
        assert payload["outcome"]["driver"] == "reliable"


class TestEngineView:
    def test_text_output(self, engine_traced_run, capsys):
        path, run = engine_traced_run
        assert main(["engine", str(path)]) == 0
        out = capsys.readouterr().out
        assert "epochs: 4" in out
        # The empty epoch while computer 15 is down is still degraded.
        assert "degraded-mode windows: [1..2]" in out
        assert "all certified" in out
        assert "per-epoch histogram:" in out

    def test_json_output_matches_run(self, engine_traced_run, capsys):
        path, run = engine_traced_run
        assert main(["engine", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_epochs"] == run.n_epochs == 4
        assert payload["status_counts"] == {"degraded": 2, "ok": 2}
        assert payload["all_certified"] is True
        assert payload["warm_started"] == run.warm_epochs
        assert payload["total_sweeps"] == run.total_sweeps

    def test_engine_appears_in_summary(self, engine_traced_run, capsys):
        path, _ = engine_traced_run
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine: 4 epochs (2 degraded-mode)" in out

    def test_trace_without_engine_data_exits_one(self, traced_run, capsys):
        path, _ = traced_run
        assert main(["engine", str(path)]) == 1
        assert "no engine data" in capsys.readouterr().err


class TestEngineSummaryRollup:
    @staticmethod
    def epoch(seq, **fields):
        return TraceEvent(seq, "engine.epoch", fields)

    def test_windows_and_sla_rollup(self):
        events = [
            self.epoch(0, index=0, status="ok", sweeps=20, certified=True),
            self.epoch(
                1, index=1, status="degraded", sweeps=8, certified=True,
                warm_started=True, sla_violations=2,
            ),
            self.epoch(
                2, index=2, status="exhausted", sweeps=0, certified=False,
                sla_violations=4, error="CapacityExhausted: offered 459",
            ),
            self.epoch(
                3, index=3, status="degraded", sweeps=4, certified=True,
                warm_started=True,
            ),
            self.epoch(4, index=4, status="ok", sweeps=2, certified=True),
        ]
        summary = engine_summary(events)
        assert summary["n_epochs"] == 5
        assert summary["degraded_windows"] == [[1, 3]]
        assert summary["degraded_mode_epochs"] == 3
        assert summary["sla_violations"] == 6
        assert summary["sla_violation_epochs"] == 2
        # Exhausted epochs are not solvable: certification unaffected.
        assert summary["solvable_epochs"] == 4
        assert summary["all_certified"] is True
        assert summary["warm_started"] == 2
        assert summary["errors"] == ["CapacityExhausted: offered 459"]

    def test_sweeps_histogram_buckets_are_powers_of_two(self):
        events = [
            self.epoch(i, index=i, status="ok", sweeps=s, certified=True)
            for i, s in enumerate((0, 1, 3, 9, 300))
        ]
        summary = engine_summary(events)
        assert summary["sweeps_histogram"] == {
            "0": 1, "1": 1, "3-4": 1, "9-16": 1, ">256": 1,
        }
        assert summary["total_sweeps"] == 313

    def test_uncertified_solvable_epoch_flips_all_certified(self):
        events = [
            self.epoch(0, index=0, status="ok", sweeps=5, certified=False),
        ]
        assert engine_summary(events)["all_certified"] is False

    def test_empty_trace(self):
        summary = engine_summary([])
        assert summary["n_epochs"] == 0
        assert summary["degraded_windows"] == []
        assert summary["all_certified"] is True


class TestShmPlaneRollup:
    @staticmethod
    def _events():
        return [
            TraceEvent(
                0,
                "pool.shm.publish",
                {"block": "a", "nbytes": 4096, "shape": [32, 16], "dtype": "<f8"},
            ),
            TraceEvent(
                1,
                "pool.shm.publish",
                {"block": "b", "nbytes": 1024, "shape": [128], "dtype": "<f8"},
            ),
            TraceEvent(
                2,
                "pool.shm.close",
                {
                    "blocks": 2,
                    "bytes_shared": 5120,
                    "bytes_saved": 20480,
                    "cache_hits": 5,
                    "fallbacks": 1,
                },
            ),
        ]

    def test_pool_summary_rollup(self):
        summary = pool_summary(self._events())
        assert summary["n_blocks"] == 2
        assert summary["bytes_published"] == 5120
        assert summary["n_planes"] == 1
        assert summary["bytes_shared"] == 5120
        assert summary["bytes_saved"] == 20480
        assert summary["cache_hits"] == 5
        assert summary["fallbacks"] == 1

    def test_empty_trace(self):
        summary = pool_summary([])
        assert summary["n_blocks"] == 0
        assert summary["n_planes"] == 0

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_plane_appears_in_summary(self, tmp_path, capsys):
        path = tmp_path / "plane.trace.jsonl"
        with trace_to_file(path) as tracer:
            with SharedArrayPlane(min_bytes=0, tracer=tracer) as plane:
                plane.publish(np.arange(64, dtype=np.float64))
                plane.publish(np.arange(64, dtype=np.float64))  # dedupe hit
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "shm-plane: 1 planes, 1 blocks" in out
        assert "1 dedupe hits" in out


class TestExitCodes:
    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro-trace:" in capsys.readouterr().err

    def test_corrupt_file_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["summary", str(path)]) == 2

    def test_empty_view_exits_one(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["convergence", str(path)]) == 1
        assert "no convergence data" in capsys.readouterr().err

    def test_solver_only_trace_has_no_protocol_data(
        self, tmp_path, capsys
    ):
        from repro.core.nash import compute_nash_equilibrium

        path = tmp_path / "solver.trace.jsonl"
        system = paper_table1_system(utilization=0.6, n_users=4)
        with trace_to_file(path) as tracer, use_tracer(tracer):
            compute_nash_equilibrium(system, tolerance=1e-8)
        assert main(["protocol", str(path)]) == 1
        assert main(["convergence", str(path)]) == 0  # solver.sweep works

    def test_module_entry_point(self, traced_run):
        import subprocess
        import sys

        path, _ = traced_run
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry", "summary", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "events:" in proc.stdout
