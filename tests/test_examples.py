"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run in the unit suite (the simulation-heavy ones
are exercised indirectly through their underlying modules); each is
imported from ``examples/`` and its ``main()`` executed with captured
output, asserting the narrative landmarks it promises.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "NASH converged" in out
        assert "verified" in out
        for scheme in ("NASH", "GOS", "IOS", "PS"):
            assert scheme in out

    def test_multi_tenant_cluster(self, capsys):
        load_example("multi_tenant_cluster").main()
        out = capsys.readouterr().out
        assert "tenants with an incentive to defect" in out
        assert "Nash equilibrium" in out
        assert "conclusion" in out

    def test_distributed_protocol_demo(self, capsys):
        load_example("distributed_protocol_demo").main()
        out = capsys.readouterr().out
        assert "protocol trace" in out
        assert "TERMINATE" in out
        assert "converged: True" in out

    def test_crash_recovery_demo(self, capsys):
        load_example("crash_recovery_demo").main()
        out = capsys.readouterr().out
        assert "agent crash and checkpoint restart" in out
        assert "degraded equilibrium" in out
        assert "CapacityExhausted" in out
        assert "fails fast" in out
        assert "rebalancing around the outage" in out

    def test_online_service_demo(self, capsys):
        load_example("online_service_demo").main([])
        out = capsys.readouterr().out
        assert "a day in production" in out
        assert "every epoch certified:   True" in out
        assert "CapacityExhausted" in out
        assert "holds the last good profile" in out
        assert "after reopen: status=ok" in out

    def test_online_service_demo_trace(self, capsys, tmp_path):
        trace = tmp_path / "day.trace.jsonl"
        load_example("online_service_demo").main(["--trace", str(trace)])
        capsys.readouterr()
        assert trace.exists()
        from repro.telemetry.cli import main as trace_main

        assert trace_main(["engine", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "degraded-mode windows" in out
        assert "all certified" in out

    def test_all_examples_importable(self):
        """Every example file at least parses and imports."""
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            spec = importlib.util.spec_from_file_location(
                f"import_check_{path.stem}", path
            )
            module = importlib.util.module_from_spec(spec)
            # Import executes top-level code only (all examples guard
            # main() behind __main__).
            spec.loader.exec_module(module)
            assert hasattr(module, "main")

    def test_example_inventory_matches_readme(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert names == {
            "quickstart",
            "multi_tenant_cluster",
            "heterogeneity_planning",
            "distributed_protocol_demo",
            "dynamic_rebalancing",
            "closed_loop_deployment",
            "robustness_study",
            "crash_recovery_demo",
            "online_service_demo",
        }
