"""Integration tests for the dynamics extensions (EXT2/EXT3, ABL3/ABL4)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_dynamics


class TestDynamicPolicies:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_dynamics.run_dynamic_policies(horizon=150.0, warmup=15.0)

    def test_all_policies_present(self, artifact):
        names = artifact.column("policy")
        assert len(names) == 5
        assert any("NASH" in n for n in names)
        assert any("JSQ" in n for n in names)

    def test_dynamic_beats_static(self, artifact):
        by_name = {
            row["policy"]: row["mean_response_time"] for row in artifact.rows
        }
        assert by_name["JSQ (dynamic)"] < by_name["NASH (static)"]
        assert by_name["LED (dynamic)"] < by_name["NASH (static)"]

    def test_nash_beats_ps_in_simulation(self, artifact):
        by_name = {
            row["policy"]: row["mean_response_time"] for row in artifact.rows
        }
        assert by_name["NASH (static)"] < by_name["PS (static)"]

    def test_comparable_job_counts(self, artifact):
        jobs = artifact.column("jobs")
        assert max(jobs) - min(jobs) < 0.05 * max(jobs)


class TestUpdateOrderAblation:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_dynamics.run_update_order_ablation(max_sweeps=150)

    def test_serialized_orders_converge(self, artifact):
        by_order = {row["order"]: row for row in artifact.rows}
        assert by_order["roundrobin"]["converged"]
        assert by_order["random"]["converged"]

    def test_simultaneous_oscillates(self, artifact):
        by_order = {row["order"]: row for row in artifact.rows}
        assert not by_order["simultaneous"]["converged"]
        assert by_order["simultaneous"]["final_norm"] > 1e-3


class TestNoiseAblation:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_dynamics.run_noise_ablation(
            noises=(0.0, 0.1, 0.3), sweeps=25
        )

    def test_regret_grows_with_noise(self, artifact):
        raw = artifact.column("final_regret_raw")
        assert raw[0] < raw[1] < raw[2]

    def test_smoothing_helps_at_high_noise(self, artifact):
        last = artifact.rows[-1]
        assert last["final_regret_smoothed"] < last["final_regret_raw"]

    def test_zero_noise_converges(self, artifact):
        first = artifact.rows[0]
        assert first["final_regret_raw"] < 1e-5


class TestCooperative:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_dynamics.run_cooperative(n_users=4)

    def test_all_schemes_present(self, artifact):
        assert artifact.column("scheme") == ["NASH", "NBS", "GOS", "IOS", "PS"]

    def test_nbs_fair_and_at_most_nash(self, artifact):
        by_scheme = {row["scheme"]: row for row in artifact.rows}
        assert by_scheme["NBS"]["fairness"] == pytest.approx(1.0, abs=1e-6)
        assert (
            by_scheme["NBS"]["overall_time"]
            <= by_scheme["NASH"]["overall_time"] + 1e-9
        )

    def test_nbs_dominates_disagreement(self, artifact):
        by_scheme = {row["scheme"]: row for row in artifact.rows}
        assert (
            by_scheme["NBS"]["worst_user_time"]
            <= by_scheme["PS"]["worst_user_time"] + 1e-9
        )
