"""Tests for the CLI runner and its chart rendering."""

from __future__ import annotations

import pytest

from repro.experiments import fig3_users, table1
from repro.experiments.runner import main, render_chart


class TestRenderChart:
    def test_figure3_has_chart(self):
        artifact = fig3_users.run(user_counts=(4, 8), tolerance=1e-2)
        chart = render_chart("f3", artifact)
        assert chart is not None
        assert "iterations_nash_0" in chart

    def test_table_artifacts_have_no_chart(self):
        assert render_chart("t1", table1.run()) is None

    def test_case_insensitive(self):
        artifact = fig3_users.run(user_counts=(4, 8), tolerance=1e-2)
        assert render_chart("F3", artifact) is not None

    def test_log_chart_for_convergence(self):
        from repro.experiments import fig2_convergence

        artifact = fig2_convergence.run(tolerance=1e-3, max_sweeps=50)
        chart = render_chart("f2", artifact)
        assert chart is not None
        assert "log10" in chart


class TestCli:
    def test_runs_with_chart(self, capsys):
        assert main(["f5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_no_charts_flag(self, capsys):
        assert main(["f3", "--no-charts"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "iterations" in out
        # The chart legend marker line must be absent.
        assert "o = iterations_nash_0" not in out

    def test_chart_printed_by_default(self, capsys):
        assert main(["f3"]) == 0
        out = capsys.readouterr().out
        assert "o = iterations_nash_0" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(["f5", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "f5.csv").read_text().startswith("user,")

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["zzz"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
