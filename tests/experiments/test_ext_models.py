"""Integration tests for the model extensions (EXT4/EXT5)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_models


class TestCommDelay:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_models.run_comm_delay(
            n_users=4, delay_scales=(0.0, 0.02, 0.1)
        )

    def test_zero_delay_recovers_plain_game(self, artifact):
        row = artifact.rows[0]
        # Without delays nearly all traffic rides the faster classes.
        assert row["fast_computer_share"] > 0.99
        assert row["nash_cost"] < row["ps_cost"]

    def test_costs_grow_with_delay(self, artifact):
        costs = artifact.column("nash_cost")
        assert costs == sorted(costs)

    def test_traffic_retreats_from_fast_computers(self, artifact):
        shares = artifact.column("fast_computer_share")
        assert shares[-1] < shares[0]


class TestMisspecification:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_models.run_misspecification(
            n_users=4, scvs=(0.0, 1.0, 4.0), horizon=900.0, warmup=90.0
        )

    def test_simulation_tracks_pk_prediction(self, artifact):
        for row in artifact.rows:
            assert row["nash_simulated"] == pytest.approx(
                row["nash_pk_predicted"], rel=0.12
            )

    def test_mm1_model_exact_only_at_scv_one(self, artifact):
        by_scv = {row["scv"]: row for row in artifact.rows}
        exact = by_scv[1.0]
        assert exact["nash_pk_predicted"] == pytest.approx(
            exact["nash_mm1_model"], rel=1e-6
        )
        assert by_scv[0.0]["nash_pk_predicted"] < by_scv[0.0]["nash_mm1_model"]
        assert by_scv[4.0]["nash_pk_predicted"] > by_scv[4.0]["nash_mm1_model"]

    def test_nash_beats_ps_at_every_scv(self, artifact):
        for row in artifact.rows:
            assert row["nash_simulated"] < row["ps_simulated"]

    def test_latency_grows_with_scv(self, artifact):
        simulated = artifact.column("nash_simulated")
        assert simulated == sorted(simulated)


class TestBurstyArrivals:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_models.run_bursty_arrivals(
            n_users=4, burst_ratios=(1.0, 10.0), horizon=250.0, warmup=25.0
        )

    def test_poisson_point_matches_model(self, artifact):
        row = artifact.rows[0]
        assert row["nash_simulated"] == pytest.approx(
            row["nash_mm1_model"], rel=0.15
        )
        assert row["nash_simulated"] < row["ps_simulated"]

    def test_burstiness_inflates_latency(self, artifact):
        nash = artifact.column("nash_simulated")
        ps = artifact.column("ps_simulated")
        assert nash[-1] > nash[0]
        assert ps[-1] > ps[0]

    def test_bursts_hurt_nash_more_than_ps(self, artifact):
        """The headline reversal: NASH's hot fast machines absorb bursts
        worse than PS's uniformly loaded ones."""
        first, last = artifact.rows[0], artifact.rows[-1]
        nash_inflation = last["nash_simulated"] / first["nash_simulated"]
        ps_inflation = last["ps_simulated"] / first["ps_simulated"]
        assert nash_inflation > ps_inflation
