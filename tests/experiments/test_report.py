"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.experiments import table1
from repro.experiments.report import generate_report, table_to_markdown


class TestTableToMarkdown:
    def test_structure(self):
        text = table_to_markdown(table1.run())
        lines = text.splitlines()
        assert lines[0].startswith("## T1")
        header = next(l for l in lines if l.startswith("| relative"))
        assert header.count("|") == 4  # 3 columns
        assert any(l.startswith("|---") for l in lines)

    def test_notes_italicized(self):
        text = table_to_markdown(table1.run())
        assert "*aggregate processing rate" in text

    def test_missing_cells_dashed(self):
        from repro.experiments.common import ExperimentTable

        table = ExperimentTable(
            experiment_id="X",
            title="demo",
            columns=("a", "b"),
            rows=({"a": 1},),
        )
        assert "| 1 | - |" in table_to_markdown(table)

    def test_float_formatting(self):
        from repro.experiments.common import ExperimentTable

        table = ExperimentTable(
            experiment_id="X",
            title="demo",
            columns=("v",),
            rows=({"v": 0.123456789},),
        )
        assert "0.123457" in table_to_markdown(table)


class TestGenerateReport:
    def test_runs_selected_experiments(self):
        text = generate_report(["t1", "f5"])
        assert "# Measured results" in text
        assert "## T1" in text
        assert "## F5" in text
        assert "wall time" in text

    def test_accepts_precomputed_tables(self):
        artifact = table1.run()
        text = generate_report(tables={"t1": artifact})
        assert "## T1" in text
        assert "experiments: t1" in text

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            generate_report(["nope"])

    def test_environment_stamp_present(self):
        text = generate_report(["t1"])
        assert "python" in text
        assert "numpy" in text
