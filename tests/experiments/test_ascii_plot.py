"""Tests for the terminal chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import ascii_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([1.0, 2.0, 3.0]) == "▁▄█"

    def test_constant_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert line == "▁▁▁"

    def test_missing_values_become_blanks(self):
        line = sparkline([1.0, None, 3.0])
        assert line[1] == " "
        assert len(line) == 3

    def test_empty_and_all_missing(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == ""


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            [0, 1, 2, 3],
            {"up": [1, 2, 3, 4], "down": [4, 3, 2, 1]},
        )
        assert "o = up" in chart
        assert "x = down" in chart
        assert "o" in chart
        assert "x" in chart

    def test_dimensions(self):
        chart = ascii_chart(
            [0, 1], {"s": [1, 2]}, width=20, height=6
        )
        body_rows = [l for l in chart.splitlines() if l.endswith("|")]
        assert len(body_rows) == 6
        assert all(len(l.split("|")[1]) == 20 for l in body_rows)

    def test_log_scale_drops_nonpositive(self):
        chart = ascii_chart(
            [0, 1, 2],
            {"norm": [1.0, 0.0, 0.01]},
            logy=True,
        )
        assert "log10" in chart

    def test_log_scale_all_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="plottable"):
            ascii_chart([0, 1], {"s": [0.0, -1.0]}, logy=True)

    def test_requires_series(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {})

    def test_requires_minimum_size(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [1, 2]}, width=4)

    def test_missing_points_tolerated(self):
        chart = ascii_chart(
            [0, 1, 2],
            {"a": [1.0, None, 3.0], "b": [2.0, 2.5, None]},
        )
        assert "a" in chart and "b" in chart

    def test_collision_marker(self):
        chart = ascii_chart(
            [0, 1], {"a": [1.0, 2.0], "b": [1.0, 2.0]}, width=10, height=5
        )
        assert "*" in chart
