"""Tests for the experiment table infrastructure."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ExperimentTable,
    run_schemes,
    run_schemes_sweep,
)


def make_table():
    return ExperimentTable(
        experiment_id="X",
        title="demo",
        columns=("a", "b"),
        rows=({"a": 1, "b": 2.5}, {"a": 3}),
        notes=("hello",),
    )


class TestExperimentTable:
    def test_column_access(self):
        table = make_table()
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.5, None]

    def test_column_unknown(self):
        with pytest.raises(KeyError):
            make_table().column("zzz")

    def test_unknown_row_keys_rejected(self):
        with pytest.raises(ValueError):
            ExperimentTable(
                experiment_id="X",
                title="demo",
                columns=("a",),
                rows=({"a": 1, "oops": 2},),
            )

    def test_ascii_rendering(self):
        text = make_table().to_ascii()
        assert "== X: demo ==" in text
        assert "note: hello" in text
        assert "2.5" in text
        assert "-" in text  # missing cell placeholder

    def test_csv_rendering(self):
        csv_text = make_table().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,"

    def test_save_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        make_table().save_csv(path)
        assert path.read_text().startswith("a,b")


class TestRunSchemes:
    def test_default_schemes(self, table1_small):
        results = run_schemes(table1_small)
        assert set(results) == {"NASH", "GOS", "IOS", "PS"}

    def test_explicit_schemes(self, table1_small):
        from repro.schemes import ProportionalScheme

        results = run_schemes(table1_small, [ProportionalScheme()])
        assert set(results) == {"PS"}

    def test_duplicate_schemes_rejected(self, table1_small):
        from repro.schemes import ProportionalScheme

        with pytest.raises(ValueError):
            run_schemes(
                table1_small, [ProportionalScheme(), ProportionalScheme()]
            )


class TestRunSchemesSweep:
    def test_serial_sweep_preserves_order(self):
        from repro.workloads.sweeps import sweep_points

        points = sweep_points("utilization", [0.3, 0.5], n_users=4)
        results = run_schemes_sweep(points)
        assert [param for param, _ in results] == [0.3, 0.5]
        for _, by_scheme in results:
            assert set(by_scheme) == {"NASH", "GOS", "IOS", "PS"}

    def test_parallel_matches_serial(self):
        from repro.workloads.sweeps import sweep_points

        points = sweep_points("utilization", [0.2, 0.4, 0.6], n_users=4)
        serial = run_schemes_sweep(points)
        parallel = run_schemes_sweep(points, n_workers=2)
        assert [p for p, _ in serial] == [p for p, _ in parallel]
        for (_, a), (_, b) in zip(serial, parallel):
            for name in a:
                assert a[name].overall_time == pytest.approx(
                    b[name].overall_time
                )

    def test_explicit_schemes(self, table1_small):
        from repro.schemes import ProportionalScheme

        results = run_schemes_sweep(
            [(0.5, table1_small)], [ProportionalScheme()]
        )
        assert set(results[0][1]) == {"PS"}

    def test_unknown_sweep_kind_rejected(self):
        from repro.workloads.sweeps import sweep_points

        with pytest.raises(KeyError, match="unknown sweep"):
            sweep_points("nope")


class TestSweepSharedMemory:
    """run_schemes_sweep's zero-copy path must be invisible in results."""

    @pytest.fixture(autouse=True)
    def _small_blocks(self, monkeypatch):
        import functools

        from repro.experiments import common as common_module
        from repro.experiments.shm import SharedArrayPlane, clear_worker_cache

        monkeypatch.setattr(
            common_module,
            "SharedArrayPlane",
            functools.partial(SharedArrayPlane, min_bytes=0),
        )
        clear_worker_cache()
        yield
        clear_worker_cache()

    def test_shm_sweep_bit_identical_to_serial(self):
        import numpy as np

        from repro.workloads.sweeps import sweep_points

        points = sweep_points("utilization", [0.2, 0.4, 0.6], n_users=4)
        serial = run_schemes_sweep(points, use_shm=False)
        shm = run_schemes_sweep(points, n_workers=2, use_shm=True)
        assert [p for p, _ in serial] == [p for p, _ in shm]
        for (_, a), (_, b) in zip(serial, shm):
            assert set(a) == set(b)
            for name in a:
                assert a[name].overall_time == b[name].overall_time
                assert a[name].fairness == b[name].fairness
                np.testing.assert_array_equal(
                    a[name].profile.fractions, b[name].profile.fractions
                )

    def test_shm_sweep_preserves_custom_names(self):
        from repro.core.model import DistributedSystem

        system = DistributedSystem(
            service_rates=[10.0, 5.0],
            arrival_rates=[2.0, 1.0],
            computer_names=("alpha", "beta"),
            user_names=("u1", "u2"),
        )
        assert system.has_default_names == (False, False)
        results = run_schemes_sweep(
            [(0.0, system), (1.0, system)], n_workers=2, use_shm=True
        )
        assert len(results) == 2

    def test_default_names_detected(self):
        from repro.core.model import DistributedSystem

        system = DistributedSystem(
            service_rates=[10.0, 5.0], arrival_rates=[2.0, 1.0]
        )
        assert system.has_default_names == (True, True)
        assert system.computer_names == ("computer-0", "computer-1")
