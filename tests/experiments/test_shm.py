"""Tests for the zero-copy shared-memory data plane."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.experiments.shm import (
    DEFAULT_MIN_BYTES,
    ArrayRef,
    SharedArrayPlane,
    clear_worker_cache,
    rehydrate,
    resolve,
    shm_available,
    sweep_planes,
    worker_cache_stats,
)
from repro.telemetry.sinks import InMemorySink
from repro.telemetry.trace import Tracer

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


@pytest.fixture(autouse=True)
def _clean_worker_cache():
    clear_worker_cache()
    yield
    clear_worker_cache()


def big_array(seed: int = 0, shape: tuple[int, ...] = (256, 64)) -> np.ndarray:
    return np.random.default_rng(seed).random(shape)


class TestPublish:
    def test_large_array_returns_handle(self):
        with SharedArrayPlane() as plane:
            array = big_array()
            handle = plane.publish(array)
            assert isinstance(handle, ArrayRef)
            assert handle.shape == array.shape
            assert handle.nbytes == array.nbytes
            assert np.dtype(handle.dtype) == array.dtype

    def test_small_array_falls_back_inline(self):
        with SharedArrayPlane() as plane:
            small = np.arange(4, dtype=float)
            out = plane.publish(small)
            assert isinstance(out, np.ndarray)
            assert plane.stats().fallbacks == 1

    def test_disabled_plane_always_falls_back(self):
        with SharedArrayPlane(enabled=False) as plane:
            out = plane.publish(big_array())
            assert isinstance(out, np.ndarray)
            assert plane.stats().blocks == 0

    def test_equal_content_dedupes_to_one_block(self):
        with SharedArrayPlane() as plane:
            first = plane.publish(big_array(1))
            second = plane.publish(big_array(1).copy())
            assert first is second or first == second
            stats = plane.stats()
            assert stats.blocks == 1
            assert stats.cache_hits == 1
            assert stats.bytes_saved >= first.nbytes

    def test_distinct_content_gets_distinct_blocks(self):
        with SharedArrayPlane() as plane:
            a = plane.publish(big_array(1))
            b = plane.publish(big_array(2))
            assert isinstance(a, ArrayRef) and isinstance(b, ArrayRef)
            assert a.token != b.token
            assert plane.stats().blocks == 2

    def test_min_bytes_threshold_is_tunable(self):
        with SharedArrayPlane(min_bytes=0) as plane:
            handle = plane.publish(np.arange(3, dtype=float))
            assert isinstance(handle, ArrayRef)

    def test_publish_after_close_raises(self):
        plane = SharedArrayPlane()
        plane.close()
        with pytest.raises(RuntimeError, match="closed"):
            plane.publish(big_array())

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_available()
        with SharedArrayPlane() as plane:
            assert isinstance(plane.publish(big_array()), np.ndarray)

    def test_account_fanout_counts_saved_pickle_bytes(self):
        with SharedArrayPlane() as plane:
            handle = plane.publish(big_array())
            inline = np.arange(4, dtype=float)
            saved = plane.account_fanout([handle, inline], n_tasks=7)
            assert saved == handle.nbytes * 7
            assert plane.stats().bytes_saved >= saved


class TestResolve:
    def test_plain_array_passes_through(self):
        array = np.arange(10, dtype=float)
        assert resolve(array) is array

    def test_handle_resolves_bit_identical_readonly_view(self):
        with SharedArrayPlane() as plane:
            array = big_array(3)
            handle = plane.publish(array)
            view = resolve(handle)
            np.testing.assert_array_equal(view, array)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0

    def test_repeat_resolution_hits_worker_cache(self):
        with SharedArrayPlane() as plane:
            handle = plane.publish(big_array(4))
            first = resolve(handle)
            before = worker_cache_stats()["hits"]
            second = resolve(handle)
            assert second is first
            assert worker_cache_stats()["hits"] == before + 1

    def test_rehydrate_memoizes_construction(self):
        calls = []

        def factory(a, b):
            calls.append(1)
            return float(a.sum() + b.sum())

        with SharedArrayPlane() as plane:
            ha = plane.publish(big_array(5))
            hb = plane.publish(big_array(6))
            first = rehydrate(factory, ha, hb)
            second = rehydrate(factory, ha, hb)
            assert first == second
            assert len(calls) == 1

    def test_rehydrate_fallback_arrays_not_cached(self):
        calls = []

        def factory(a):
            calls.append(1)
            return float(a.sum())

        inline = np.arange(8, dtype=float)
        rehydrate(factory, inline)
        rehydrate(factory, inline)
        assert len(calls) == 2


class TestLifecycle:
    def test_release_refcounts_block(self):
        plane = SharedArrayPlane()
        try:
            handle = plane.publish(big_array(7))
            again = plane.publish(big_array(7))
            assert again == handle
            plane.release(handle)
            # One publish still outstanding: resolving must still work.
            np.testing.assert_array_equal(resolve(handle), big_array(7))
            plane.release(handle)
            # Refcount hit zero -> block unlinked; a *fresh* attach fails.
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=handle.name)
        finally:
            clear_worker_cache()
            plane.close()

    def test_release_of_fallback_is_noop(self):
        with SharedArrayPlane() as plane:
            small = plane.publish(np.arange(2, dtype=float))
            plane.release(small)  # must not raise

    def test_close_is_idempotent(self):
        plane = SharedArrayPlane()
        plane.publish(big_array(8))
        plane.close()
        plane.close()
        assert plane.closed

    def test_close_unlinks_blocks(self):
        plane = SharedArrayPlane()
        handle = plane.publish(big_array(9))
        plane.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_stats_survive_close(self):
        plane = SharedArrayPlane()
        plane.publish(big_array(10))
        plane.close()
        stats = plane.stats()
        assert stats.blocks == 1
        assert stats.bytes_shared > 0

    def test_sweep_planes_reaps_unclosed(self):
        plane = SharedArrayPlane()
        plane.publish(big_array(11))
        assert sweep_planes() >= 1
        assert plane.closed

    def test_min_bytes_validation(self):
        with pytest.raises(ValueError, match="min_bytes"):
            SharedArrayPlane(min_bytes=-1)


class TestTelemetry:
    def test_publish_and_close_emit_declared_events(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with SharedArrayPlane(tracer=tracer) as plane:
            plane.publish(big_array(12))
            plane.publish(big_array(12))
        kinds = [event.name for event in sink.events]
        assert "pool.shm.publish" in kinds
        assert "pool.shm.close" in kinds
        close_event = next(
            event for event in sink.events if event.name == "pool.shm.close"
        )
        assert close_event.fields["blocks"] == 1
        assert close_event.fields["cache_hits"] == 1

    def test_counters_accumulate(self):
        tracer = Tracer()
        with SharedArrayPlane(tracer=tracer) as plane:
            handle = plane.publish(big_array(13))
            plane.account_fanout([handle], n_tasks=3)
        counters = tracer.registry.snapshot()["counters"]
        assert counters["pool.shm.blocks"] == 1
        assert counters["pool.shm.bytes_shared"] == handle.nbytes
        assert counters["pool.shm.bytes_saved"] == handle.nbytes * 3


ATEXIT_SCRIPT = """
import warnings
warnings.simplefilter("error")  # resource_tracker leaks warn at exit

import numpy as np
from repro.experiments import parallel, shm

plane = shm.SharedArrayPlane()
array = np.random.default_rng(0).random((512, 64))
handle = plane.publish(array)
assert isinstance(handle, shm.ArrayRef)
print("BLOCK", handle.name)
# Deliberately no close(): the atexit sweep must unlink the block
# before the interpreter (and its resource tracker) shuts down.
"""


class TestAtexitOrdering:
    def test_unclosed_plane_is_swept_without_leaks(self, tmp_path):
        """A crashing caller must not leak blocks or tracker warnings."""
        result = subprocess.run(
            [sys.executable, "-c", ATEXIT_SCRIPT],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        # resource_tracker prints leak warnings to stderr at exit; any
        # mention of leaked shared_memory objects is a failure.
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr
        block_name = result.stdout.split()[-1]
        # The block must be gone from the system namespace as well.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=block_name)
