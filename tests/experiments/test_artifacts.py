"""Integration tests: every paper artifact regenerates with the right shape.

Each test runs the experiment (at reduced scale where the default would be
slow) and asserts the *qualitative* claims the paper makes about it — the
reproduction criterion of EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    extensions,
    fig2_convergence,
    fig3_users,
    fig4_utilization,
    fig5_per_user,
    fig6_heterogeneity,
    sim_validation,
    table1,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestTable1:
    def test_structure(self):
        artifact = table1.run()
        assert artifact.experiment_id == "T1"
        assert artifact.column("number_of_computers") == [6, 5, 3, 2]
        assert artifact.column("processing_rate_jobs_per_sec") == [
            10.0,
            20.0,
            50.0,
            100.0,
        ]


class TestFigure2:
    @pytest.fixture(scope="class")
    def artifact(self):
        return fig2_convergence.run(tolerance=1e-6, max_sweeps=200)

    def test_norms_decrease(self, artifact):
        for col in ("norm_nash_0", "norm_nash_p"):
            norms = [v for v in artifact.column(col) if v is not None]
            assert norms[-1] < 1e-5
            assert norms[0] > norms[-1]

    def test_nash_p_converges_no_slower(self, artifact):
        n0 = [v for v in artifact.column("norm_nash_0") if v is not None]
        np_ = [v for v in artifact.column("norm_nash_p") if v is not None]
        assert len(np_) <= len(n0)

    def test_nash_p_starts_closer(self, artifact):
        n0 = artifact.column("norm_nash_0")
        np_ = artifact.column("norm_nash_p")
        assert np_[0] < n0[0]


class TestFigure3:
    @pytest.fixture(scope="class")
    def artifact(self):
        return fig3_users.run(user_counts=(4, 8, 16), tolerance=1e-3)

    def test_nash_p_fewer_iterations_everywhere(self, artifact):
        zero = artifact.column("iterations_nash_0")
        prop = artifact.column("iterations_nash_p")
        assert all(p <= z for p, z in zip(prop, zero))

    def test_iterations_grow_with_users(self, artifact):
        zero = artifact.column("iterations_nash_0")
        assert zero == sorted(zero)


class TestFigure4:
    @pytest.fixture(scope="class")
    def artifact(self):
        return fig4_utilization.run(utilizations=(0.1, 0.3, 0.5, 0.7, 0.9))

    def test_gos_always_best(self, artifact):
        for row in artifact.rows:
            for name in ("ert_nash", "ert_ios", "ert_ps"):
                assert row[name] >= row["ert_gos"] - 1e-12

    def test_nash_tracks_gos(self, artifact):
        for row in artifact.rows:
            assert row["ert_nash"] <= 1.25 * row["ert_gos"]

    def test_ios_equals_ps_at_high_load(self, artifact):
        last = artifact.rows[-1]
        assert last["ert_ios"] == pytest.approx(last["ert_ps"], rel=1e-9)

    def test_fairness_panel(self, artifact):
        for row in artifact.rows:
            assert row["fairness_ps"] == pytest.approx(1.0)
            assert row["fairness_ios"] == pytest.approx(1.0)
            assert row["fairness_nash"] > 0.999
        first, last = artifact.rows[0], artifact.rows[-1]
        assert last["fairness_gos"] < first["fairness_gos"]

    def test_times_grow_with_load(self, artifact):
        nash = artifact.column("ert_nash")
        assert nash == sorted(nash)


class TestFigure5:
    @pytest.fixture(scope="class")
    def artifact(self):
        return fig5_per_user.run()

    def test_ps_ios_flat_across_users(self, artifact):
        for col in ("ert_ps", "ert_ios"):
            values = artifact.column(col)
            assert max(values) - min(values) < 1e-9

    def test_gos_spreads_users(self, artifact):
        values = artifact.column("ert_gos")
        assert max(values) > 1.5 * min(values)

    def test_nash_below_ios_and_ps_for_every_user(self, artifact):
        for row in artifact.rows:
            assert row["ert_nash"] <= row["ert_ios"] + 1e-9
            assert row["ert_nash"] <= row["ert_ps"] + 1e-9


class TestFigure6:
    @pytest.fixture(scope="class")
    def artifact(self):
        return fig6_heterogeneity.run(skewnesses=(1.0, 4.0, 12.0, 20.0))

    def test_homogeneous_point_all_equal(self, artifact):
        row = artifact.rows[0]
        trio = [row["ert_nash"], row["ert_gos"], row["ert_ios"], row["ert_ps"]]
        np.testing.assert_allclose(trio, trio[0], rtol=1e-6)

    def test_nash_approaches_gos_with_skewness(self, artifact):
        last = artifact.rows[-1]
        assert last["ert_nash"] <= 1.05 * last["ert_gos"]

    def test_ps_falls_behind_with_skewness(self, artifact):
        last = artifact.rows[-1]
        assert last["ert_ps"] > 1.5 * last["ert_nash"]

    def test_ios_catches_up_at_high_skewness(self, artifact):
        # At skewness 1 all schemes tie, so compare mid vs high skewness:
        # IOS lags GOS at moderate heterogeneity and closes the gap later.
        mid, last = artifact.rows[1], artifact.rows[-1]
        gap_mid = mid["ert_ios"] / mid["ert_gos"]
        gap_last = last["ert_ios"] / last["ert_gos"]
        assert gap_last < gap_mid


class TestSimValidation:
    def test_within_paper_error_budget(self):
        artifact = sim_validation.run(
            horizon=800.0, warmup=80.0, n_replications=3
        )
        for row in artifact.rows:
            assert row["rel_error"] < 0.05


class TestExtensions:
    def test_poa_at_least_one(self):
        artifact = extensions.run_price_of_anarchy(
            utilizations=(0.3, 0.6, 0.9)
        )
        for row in artifact.rows:
            assert row["price_of_anarchy"] >= 1.0 - 1e-9

    def test_stackelberg_monotone(self):
        artifact = extensions.run_stackelberg(betas=(0.0, 0.5, 1.0))
        times = artifact.column("ert_stackelberg")
        assert times[0] + 1e-9 >= times[1] >= times[2] - 1e-9

    def test_driver_ablation_consistency(self):
        artifact = extensions.run_driver_ablation()
        for row in artifact.rows:
            assert row["iterations_sequential"] == row["iterations_protocol"]
            assert row["max_profile_gap"] < 1e-9

    def test_gos_split_ablation(self):
        artifact = extensions.run_gos_split_ablation()
        times = artifact.column("overall_time")
        np.testing.assert_allclose(times, times[0], rtol=1e-4)
        by_split = {row["split"]: row["fairness"] for row in artifact.rows}
        assert by_split["fair"] == pytest.approx(1.0)
        assert by_split["sequential"] < by_split["fair"]


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "t1",
            "f2",
            "f3",
            "f4",
            "f5",
            "f6",
            "sim",
            "ext1a",
            "ext1b",
            "ext2",
            "ext3",
            "ext4",
            "ext5",
            "ext6",
            "ext7",
            "ext8",
            "ext9",
            "ext10",
            "ext11",
            "abl5",
            "abl1",
            "abl2",
            "abl3",
            "abl4",
        }

    def test_run_experiment_by_id(self):
        artifact = run_experiment("T1")
        assert artifact.experiment_id == "T1"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("nope")
