"""Tests for the parallel sweep executor."""

from __future__ import annotations

import os

import pytest

from repro.experiments.parallel import (
    _POOLS,
    adaptive_chunksize,
    default_workers,
    parallel_map,
    run_experiments_parallel,
    shutdown_pools,
)


def square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], n_workers=1) == [1, 4, 9]

    def test_single_item_stays_serial(self):
        assert parallel_map(square, [5], n_workers=8) == [25]

    def test_parallel_path_preserves_order(self):
        result = parallel_map(square, list(range(20)), n_workers=2)
        assert result == [x * x for x in range(20)]

    def test_empty_input(self):
        assert parallel_map(square, [], n_workers=4) == []

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], n_workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert default_workers() <= (os.cpu_count() or 2)

    def test_explicit_chunksize_still_honoured(self):
        result = parallel_map(
            square, list(range(10)), n_workers=2, chunksize=5
        )
        assert result == [x * x for x in range(10)]

    def test_chunksize_one_for_skewed_items(self):
        # Skewed workloads (e.g. class shards) pin chunksize=1 so no
        # expensive item queues behind a cheap one; semantics unchanged.
        result = parallel_map(
            square, list(range(10)), n_workers=2, chunksize=1
        )
        assert result == [x * x for x in range(10)]

    @pytest.mark.parametrize("chunksize", [0, -1])
    def test_chunksize_validation(self, chunksize):
        with pytest.raises(ValueError, match="chunksize"):
            parallel_map(
                square, [1, 2, 3], n_workers=2, chunksize=chunksize
            )

    def test_chunksize_validated_even_on_serial_path(self):
        # The serial fallback still rejects nonsense chunk sizes so the
        # bug does not hide until a sweep first runs with n_workers > 1.
        with pytest.raises(ValueError, match="chunksize"):
            parallel_map(square, [1, 2, 3], n_workers=1, chunksize=0)


class TestPoolReuse:
    def test_executor_is_reused_across_calls(self):
        shutdown_pools()
        parallel_map(square, list(range(8)), n_workers=2)
        first = _POOLS[(2, None)]
        parallel_map(square, list(range(8)), n_workers=2)
        assert _POOLS[(2, None)] is first

    def test_shutdown_then_recreate(self):
        parallel_map(square, list(range(8)), n_workers=2)
        assert _POOLS
        shutdown_pools()
        assert not _POOLS
        # The next call transparently builds a fresh pool.
        assert parallel_map(square, [1, 2, 3, 4], n_workers=2) == [1, 4, 9, 16]
        shutdown_pools()

    def test_serial_path_creates_no_pool(self):
        shutdown_pools()
        parallel_map(square, [1, 2, 3], n_workers=1)
        assert not _POOLS

    def test_pool_capped_by_item_count(self):
        shutdown_pools()
        parallel_map(square, [1, 2], n_workers=16)
        assert list(_POOLS) == [(2, None)]
        shutdown_pools()

    def test_pools_keyed_by_context(self):
        # Regression: pools used to be keyed by worker count alone, so a
        # caller pinning a different start method silently reused an
        # executor built with the wrong one.
        shutdown_pools()
        parallel_map(square, list(range(8)), n_workers=2)
        default_pool = _POOLS[(2, None)]
        result = parallel_map(
            square, list(range(8)), n_workers=2, context="spawn"
        )
        assert result == [x * x for x in range(8)]
        assert set(_POOLS) == {(2, None), (2, "spawn")}
        assert _POOLS[(2, "spawn")] is not default_pool
        shutdown_pools()

    def test_invalid_context_rejected(self):
        with pytest.raises(ValueError, match="context"):
            parallel_map(square, [1, 2, 3], n_workers=2, context="thread")

    def test_shutdown_midflight_then_immediate_reuse(self):
        # Lifecycle: shutting the shared pools down while results from a
        # previous call are still in hand must not poison the next call —
        # parallel_map transparently rebuilds what it needs.
        shutdown_pools()
        first = parallel_map(square, list(range(12)), n_workers=2)
        shutdown_pools()
        assert not _POOLS
        second = parallel_map(square, list(range(12)), n_workers=2)
        assert first == second == [x * x for x in range(12)]
        shutdown_pools()


class TestAdaptiveChunksize:
    def test_four_chunks_per_worker(self):
        assert adaptive_chunksize(80, 4) == 5
        assert adaptive_chunksize(1000, 8) == 31

    def test_small_sweeps_floor_at_one(self):
        assert adaptive_chunksize(3, 8) == 1
        assert adaptive_chunksize(0, 2) == 1

    def test_fewer_items_than_workers_never_batches(self):
        # Boundary: with n_items < n_workers, rounding used to hand a
        # whole shard batch to one worker as a single chunk.  Every item
        # must be its own chunk so the pool actually fans out.
        for n_items in range(1, 8):
            assert adaptive_chunksize(n_items, 8) == 1

    def test_items_equal_workers_is_one_per_worker(self):
        assert adaptive_chunksize(8, 8) == 1

    def test_chunk_never_coarser_than_one_per_worker(self):
        # Just above the boundary the chunk may grow, but never past
        # ceil(n_items / n_workers) — each worker always gets a chunk.
        for n_items in range(9, 40):
            chunk = adaptive_chunksize(n_items, 8)
            assert 1 <= chunk <= -(-n_items // 8)

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            adaptive_chunksize(10, 0)

    def test_parallel_map_uses_adaptive_default(self):
        # 40 items / (4 * 2 workers) => chunksize 5; results must still be
        # complete and ordered.
        result = parallel_map(square, list(range(40)), n_workers=2)
        assert result == [x * x for x in range(40)]


class TestParallelExperiments:
    def test_runs_fast_experiments(self):
        results = run_experiments_parallel(["t1", "f5"], n_workers=2)
        assert set(results) == {"t1", "f5"}
        assert results["t1"].experiment_id == "T1"
        assert results["f5"].experiment_id == "F5"

    def test_serial_equivalent(self):
        parallel = run_experiments_parallel(["t1"], n_workers=1)
        assert parallel["t1"].rows == run_experiments_parallel(
            ["t1"], n_workers=2
        )["t1"].rows

    def test_unknown_id_rejected_before_dispatch(self):
        with pytest.raises(KeyError, match="unknown"):
            run_experiments_parallel(["t1", "nope"])
