"""EXT9 artifact: crash-fault tolerance experiment."""

from __future__ import annotations

import pytest

from repro.experiments.ext_crash_recovery import run_crash_recovery


@pytest.fixture(scope="module")
def artifact():
    return run_crash_recovery(n_users=4, seeds=(0, 1))


class TestCrashRecoveryArtifact:
    def test_structure(self, artifact):
        assert artifact.experiment_id == "EXT9"
        assert len(artifact.rows) == 3  # baseline + 2 seeds
        assert "profile_gap" in artifact.columns

    def test_every_run_converges(self, artifact):
        assert all(artifact.column("converged"))

    def test_degraded_equilibrium_guarantee(self, artifact):
        assert all(gap <= 1e-6 for gap in artifact.column("profile_gap"))

    def test_faulty_rows_record_recovery(self, artifact):
        for row in artifact.rows[1:]:
            assert row["crashes"] == 1
            assert row["restarts"] == 1
            assert row["failed_computer"] != ""

    def test_faults_cost_messages(self, artifact):
        baseline = artifact.rows[0]["messages"]
        for row in artifact.rows[1:]:
            assert row["messages"] > baseline
