"""EXT11 artifact: power-of-k sampled best replies at reduced scale."""

from __future__ import annotations

import pytest

from repro.experiments.ext_sampled import run_sampled_information


@pytest.fixture(scope="module")
def artifact():
    return run_sampled_information(
        ks=(1, 2, 5),
        n_computers=200,
        n_classes=12,
        users_per_class=50,
        max_sweeps=120,
        protocol_computers=32,
        protocol_users=8,
        seed=3,
    )


class TestSampledInformationArtifact:
    def test_structure(self, artifact):
        assert artifact.experiment_id == "EXT11"
        assert "vs_exact_pct" in artifact.columns
        assert artifact.column("k") == [1, 2, 5, 200]

    def test_last_row_is_the_exact_baseline(self, artifact):
        last = artifact.rows[-1]
        assert last["k"] == 200
        assert last["vs_exact_pct"] == 0.0
        assert last["msg_x"] == 1.0

    def test_quality_close_to_exact_at_moderate_k(self, artifact):
        gaps = artifact.column("vs_exact_pct")
        # k=5 lands within a few percent of the exact solve; sampling
        # can even edge past a sweep-budget-limited exact run, so only
        # the magnitude is pinned, not the sign.
        assert abs(gaps[2]) <= 5.0
        assert all(abs(gap) <= abs(gaps[0]) + 5.0 for gap in gaps)

    def test_message_reduction_shrinks_with_k(self, artifact):
        reductions = artifact.column("msg_x")
        assert reductions == sorted(reductions, reverse=True)
        assert reductions[0] > reductions[-1] == 1.0

    def test_polls_scale_with_k(self, artifact):
        polls = artifact.column("polls")
        assert polls == sorted(polls)
        sweeps = artifact.column("sweeps")
        # The k=n row pays the full m·n observation cost every sweep.
        assert polls[-1] == sweeps[-1] * 12 * 200
