"""EXT10 artifact: online equilibrium engine day-in-production run."""

from __future__ import annotations

import pytest

from repro.experiments.ext_online import run_online_service


@pytest.fixture(scope="module")
def artifact():
    return run_online_service(
        n_epochs=16,
        n_users=6,
        sim_every=8,
        horizon=300.0,
        warmup=50.0,
        seed=3,
    )


class TestOnlineServiceArtifact:
    def test_structure(self, artifact):
        assert artifact.experiment_id == "EXT10"
        assert "sim_time" in artifact.columns
        assert "eps" in artifact.columns
        assert artifact.rows  # at least the sampled epochs

    def test_every_sampled_epoch_is_certified(self, artifact):
        for eps in artifact.column("eps"):
            assert eps <= 1e-6

    def test_degraded_window_is_sampled(self, artifact):
        # The first epoch of the failure window is always included even
        # when it misses the sim_every grid.
        statuses = artifact.column("status")
        assert "degraded" in statuses
        degraded = [
            row for row in artifact.rows if row["status"] == "degraded"
        ]
        assert all(row["online"] == 15 for row in degraded)

    def test_simulation_validates_predictions(self, artifact):
        # The event-simulator replay under outages agrees with the
        # analytic prediction to a few percent at these horizons.
        for row in artifact.rows:
            assert row["rel_err"] <= 0.15

    def test_notes_carry_run_rollup(self, artifact):
        notes = " ".join(artifact.notes)
        assert "all certified: True" in notes
        assert "SLA" in notes
