"""Integration tests for the deployment experiments (EXT6/ABL5)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_deployment


class TestMeasuredLoop:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_deployment.run_measured_loop(
            n_users=4, windows=(40.0, 160.0), cycles=4
        )

    def test_regret_small_relative_to_times(self, artifact):
        for row in artifact.rows:
            assert row["relative_to_equilibrium_time"] < 0.25

    def test_longer_windows_tighter_loop(self, artifact):
        regrets = artifact.column("mean_tail_regret")
        assert regrets[-1] < regrets[0]

    def test_estimate_errors_reported(self, artifact):
        for row in artifact.rows:
            assert 0.0 <= row["mean_load_estimate_error"] < 0.5


class TestFaultTolerance:
    @pytest.fixture(scope="class")
    def artifact(self):
        return ext_deployment.run_fault_tolerance(
            n_users=4, fault_levels=((0.0, 0.0), (0.25, 0.1))
        )

    def test_always_converges(self, artifact):
        assert all(artifact.column("converged"))

    def test_equilibrium_unaffected(self, artifact):
        for row in artifact.rows:
            assert row["max_time_gap_vs_lossless"] < 1e-9

    def test_faults_cost_messages(self, artifact):
        messages = artifact.column("messages")
        assert messages[-1] > messages[0]
        assert artifact.rows[0]["message_overhead"] == 0.0
        assert artifact.rows[-1]["message_overhead"] > 0.0


class TestMechanismFrugality:
    @pytest.fixture(scope="class")
    def artifact(self):
        from repro.experiments import ext_mechanism

        return ext_mechanism.run_mechanism_frugality(
            demand_fractions=(0.2, 0.6)
        )

    def test_overpayment_above_one_and_growing(self, artifact):
        ratios = artifact.column("overpayment_ratio")
        assert all(r >= 1.0 for r in ratios)
        assert ratios[-1] > ratios[0]

    def test_more_demand_more_machines(self, artifact):
        used = artifact.column("machines_used")
        assert used[-1] > used[0]

    def test_fast_machines_profit(self, artifact):
        for row in artifact.rows:
            assert row["fast_machine_profit"] > 0.0
