"""Tests for the parallel replication layer and the pre-drawn pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.replication import (
    _chunk_bounds,
    simulate_batch_parallel,
)
from repro.experiments.shm import clear_worker_cache, shm_available
from repro.schemes import NashScheme
from repro.simengine.fastpath import (
    predraw_uniform_pool,
    simulate_profile_fast_batch,
)
from repro.simengine.rng import replication_seeds
from repro.workloads.configs import paper_table1_system


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_worker_cache()
    yield
    clear_worker_cache()


@pytest.fixture(scope="module")
def study():
    system = paper_table1_system(utilization=0.6, n_users=6)
    profile = NashScheme().allocate(system).profile
    return system, profile


def _assert_results_equal(actual, expected):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        np.testing.assert_array_equal(
            a.user_mean_response_times, b.user_mean_response_times
        )
        np.testing.assert_array_equal(a.user_job_counts, b.user_job_counts)
        np.testing.assert_array_equal(
            a.computer_utilizations, b.computer_utilizations
        )
        np.testing.assert_array_equal(
            a.computer_job_counts, b.computer_job_counts
        )


class TestPredrawnPool:
    def test_external_pool_is_bit_identical(self, study):
        system, profile = study
        seeds = replication_seeds(7, 4)
        baseline = simulate_profile_fast_batch(
            system, profile, horizon=50.0, warmup=5.0, seeds=seeds
        )
        pool = predraw_uniform_pool(
            system, profile, horizon=50.0, seeds=seeds
        )
        pooled = simulate_profile_fast_batch(
            system,
            profile,
            horizon=50.0,
            warmup=5.0,
            seeds=seeds,
            uniform_pool=pool,
        )
        _assert_results_equal(pooled, baseline)

    def test_row_slice_of_pool_matches_seed_slice(self, study):
        # The chunking property the parallel layer relies on: any
        # contiguous (seeds, pool-rows) slice reproduces the full
        # batch's corresponding results exactly.
        system, profile = study
        seeds = replication_seeds(7, 5)
        baseline = simulate_profile_fast_batch(
            system, profile, horizon=50.0, seeds=seeds
        )
        pool = predraw_uniform_pool(
            system, profile, horizon=50.0, seeds=seeds
        )
        sliced = simulate_profile_fast_batch(
            system,
            profile,
            horizon=50.0,
            seeds=seeds[2:5],
            uniform_pool=pool[2:5],
        )
        _assert_results_equal(sliced, baseline[2:5])

    def test_pool_shape_validated(self, study):
        system, profile = study
        seeds = replication_seeds(7, 3)
        pool = predraw_uniform_pool(
            system, profile, horizon=50.0, seeds=seeds
        )
        with pytest.raises(ValueError, match="one row per seed"):
            simulate_profile_fast_batch(
                system,
                profile,
                horizon=50.0,
                seeds=seeds,
                uniform_pool=pool[:2],
            )
        with pytest.raises(ValueError, match="too narrow"):
            simulate_profile_fast_batch(
                system,
                profile,
                horizon=50.0,
                seeds=seeds,
                uniform_pool=pool[:, : pool.shape[1] // 2],
            )

    def test_predraw_rejects_bad_inputs(self, study):
        system, profile = study
        with pytest.raises(ValueError, match="horizon"):
            predraw_uniform_pool(system, profile, horizon=0.0, seeds=[1])
        with pytest.raises(ValueError, match="seeds"):
            predraw_uniform_pool(system, profile, horizon=10.0, seeds=[])


class TestSimulateBatchParallel:
    def test_serial_path_matches_plain_batch(self, study):
        system, profile = study
        seeds = replication_seeds(11, 4)
        baseline = simulate_profile_fast_batch(
            system, profile, horizon=50.0, warmup=5.0, seeds=seeds
        )
        serial = simulate_batch_parallel(
            system,
            profile,
            horizon=50.0,
            warmup=5.0,
            seeds=seeds,
            n_workers=1,
        )
        _assert_results_equal(serial, baseline)

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_parallel_shm_bit_identical(self, study):
        system, profile = study
        seeds = replication_seeds(11, 5)
        baseline = simulate_profile_fast_batch(
            system, profile, horizon=50.0, warmup=5.0, seeds=seeds
        )
        parallel = simulate_batch_parallel(
            system,
            profile,
            horizon=50.0,
            warmup=5.0,
            seeds=seeds,
            n_workers=2,
            use_shm=True,
        )
        _assert_results_equal(parallel, baseline)

    def test_parallel_pickle_fallback_bit_identical(self, study):
        system, profile = study
        seeds = replication_seeds(11, 4)
        baseline = simulate_profile_fast_batch(
            system, profile, horizon=50.0, seeds=seeds
        )
        parallel = simulate_batch_parallel(
            system,
            profile,
            horizon=50.0,
            seeds=seeds,
            n_workers=2,
            use_shm=False,
        )
        _assert_results_equal(parallel, baseline)

    def test_rejects_bad_inputs(self, study):
        system, profile = study
        with pytest.raises(ValueError, match="seeds"):
            simulate_batch_parallel(
                system, profile, horizon=10.0, seeds=[], n_workers=2
            )
        with pytest.raises(ValueError, match="n_workers"):
            simulate_batch_parallel(
                system, profile, horizon=10.0, seeds=[1, 2], n_workers=0
            )


class TestChunkBounds:
    def test_covers_all_runs_contiguously(self):
        for n_runs in (1, 2, 5, 7, 16):
            for n_chunks in (1, 2, 3, 8, 32):
                bounds = _chunk_bounds(n_runs, n_chunks)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_runs
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1
                assert min(sizes) >= 1


class TestSimValidationWorkers:
    def test_run_accepts_n_workers_and_matches_serial(self):
        from repro.experiments.sim_validation import run

        serial = run(horizon=40.0, warmup=4.0, n_replications=3, n_workers=1)
        parallel = run(
            horizon=40.0, warmup=4.0, n_replications=3, n_workers=2
        )
        assert serial.rows == parallel.rows
