"""Unit tests for the event queue core."""

from __future__ import annotations

import pytest

from repro.simengine.events import Event, EventKind, EventQueue


class TestEventOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.schedule(3.0, EventKind.JOB_ARRIVAL)
        q.schedule(1.0, EventKind.JOB_DEPARTURE)
        q.schedule(2.0, EventKind.JOB_ARRIVAL)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.JOB_DEPARTURE,
            EventKind.JOB_ARRIVAL,
            EventKind.JOB_ARRIVAL,
        ]

    def test_fifo_tie_breaking(self):
        q = EventQueue()
        first = q.schedule(1.0, EventKind.JOB_ARRIVAL, payload="first")
        second = q.schedule(1.0, EventKind.JOB_ARRIVAL, payload="second")
        assert first.seq < second.seq
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_event_comparison(self):
        a = Event(time=1.0, seq=0, kind=EventKind.JOB_ARRIVAL)
        b = Event(time=1.0, seq=1, kind=EventKind.JOB_ARRIVAL)
        c = Event(time=2.0, seq=0, kind=EventKind.JOB_ARRIVAL)
        assert a < b < c


class TestClock:
    def test_now_advances_on_pop(self):
        q = EventQueue()
        q.schedule(5.0, EventKind.JOB_ARRIVAL)
        assert q.now == 0.0
        q.pop()
        assert q.now == 5.0

    def test_schedule_after(self):
        q = EventQueue()
        q.schedule(2.0, EventKind.JOB_ARRIVAL)
        q.pop()
        event = q.schedule_after(1.5, EventKind.JOB_DEPARTURE)
        assert event.time == pytest.approx(3.5)

    def test_schedule_after_rejects_negative(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_after(-1.0, EventKind.JOB_ARRIVAL)

    def test_cannot_schedule_into_past(self):
        q = EventQueue()
        q.schedule(5.0, EventKind.JOB_ARRIVAL)
        q.pop()
        with pytest.raises(ValueError, match="before current time"):
            q.schedule(4.0, EventKind.JOB_DEPARTURE)

    def test_same_time_as_now_allowed(self):
        q = EventQueue()
        q.schedule(5.0, EventKind.JOB_ARRIVAL)
        q.pop()
        q.schedule(5.0, EventKind.JOB_DEPARTURE)  # must not raise


class TestContainer:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.schedule(1.0, EventKind.JOB_ARRIVAL)
        assert q
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek(self):
        q = EventQueue()
        q.schedule(2.0, EventKind.JOB_ARRIVAL)
        q.schedule(1.0, EventKind.JOB_DEPARTURE)
        assert q.peek().time == 1.0
        assert len(q) == 2  # peek does not consume

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()
