"""Tests for replication statistics (paper Sec. 4.1 methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simengine.stats import replicate, replicate_until


class TestReplicate:
    def test_shapes(self):
        stats = replicate(
            lambda seq: np.random.Generator(np.random.PCG64(seq)).normal(
                10.0, 1.0, size=3
            ),
            n_replications=5,
            seed=1,
        )
        assert stats.samples.shape == (5, 3)
        assert stats.mean.shape == (3,)
        assert stats.n_replications == 5

    def test_deterministic(self):
        def measure(seq):
            return np.random.Generator(np.random.PCG64(seq)).normal(size=2)

        a = replicate(measure, n_replications=3, seed=7)
        b = replicate(measure, n_replications=3, seed=7)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_constant_measurement_zero_error(self):
        stats = replicate(
            lambda seq: np.array([2.0, 4.0]), n_replications=4, seed=0
        )
        np.testing.assert_array_equal(stats.std_error, 0.0)
        np.testing.assert_array_equal(stats.mean, [2.0, 4.0])
        assert stats.within_relative_error(0.0)


class TestZeroMeanRelativeError:
    """Regression: a zero-mean component used to produce inf/NaN (plus a
    RuntimeWarning) and silently break the acceptance criterion."""

    def test_deterministic_zero_component_satisfies_criterion(self):
        # Mean 0, spread 0: a deterministic zero measurement trivially
        # meets any relative-error target — defined as exactly 0.0.
        stats = replicate(
            lambda seq: np.array([0.0, 5.0]), n_replications=4, seed=0
        )
        with np.errstate(all="raise"):  # would trip on a 0/0 divide
            relative = stats.relative_std_error
        np.testing.assert_array_equal(relative, [0.0, 0.0])
        assert stats.within_relative_error(0.05)

    def test_zero_mean_with_spread_raises(self):
        # Mean 0 with nonzero spread has no meaningful relative error.
        def measure(seq):
            rng = np.random.Generator(np.random.PCG64(seq))
            return np.array([rng.choice([-1.0, 1.0]), 3.0])

        values = iter([1.0, -1.0, 1.0, -1.0])
        stats = replicate(
            lambda seq: np.array([next(values), 3.0]),
            n_replications=4,
            seed=0,
        )
        assert stats.mean[0] == 0.0
        assert stats.std_error[0] > 0.0
        with pytest.raises(ValueError, match="zero-mean"):
            stats.relative_std_error
        with pytest.raises(ValueError, match="indices \\[0\\]"):
            stats.within_relative_error(0.05)

    def test_replicate_until_accepts_deterministic_zero(self):
        # Before the fix the inf relative error meant the target never
        # held and replicate_until burned its whole budget.
        calls = {"n": 0}

        def measure(seq):
            calls["n"] += 1
            return np.array([0.0, 7.0])

        stats = replicate_until(
            measure,
            target_relative_error=0.05,
            min_replications=3,
            max_replications=50,
            seed=0,
        )
        assert stats.n_replications == 3
        assert calls["n"] == 3

    def test_confidence_interval_brackets_mean(self):
        stats = replicate(
            lambda seq: np.random.Generator(np.random.PCG64(seq)).normal(
                5.0, 0.5, size=1
            ),
            n_replications=10,
            seed=3,
        )
        assert stats.ci_low[0] <= stats.mean[0] <= stats.ci_high[0]

    def test_wider_interval_at_higher_confidence(self):
        def measure(seq):
            return np.random.Generator(np.random.PCG64(seq)).normal(size=1)

        narrow = replicate(measure, n_replications=6, seed=5, confidence=0.8)
        wide = replicate(measure, n_replications=6, seed=5, confidence=0.99)
        narrow_width = narrow.ci_high[0] - narrow.ci_low[0]
        wide_width = wide.ci_high[0] - wide.ci_low[0]
        assert wide_width > narrow_width

    def test_relative_error_criterion(self):
        stats = replicate(
            lambda seq: np.random.Generator(np.random.PCG64(seq)).normal(
                100.0, 1.0, size=1
            ),
            n_replications=5,
            seed=4,
        )
        assert stats.within_relative_error(0.05)
        assert not stats.within_relative_error(1e-9)

    def test_requires_two_replications(self):
        with pytest.raises(ValueError):
            replicate(lambda seq: np.array([1.0]), n_replications=1)

    def test_requires_valid_confidence(self):
        with pytest.raises(ValueError):
            replicate(
                lambda seq: np.array([1.0]), n_replications=3, confidence=1.0
            )

    def test_requires_1d_measurement(self):
        with pytest.raises(ValueError):
            replicate(
                lambda seq: np.zeros((2, 2)), n_replications=3, seed=0
            )

    def test_std_error_shrinks_with_replications(self):
        def measure(seq):
            return np.random.Generator(np.random.PCG64(seq)).normal(size=1)

        few = replicate(measure, n_replications=4, seed=6)
        many = replicate(measure, n_replications=64, seed=6)
        assert many.std_error[0] < few.std_error[0]


class TestReplicateUntil:
    @staticmethod
    def noisy_measure(scale):
        def measure(seq):
            rng = np.random.Generator(np.random.PCG64(seq))
            return rng.normal(100.0, scale, size=2)

        return measure

    def test_stops_at_min_when_precise(self):
        from repro.simengine.stats import replicate_until

        stats = replicate_until(
            self.noisy_measure(0.01),
            target_relative_error=0.05,
            min_replications=3,
            max_replications=30,
            seed=1,
        )
        assert stats.n_replications == 3
        assert stats.within_relative_error(0.05)

    def test_keeps_adding_when_noisy(self):
        from repro.simengine.stats import replicate_until

        loose = replicate_until(
            self.noisy_measure(30.0),
            target_relative_error=0.02,
            min_replications=3,
            max_replications=40,
            seed=2,
        )
        assert loose.n_replications > 3

    def test_budget_cap_respected(self):
        from repro.simengine.stats import replicate_until

        stats = replicate_until(
            self.noisy_measure(500.0),
            target_relative_error=1e-6,
            min_replications=2,
            max_replications=5,
            seed=3,
        )
        assert stats.n_replications == 5

    def test_validation(self):
        from repro.simengine.stats import replicate_until

        with pytest.raises(ValueError):
            replicate_until(self.noisy_measure(1.0), min_replications=1)
        with pytest.raises(ValueError):
            replicate_until(
                self.noisy_measure(1.0), target_relative_error=0.0
            )

    def test_deterministic_prefix(self):
        """The adaptive run's replications are a prefix of the fixed run's."""
        from repro.simengine.stats import replicate, replicate_until

        fixed = replicate(self.noisy_measure(5.0), n_replications=10, seed=4)
        adaptive = replicate_until(
            self.noisy_measure(5.0),
            target_relative_error=0.05,
            min_replications=3,
            max_replications=10,
            seed=4,
        )
        k = adaptive.n_replications
        np.testing.assert_array_equal(adaptive.samples, fixed.samples[:k])
