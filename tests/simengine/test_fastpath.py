"""Tests for the vectorized Lindley fast-path simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.queueing.mm1 import expected_response_time
from repro.simengine.fastpath import mm1_lindley_waits, simulate_profile_fast
from repro.simengine.simulator import simulate_profile


def reference_lindley(interarrivals, services):
    """Plain-loop Lindley recursion as an oracle."""
    waits = np.zeros(len(services))
    for k in range(1, len(services)):
        waits[k] = max(0.0, waits[k - 1] + services[k - 1] - interarrivals[k])
    return waits


class TestLindleyRecursion:
    def test_matches_loop_reference(self, rng):
        gaps = rng.exponential(0.5, size=500)
        services = rng.exponential(0.3, size=500)
        np.testing.assert_allclose(
            mm1_lindley_waits(gaps, services),
            reference_lindley(gaps, services),
            atol=1e-12,
        )

    def test_no_wait_when_arrivals_sparse(self):
        gaps = np.full(10, 100.0)
        services = np.full(10, 0.1)
        waits = mm1_lindley_waits(gaps, services)
        np.testing.assert_array_equal(waits, 0.0)

    def test_queue_builds_when_overloaded(self):
        gaps = np.full(50, 0.1)
        services = np.full(50, 0.2)
        waits = mm1_lindley_waits(gaps, services)
        # Deterministic D/D/1 with rho=2: wait grows by 0.1 per job.
        np.testing.assert_allclose(waits, 0.1 * np.arange(50), atol=1e-12)

    def test_first_job_never_waits(self, rng):
        gaps = rng.exponential(1.0, size=20)
        services = rng.exponential(1.0, size=20)
        assert mm1_lindley_waits(gaps, services)[0] == 0.0

    def test_empty_input(self):
        assert mm1_lindley_waits(np.array([]), np.array([])).size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mm1_lindley_waits(np.zeros(3), np.zeros(4))


class TestFastSimulator:
    def test_single_queue_matches_theory(self):
        system = DistributedSystem(service_rates=[5.0], arrival_rates=[3.0])
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile_fast(
            system, profile, horizon=20_000.0, warmup=1000.0, seed=1
        )
        theory = expected_response_time(3.0, 5.0)
        assert result.user_mean_response_times[0] == pytest.approx(
            theory, rel=0.05
        )

    def test_agrees_with_event_engine(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        fast = simulate_profile_fast(
            two_by_two, profile, horizon=20_000.0, warmup=1000.0, seed=2
        )
        slow = simulate_profile(
            two_by_two, profile, horizon=4000.0, warmup=400.0, seed=2
        )
        np.testing.assert_allclose(
            fast.user_mean_response_times,
            slow.user_mean_response_times,
            rtol=0.08,
        )

    def test_matches_analytic_on_table1(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        analytic = table1_medium.user_response_times(profile.fractions)
        result = simulate_profile_fast(
            table1_medium, profile, horizon=2000.0, warmup=200.0, seed=3
        )
        np.testing.assert_allclose(
            result.user_mean_response_times, analytic, rtol=0.05
        )

    def test_deterministic(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        a = simulate_profile_fast(two_by_two, profile, horizon=500.0, seed=4)
        b = simulate_profile_fast(two_by_two, profile, horizon=500.0, seed=4)
        np.testing.assert_array_equal(
            a.user_mean_response_times, b.user_mean_response_times
        )

    def test_unused_computer_empty(self, two_by_two):
        profile = StrategyProfile(np.array([[1.0, 0.0], [1.0, 0.0]]))
        result = simulate_profile_fast(
            two_by_two, profile, horizon=200.0, seed=5
        )
        assert result.computer_job_counts[1] == 0

    def test_user_attribution_proportional(self):
        # User 0 sends twice user 1's traffic to the single computer.
        system = DistributedSystem(
            service_rates=[10.0], arrival_rates=[4.0, 2.0]
        )
        profile = StrategyProfile(np.array([[1.0], [1.0]]))
        result = simulate_profile_fast(
            system, profile, horizon=5000.0, seed=6
        )
        ratio = result.user_job_counts[0] / result.user_job_counts[1]
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_utilization_estimate(self):
        system = DistributedSystem(service_rates=[5.0], arrival_rates=[2.0])
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile_fast(
            system, profile, horizon=10_000.0, seed=7
        )
        assert result.computer_utilizations[0] == pytest.approx(0.4, abs=0.02)

    def test_rejects_bad_parameters(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        with pytest.raises(ValueError):
            simulate_profile_fast(two_by_two, profile, horizon=-1.0)
        with pytest.raises(ValueError):
            simulate_profile_fast(
                two_by_two, profile, horizon=1.0, warmup=2.0
            )
