"""Server-outage tests for the event-driven simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.nash import compute_nash_equilibrium
from repro.simengine import ServerOutage, simulate_profile


@pytest.fixture(scope="module")
def system():
    return DistributedSystem(
        service_rates=np.array([20.0, 15.0, 10.0]),
        arrival_rates=np.array([10.0, 8.0]),
    )


@pytest.fixture(scope="module")
def profile(system):
    return compute_nash_equilibrium(system).profile


class TestServerOutage:
    def test_validation(self):
        with pytest.raises(ValueError, match="start < end"):
            ServerOutage(0, 10.0, 10.0)
        with pytest.raises(ValueError, match="start < end"):
            ServerOutage(0, -1.0, 10.0)
        with pytest.raises(ValueError, match="nonnegative"):
            ServerOutage(-1, 0.0, 10.0)

    def test_permanent_by_default(self):
        outage = ServerOutage(2, 100.0)
        assert outage.end == math.inf
        assert outage.duration == math.inf

    def test_overlap(self):
        outage = ServerOutage(0, 100.0, 300.0)
        assert outage.overlap(0.0, 1000.0) == 200.0
        assert outage.overlap(200.0, 1000.0) == 100.0
        assert outage.overlap(400.0, 1000.0) == 0.0


class TestSimulatedOutages:
    def test_no_outages_unchanged(self, system, profile):
        baseline = simulate_profile(
            system, profile, horizon=500.0, warmup=50.0, seed=3
        )
        explicit = simulate_profile(
            system, profile, horizon=500.0, warmup=50.0, seed=3, outages=[]
        )
        np.testing.assert_array_equal(
            baseline.user_mean_response_times,
            explicit.user_mean_response_times,
        )
        assert np.all(explicit.computer_downtime == 0.0)

    def test_outage_degrades_response_times(self, system, profile):
        clean = simulate_profile(
            system, profile, horizon=1500.0, warmup=150.0, seed=7
        )
        hit = simulate_profile(
            system,
            profile,
            horizon=1500.0,
            warmup=150.0,
            seed=7,
            outages=[ServerOutage(0, 400.0, 800.0)],
        )
        assert (
            hit.overall_mean_response_time()
            > clean.overall_mean_response_time()
        )
        assert hit.computer_downtime[0] == pytest.approx(400.0)
        # No jobs are dropped: the same arrival stream is generated.
        assert hit.total_jobs <= clean.total_jobs  # some may finish late

    def test_no_completions_during_outage_window(self, system, profile):
        result = simulate_profile(
            system,
            profile,
            horizon=1000.0,
            warmup=0.0,
            seed=5,
            outages=[ServerOutage(1, 200.0, 900.0)],
        )
        # Computer 1 is down 70% of the horizon: its busy fraction
        # cannot exceed the time it was actually up.
        assert result.computer_utilizations[1] < 0.35

    def test_permanent_outage(self, system, profile):
        result = simulate_profile(
            system,
            profile,
            horizon=1000.0,
            warmup=100.0,
            seed=9,
            outages=[ServerOutage(2, 300.0)],
        )
        assert result.computer_downtime[2] == pytest.approx(700.0)

    def test_overlapping_windows_rejected(self, system, profile):
        with pytest.raises(ValueError, match="overlapping"):
            simulate_profile(
                system,
                profile,
                horizon=100.0,
                outages=[
                    ServerOutage(0, 10.0, 50.0),
                    ServerOutage(0, 40.0, 60.0),
                ],
            )

    def test_out_of_range_computer_rejected(self, system, profile):
        with pytest.raises(ValueError, match="out of range"):
            simulate_profile(
                system,
                profile,
                horizon=100.0,
                outages=[ServerOutage(3, 10.0, 50.0)],
            )

    def test_sequential_windows_allowed(self, system, profile):
        result = simulate_profile(
            system,
            profile,
            horizon=1000.0,
            warmup=0.0,
            seed=2,
            outages=[
                ServerOutage(0, 100.0, 200.0),
                ServerOutage(0, 500.0, 650.0),
            ],
        )
        assert result.computer_downtime[0] == pytest.approx(250.0)

    def test_interrupted_job_restarts_and_completes(self, system):
        # Route everything from one slow user to one computer, crash it
        # mid-service, and check work still completes after resume.
        single = DistributedSystem(
            service_rates=np.array([5.0]),
            arrival_rates=np.array([2.0]),
        )
        eq = compute_nash_equilibrium(single)
        result = simulate_profile(
            single,
            eq.profile,
            horizon=400.0,
            warmup=0.0,
            seed=1,
            outages=[ServerOutage(0, 100.0, 150.0)],
        )
        assert result.total_jobs > 0
        assert np.isfinite(result.user_mean_response_times).all()
