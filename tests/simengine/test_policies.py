"""Tests for the dynamic dispatch policies (EXT2 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.simengine.entities import Computer, Job
from repro.simengine.policies import (
    JoinShortestQueue,
    LeastExpectedDelay,
    PowerOfTwoChoices,
    StaticPolicy,
)
from repro.simengine.simulator import simulate_policy, simulate_profile
from repro.workloads.configs import paper_table1_system


def computers(rates, occupancy=None, seed=0):
    """Computers with forced run-queue occupancy for policy unit tests."""
    rng = np.random.default_rng(seed)
    machines = [Computer(i, float(r), rng) for i, r in enumerate(rates)]
    if occupancy:
        for index, count in enumerate(occupancy):
            for k in range(count):
                machines[index].accept(
                    Job(job_id=100 * index + k, user=0, computer=index,
                        arrival_time=0.0),
                    now=0.0,
                )
    return machines


class TestStaticPolicy:
    def test_matches_fraction_frequencies(self):
        policy = StaticPolicy(np.array([[0.8, 0.2]]))
        rng = np.random.default_rng(0)
        machines = computers([1.0, 1.0])
        picks = np.array(
            [policy.choose(0, machines, rng) for _ in range(20_000)]
        )
        assert np.mean(picks == 0) == pytest.approx(0.8, abs=0.01)

    def test_validates_rows(self):
        with pytest.raises(ValueError):
            StaticPolicy(np.array([[0.5, 0.4]]))
        with pytest.raises(ValueError):
            StaticPolicy(np.array([0.5, 0.5]))


class TestJoinShortestQueue:
    def test_picks_emptiest(self):
        machines = computers([1.0, 1.0, 1.0], occupancy=[2, 0, 1])
        policy = JoinShortestQueue()
        rng = np.random.default_rng(0)
        assert policy.choose(0, machines, rng) == 1

    def test_speed_tie_break(self):
        machines = computers([1.0, 5.0], occupancy=[1, 1])
        policy = JoinShortestQueue()
        rng = np.random.default_rng(0)
        assert policy.choose(0, machines, rng) == 1


class TestLeastExpectedDelay:
    def test_prefers_fast_busy_over_slow_idle(self):
        # (2+1)/10 = 0.3 < (0+1)/1 = 1.0
        machines = computers([10.0, 1.0], occupancy=[2, 0])
        policy = LeastExpectedDelay()
        rng = np.random.default_rng(0)
        assert policy.choose(0, machines, rng) == 0

    def test_prefers_idle_when_rates_equal(self):
        machines = computers([2.0, 2.0], occupancy=[3, 1])
        policy = LeastExpectedDelay()
        rng = np.random.default_rng(0)
        assert policy.choose(0, machines, rng) == 1


class TestPowerOfTwoChoices:
    def test_validates_d(self):
        with pytest.raises(ValueError):
            PowerOfTwoChoices(d=0)

    def test_d_one_is_rate_weighted_random(self):
        machines = computers([9.0, 1.0])
        policy = PowerOfTwoChoices(d=1)
        rng = np.random.default_rng(1)
        picks = np.array(
            [policy.choose(0, machines, rng) for _ in range(10_000)]
        )
        assert np.mean(picks == 0) == pytest.approx(0.9, abs=0.02)

    def test_candidate_subset_respected(self):
        machines = computers([1.0, 1.0, 1.0], occupancy=[0, 5, 5])
        policy = PowerOfTwoChoices(d=3)  # examines all -> picks the idle one
        rng = np.random.default_rng(2)
        assert policy.choose(0, machines, rng) == 0


class TestPolicySimulation:
    @pytest.fixture(scope="class")
    def system(self):
        return paper_table1_system(utilization=0.6, n_users=4)

    def test_requires_exactly_one_of_profile_policy(self, system):
        from repro.simengine.simulator import LoadBalancingSimulation

        with pytest.raises(ValueError, match="exactly one"):
            LoadBalancingSimulation(system, horizon=10.0)
        with pytest.raises(ValueError, match="exactly one"):
            LoadBalancingSimulation(
                system,
                StrategyProfile.proportional(system),
                policy=JoinShortestQueue(),
                horizon=10.0,
            )

    def test_dynamic_beats_static_proportional(self, system):
        static = simulate_profile(
            system,
            StrategyProfile.proportional(system),
            horizon=300.0,
            warmup=30.0,
            seed=4,
        )
        for policy in (JoinShortestQueue(), LeastExpectedDelay()):
            dynamic = simulate_policy(
                system, policy, horizon=300.0, warmup=30.0, seed=4
            )
            assert (
                dynamic.overall_mean_response_time()
                < static.overall_mean_response_time()
            )

    def test_all_jobs_accounted(self, system):
        result = simulate_policy(
            system, JoinShortestQueue(), horizon=100.0, seed=5
        )
        assert result.total_jobs == result.computer_job_counts.sum()

    def test_deterministic(self, system):
        a = simulate_policy(
            system, LeastExpectedDelay(), horizon=100.0, seed=6
        )
        b = simulate_policy(
            system, LeastExpectedDelay(), horizon=100.0, seed=6
        )
        np.testing.assert_array_equal(
            a.user_mean_response_times, b.user_mean_response_times
        )

    def test_static_policy_equivalent_to_profile_path(self, system):
        profile = StrategyProfile.proportional(system)
        via_profile = simulate_profile(
            system, profile, horizon=150.0, seed=7
        )
        via_policy = simulate_policy(
            system, StaticPolicy(profile.fractions), horizon=150.0, seed=7
        )
        np.testing.assert_array_equal(
            via_profile.user_mean_response_times,
            via_policy.user_mean_response_times,
        )

    def test_jsq_on_homogeneous_two_servers(self):
        """Sanity: JSQ on 2 identical M/M/1 servers beats Bernoulli split."""
        system = DistributedSystem(
            service_rates=[5.0, 5.0], arrival_rates=[6.0]
        )
        static = simulate_profile(
            system,
            StrategyProfile(np.array([[0.5, 0.5]])),
            horizon=2000.0,
            warmup=200.0,
            seed=8,
        )
        jsq = simulate_policy(
            system, JoinShortestQueue(), horizon=2000.0, warmup=200.0, seed=8
        )
        assert (
            jsq.overall_mean_response_time()
            < static.overall_mean_response_time()
        )
