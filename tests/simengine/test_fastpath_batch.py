"""Tests for the batched replication kernel and its stats integration.

The load-bearing guarantee throughout: the batched paths are
**bit-identical** to the corresponding per-seed loops — same seed tree in,
same floats out — so every equality here is exact, not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.schemes import NashScheme, ProportionalScheme
from repro.simengine.fastpath import (
    mm1_lindley_waits,
    mm1_lindley_waits_batch,
    simulate_profile_fast,
    simulate_profile_fast_batch,
)
from repro.simengine.rng import replication_seeds
from repro.simengine.service import from_scv
from repro.simengine.simulator import simulate_profile
from repro.simengine.stats import replicate, replicate_until
from repro.workloads.configs import paper_table1_system


class TestLindleyBatch:
    def test_full_rows_match_vector_kernel(self, rng):
        gaps = rng.exponential(0.5, size=(6, 200))
        services = rng.exponential(0.3, size=(6, 200))
        batch = mm1_lindley_waits_batch(gaps, services)
        for row in range(6):
            np.testing.assert_array_equal(
                batch[row], mm1_lindley_waits(gaps[row], services[row])
            )

    def test_ragged_rows_match_row_for_row(self, rng):
        counts = np.array([0, 1, 17, 200, 63])
        width = int(counts.max())
        gaps = rng.exponential(0.5, size=(5, width))
        services = rng.exponential(0.3, size=(5, width))
        batch = mm1_lindley_waits_batch(gaps, services, counts)
        for row, count in enumerate(counts):
            np.testing.assert_array_equal(
                batch[row, :count],
                mm1_lindley_waits(gaps[row, :count], services[row, :count]),
            )
            # Padding comes back as exact zeros.
            np.testing.assert_array_equal(batch[row, count:], 0.0)

    def test_zero_job_row_is_all_zero(self, rng):
        gaps = rng.exponential(1.0, size=(2, 10))
        services = rng.exponential(1.0, size=(2, 10))
        batch = mm1_lindley_waits_batch(
            gaps, services, np.array([0, 10])
        )
        np.testing.assert_array_equal(batch[0], 0.0)

    def test_zero_width(self):
        out = mm1_lindley_waits_batch(np.zeros((3, 0)), np.zeros((3, 0)))
        assert out.shape == (3, 0)

    def test_rejects_bad_shapes_and_counts(self, rng):
        gaps = rng.exponential(1.0, size=(2, 5))
        services = rng.exponential(1.0, size=(2, 5))
        with pytest.raises(ValueError):
            mm1_lindley_waits_batch(gaps, services[:1])
        with pytest.raises(ValueError):
            mm1_lindley_waits_batch(gaps[0], services[0])
        with pytest.raises(ValueError):
            mm1_lindley_waits_batch(gaps, services, np.array([1, 6]))
        with pytest.raises(ValueError):
            mm1_lindley_waits_batch(gaps, services, np.array([-1, 3]))
        with pytest.raises(ValueError):
            mm1_lindley_waits_batch(gaps, services, np.array([1.5, 3.0]))
        with pytest.raises(ValueError):
            mm1_lindley_waits_batch(gaps, services, np.array([1, 2, 3]))


def _assert_results_identical(one, other):
    np.testing.assert_array_equal(
        one.user_mean_response_times,
        other.user_mean_response_times,
    )
    np.testing.assert_array_equal(one.user_job_counts, other.user_job_counts)
    np.testing.assert_array_equal(
        one.computer_utilizations, other.computer_utilizations
    )
    np.testing.assert_array_equal(
        one.computer_job_counts, other.computer_job_counts
    )


class TestBatchSimulator:
    def test_bit_identical_to_per_seed_loop(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        seeds = replication_seeds(42, 5)
        batch = simulate_profile_fast_batch(
            table1_medium, profile, horizon=200.0, warmup=20.0, seeds=seeds
        )
        for seed, batched in zip(seeds, batch):
            looped = simulate_profile_fast(
                table1_medium, profile, horizon=200.0, warmup=20.0, seed=seed
            )
            _assert_results_identical(looped, batched)

    def test_same_seed_object_is_idempotent(self, table1_medium):
        # SeedSequence.spawn is stateful; the simulator must not be.
        profile = StrategyProfile.proportional(table1_medium)
        seed = np.random.SeedSequence(99)
        first = simulate_profile_fast(
            table1_medium, profile, horizon=100.0, seed=seed
        )
        second = simulate_profile_fast(
            table1_medium, profile, horizon=100.0, seed=seed
        )
        _assert_results_identical(first, second)

    def test_per_row_profiles_match_separate_calls(self, table1_medium):
        # Common-random-numbers comparison: two allocations, same seeds.
        nash = NashScheme().allocate(table1_medium).profile
        ps = ProportionalScheme().allocate(table1_medium).profile
        distributions = [
            from_scv(float(rate), 2.0) for rate in table1_medium.service_rates
        ]
        nash_row, ps_row = simulate_profile_fast_batch(
            table1_medium,
            [nash, ps],
            horizon=150.0,
            warmup=15.0,
            seeds=[13, 13],
            service_distributions=distributions,
        )
        nash_one = simulate_profile_fast(
            table1_medium,
            nash,
            horizon=150.0,
            warmup=15.0,
            seed=13,
            service_distributions=distributions,
        )
        ps_one = simulate_profile_fast(
            table1_medium,
            ps,
            horizon=150.0,
            warmup=15.0,
            seed=13,
            service_distributions=distributions,
        )
        _assert_results_identical(nash_one, nash_row)
        _assert_results_identical(ps_one, ps_row)

    def test_idle_computer_stays_idle(self):
        system = DistributedSystem(
            service_rates=[5.0, 5.0], arrival_rates=[2.0]
        )
        profile = StrategyProfile(np.array([[1.0, 0.0]]))
        (result,) = simulate_profile_fast_batch(
            system, profile, horizon=200.0, seeds=[3]
        )
        assert result.computer_job_counts[1] == 0
        assert result.computer_utilizations[1] == 0.0

    def test_rejects_bad_parameters(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        with pytest.raises(ValueError):
            simulate_profile_fast_batch(
                two_by_two, profile, horizon=100.0, seeds=[]
            )
        with pytest.raises(ValueError):
            simulate_profile_fast_batch(
                two_by_two, [profile], horizon=100.0, seeds=[1, 2]
            )
        with pytest.raises(ValueError):
            simulate_profile_fast_batch(
                two_by_two, profile, horizon=-1.0, seeds=[1]
            )
        with pytest.raises(ValueError):
            simulate_profile_fast_batch(
                two_by_two,
                profile,
                horizon=10.0,
                seeds=[1],
                service_distributions=[from_scv(1.0, 1.0)],
            )


class TestUtilizationAccounting:
    def test_tracks_offered_load_at_high_rho(self):
        # The old accounting counted only jobs fully inside the window,
        # biasing utilization low exactly where it matters (high rho).
        system = DistributedSystem(service_rates=[5.0], arrival_rates=[4.5])
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile_fast(
            system, profile, horizon=20_000.0, warmup=2_000.0, seed=11
        )
        assert result.computer_utilizations[0] == pytest.approx(0.9, abs=0.02)

    def test_cross_engine_parity_at_high_rho(self, table1_small):
        # Same stationary law at rho=0.9: the event engine and the fast
        # path must agree on per-computer utilization.
        system = paper_table1_system(utilization=0.9, n_users=4)
        profile = StrategyProfile.proportional(system)
        fast = simulate_profile_fast(
            system, profile, horizon=2_000.0, warmup=200.0, seed=21
        )
        event = simulate_profile(
            system, profile, horizon=2_000.0, warmup=200.0, seed=21
        )
        np.testing.assert_allclose(
            fast.computer_utilizations,
            event.computer_utilizations,
            rtol=0.05,
        )
        rho = system.loads(profile.fractions) / system.service_rates
        np.testing.assert_allclose(
            fast.computer_utilizations, rho, rtol=0.05
        )


def _batch_measure(system, profile, *, horizon, warmup):
    def simulate_batch(seeds):
        results = simulate_profile_fast_batch(
            system, profile, horizon=horizon, warmup=warmup, seeds=seeds
        )
        return np.stack([r.user_mean_response_times for r in results])

    return simulate_batch


def _loop_measure(system, profile, *, horizon, warmup):
    def measure(seed_seq):
        return simulate_profile_fast(
            system, profile, horizon=horizon, warmup=warmup, seed=seed_seq
        ).user_mean_response_times

    return measure


class TestReplicateBatch:
    def test_identical_replication_stats(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        kwargs = dict(horizon=150.0, warmup=15.0)
        looped = replicate(
            _loop_measure(table1_medium, profile, **kwargs),
            n_replications=5,
            seed=7,
        )
        batched = replicate(
            simulate_batch=_batch_measure(table1_medium, profile, **kwargs),
            n_replications=5,
            seed=7,
        )
        np.testing.assert_array_equal(looped.samples, batched.samples)
        np.testing.assert_array_equal(looped.mean, batched.mean)
        np.testing.assert_array_equal(looped.std_error, batched.std_error)
        np.testing.assert_array_equal(looped.ci_low, batched.ci_low)
        np.testing.assert_array_equal(looped.ci_high, batched.ci_high)

    def test_replicate_until_same_stopping_point(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        kwargs = dict(horizon=150.0, warmup=15.0)
        looped = replicate_until(
            _loop_measure(table1_medium, profile, **kwargs),
            target_relative_error=0.02,
            min_replications=3,
            max_replications=12,
            seed=7,
        )
        batched = replicate_until(
            simulate_batch=_batch_measure(table1_medium, profile, **kwargs),
            target_relative_error=0.02,
            min_replications=3,
            max_replications=12,
            seed=7,
        )
        assert looped.n_replications == batched.n_replications
        np.testing.assert_array_equal(looped.samples, batched.samples)
        np.testing.assert_array_equal(looped.mean, batched.mean)

    def test_replicate_until_budget_exhausted(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        kwargs = dict(horizon=60.0, warmup=6.0)
        looped = replicate_until(
            _loop_measure(table1_medium, profile, **kwargs),
            target_relative_error=1e-9,
            min_replications=2,
            max_replications=5,
            seed=3,
        )
        batched = replicate_until(
            simulate_batch=_batch_measure(table1_medium, profile, **kwargs),
            target_relative_error=1e-9,
            min_replications=2,
            max_replications=5,
            seed=3,
        )
        assert looped.n_replications == batched.n_replications == 5
        np.testing.assert_array_equal(looped.samples, batched.samples)

    def test_exactly_one_measurement_source(self):
        with pytest.raises(ValueError):
            replicate(n_replications=3, seed=0)
        with pytest.raises(ValueError):
            replicate(
                lambda s: np.zeros(2),
                simulate_batch=lambda seeds: np.zeros((len(seeds), 2)),
            )
        with pytest.raises(ValueError):
            replicate_until(target_relative_error=0.1)

    def test_batch_shape_validated(self):
        with pytest.raises(ValueError):
            replicate(
                simulate_batch=lambda seeds: np.zeros((len(seeds) + 1, 2)),
                n_replications=3,
            )
        with pytest.raises(ValueError):
            replicate(
                simulate_batch=lambda seeds: np.zeros(len(seeds)),
                n_replications=3,
            )
