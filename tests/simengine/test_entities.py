"""Unit tests for simulation entities (jobs, computers, user sources)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simengine.entities import Computer, Job, UserSource


def make_computer(rate=2.0, seed=0):
    return Computer(0, rate, np.random.default_rng(seed))


class TestJob:
    def test_lifecycle_metrics(self):
        job = Job(job_id=1, user=0, computer=2, arrival_time=1.0)
        job.start_time = 1.5
        job.completion_time = 3.0
        assert job.waiting_time == pytest.approx(0.5)
        assert job.response_time == pytest.approx(2.0)


class TestComputer:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            make_computer(rate=0.0)

    def test_idle_accept_starts_service(self):
        c = make_computer()
        job = Job(0, 0, 0, arrival_time=1.0)
        departure = c.accept(job, now=1.0)
        assert departure is not None and departure > 1.0
        assert c.is_busy
        assert job.start_time == 1.0

    def test_busy_accept_enqueues(self):
        c = make_computer()
        first = Job(0, 0, 0, arrival_time=0.0)
        second = Job(1, 0, 0, arrival_time=0.5)
        c.accept(first, now=0.0)
        assert c.accept(second, now=0.5) is None
        assert c.queue_length == 1
        assert c.run_queue_length == 2

    def test_fcfs_order(self):
        c = make_computer()
        jobs = [Job(i, 0, 0, arrival_time=float(i) * 0.1) for i in range(3)]
        now = 0.0
        departure = c.accept(jobs[0], now)
        c.accept(jobs[1], 0.1)
        c.accept(jobs[2], 0.2)
        finished_order = []
        while departure is not None:
            finished, departure = c.complete_current(departure)
            finished_order.append(finished.job_id)
        assert finished_order == [0, 1, 2]

    def test_complete_counts_and_busy_time(self):
        c = make_computer()
        job = Job(0, 0, 0, arrival_time=0.0)
        departure = c.accept(job, 0.0)
        finished, nxt = c.complete_current(departure)
        assert finished is job
        assert nxt is None
        assert c.completed == 1
        assert c.busy_time == pytest.approx(departure)

    def test_complete_idle_raises(self):
        with pytest.raises(RuntimeError):
            make_computer().complete_current(1.0)

    def test_service_times_exponential(self):
        c = make_computer(rate=4.0, seed=42)
        samples = np.array([c.draw_service_time() for _ in range(20_000)])
        assert samples.mean() == pytest.approx(0.25, rel=0.05)
        # Memorylessness fingerprint: std == mean for the exponential.
        assert samples.std() == pytest.approx(samples.mean(), rel=0.05)


class TestUserSource:
    def make(self, fractions, seed=1, rate=3.0):
        rng = np.random.default_rng(seed)
        return UserSource(
            0,
            rate,
            np.asarray(fractions),
            arrival_rng=np.random.default_rng(seed),
            routing_rng=np.random.default_rng(seed + 1),
        )

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            self.make([1.0], rate=0.0)

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            self.make([0.4, 0.4])
        with pytest.raises(ValueError):
            self.make([1.5, -0.5])

    def test_interarrivals_exponential(self):
        source = self.make([1.0], rate=5.0)
        gaps = np.array([source.next_interarrival() for _ in range(20_000)])
        assert gaps.mean() == pytest.approx(0.2, rel=0.05)

    def test_routing_follows_fractions(self):
        source = self.make([0.7, 0.1, 0.2])
        choices = np.array([source.choose_computer() for _ in range(30_000)])
        freq = np.bincount(choices, minlength=3) / choices.size
        np.testing.assert_allclose(freq, [0.7, 0.1, 0.2], atol=0.01)

    def test_zero_fraction_never_chosen(self):
        source = self.make([0.5, 0.0, 0.5])
        choices = {source.choose_computer() for _ in range(5_000)}
        assert 1 not in choices

    def test_generated_counter(self):
        source = self.make([1.0])
        for _ in range(7):
            source.choose_computer()
        assert source.generated == 7
