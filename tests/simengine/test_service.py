"""Tests for the service-time distribution substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.queueing.mg1 import expected_response_time_mg1
from repro.simengine.fastpath import simulate_profile_fast
from repro.simengine.service import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    from_scv,
)
from repro.simengine.simulator import simulate_profile


def empirical_moments(dist, n=60_000, seed=0):
    rng = np.random.default_rng(seed)
    samples = np.asarray(dist.sample(rng, size=n))
    mean = samples.mean()
    scv = samples.var() / mean**2
    return mean, scv


class TestDistributions:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(4.0),
            Deterministic(4.0),
            Erlang(4.0, k=3),
            HyperExponential(4.0, target_scv=5.0),
        ],
        ids=["exp", "det", "erlang", "h2"],
    )
    def test_mean_and_scv_match_declaration(self, dist):
        mean, scv = empirical_moments(dist)
        assert mean == pytest.approx(dist.mean, rel=0.03)
        assert scv == pytest.approx(dist.scv, abs=max(0.05, 0.1 * dist.scv))

    def test_scalar_sampling(self):
        rng = np.random.default_rng(1)
        for dist in (Exponential(2.0), Deterministic(2.0), Erlang(2.0),
                     HyperExponential(2.0)):
            value = dist.sample(rng)
            assert np.isscalar(value) or np.ndim(value) == 0
            assert float(value) > 0.0

    def test_samples_positive(self):
        rng = np.random.default_rng(2)
        for dist in (Erlang(3.0, k=5), HyperExponential(3.0, target_scv=10.0)):
            assert np.all(np.asarray(dist.sample(rng, size=1000)) > 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Erlang(1.0, k=0)
        with pytest.raises(ValueError):
            HyperExponential(1.0, target_scv=0.5)

    def test_from_scv_dispatch(self):
        assert isinstance(from_scv(1.0, 0.0), Deterministic)
        assert isinstance(from_scv(1.0, 0.25), Erlang)
        assert from_scv(1.0, 0.25).k == 4
        assert isinstance(from_scv(1.0, 1.0), Exponential)
        assert isinstance(from_scv(1.0, 3.0), HyperExponential)
        with pytest.raises(ValueError):
            from_scv(1.0, -1.0)

    def test_from_scv_preserves_rate(self):
        for scv in (0.0, 0.5, 1.0, 4.0):
            assert from_scv(7.0, scv).mean == pytest.approx(1.0 / 7.0)


class TestMG1Simulation:
    @pytest.fixture(scope="class")
    def single_queue(self):
        return DistributedSystem(service_rates=[5.0], arrival_rates=[3.0])

    @pytest.mark.parametrize("scv", [0.0, 0.5, 4.0])
    def test_fastpath_matches_pk(self, single_queue, scv):
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile_fast(
            single_queue,
            profile,
            horizon=30_000.0,
            warmup=1000.0,
            seed=3,
            service_distributions=[from_scv(5.0, scv)],
        )
        pk = expected_response_time_mg1(3.0, 5.0, scv=scv)
        assert result.user_mean_response_times[0] == pytest.approx(
            pk, rel=0.06
        )

    def test_event_engine_matches_pk_md1(self, single_queue):
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile(
            single_queue,
            profile,
            horizon=4000.0,
            warmup=400.0,
            seed=4,
            service_distributions=[Deterministic(5.0)],
        )
        pk = expected_response_time_mg1(3.0, 5.0, scv=0.0)
        assert result.user_mean_response_times[0] == pytest.approx(
            pk, rel=0.08
        )

    def test_distribution_count_validated(self, single_queue):
        profile = StrategyProfile(np.array([[1.0]]))
        with pytest.raises(ValueError):
            simulate_profile_fast(
                single_queue,
                profile,
                horizon=10.0,
                service_distributions=[Deterministic(5.0), Deterministic(5.0)],
            )

    def test_distribution_rate_must_match_computer(self, single_queue):
        from repro.simengine.entities import Computer

        with pytest.raises(ValueError, match="rate"):
            Computer(
                0,
                5.0,
                np.random.default_rng(0),
                service_distribution=Deterministic(3.0),
            )

    def test_higher_scv_higher_latency(self, single_queue):
        profile = StrategyProfile(np.array([[1.0]]))
        times = []
        for scv in (0.0, 1.0, 4.0):
            result = simulate_profile_fast(
                single_queue,
                profile,
                horizon=20_000.0,
                warmup=500.0,
                seed=5,
                service_distributions=[from_scv(5.0, scv)],
            )
            times.append(result.user_mean_response_times[0])
        assert times[0] < times[1] < times[2]
