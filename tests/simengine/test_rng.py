"""Unit tests for RNG stream management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simengine.rng import SimulationStreams, replication_seeds


class TestSimulationStreams:
    def test_counts(self):
        streams = SimulationStreams.from_seed(0, n_users=3, n_computers=5)
        assert len(streams.arrivals) == 3
        assert len(streams.services) == 5
        assert len(streams.routing) == 3

    def test_deterministic_given_seed(self):
        a = SimulationStreams.from_seed(7, 2, 2)
        b = SimulationStreams.from_seed(7, 2, 2)
        assert a.arrivals[0].random() == b.arrivals[0].random()
        assert a.services[1].random() == b.services[1].random()

    def test_different_seeds_differ(self):
        a = SimulationStreams.from_seed(1, 2, 2)
        b = SimulationStreams.from_seed(2, 2, 2)
        assert a.arrivals[0].random() != b.arrivals[0].random()

    def test_streams_mutually_independent_draws(self):
        streams = SimulationStreams.from_seed(3, 2, 2)
        # Distinct spawned children never produce identical sequences.
        x = streams.arrivals[0].random(4)
        y = streams.arrivals[1].random(4)
        assert not np.allclose(x, y)

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(11)
        streams = SimulationStreams.from_seed(seq, 1, 1)
        again = SimulationStreams.from_seed(np.random.SeedSequence(11), 1, 1)
        assert streams.arrivals[0].random() == again.arrivals[0].random()

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            SimulationStreams.from_seed(0, 0, 1)


class TestReplicationSeeds:
    def test_count_and_determinism(self):
        seeds = replication_seeds(5, 4)
        assert len(seeds) == 4
        again = replication_seeds(5, 4)
        for a, b in zip(seeds, again):
            assert a.generate_state(2).tolist() == b.generate_state(2).tolist()

    def test_children_distinct(self):
        seeds = replication_seeds(5, 3)
        states = [tuple(s.generate_state(2)) for s in seeds]
        assert len(set(states)) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            replication_seeds(0, 0)
