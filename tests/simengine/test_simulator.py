"""Integration tests for the event-driven simulator against M/M/1 theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.queueing.mm1 import expected_response_time
from repro.simengine.simulator import LoadBalancingSimulation, simulate_profile


def single_queue_system(lam=3.0, mu=5.0):
    return DistributedSystem(service_rates=[mu], arrival_rates=[lam])


class TestValidation:
    def test_rejects_infeasible_profile(self, two_by_two):
        profile = StrategyProfile.zeros(2, 2)
        with pytest.raises(ValueError):
            simulate_profile(two_by_two, profile, horizon=10.0)

    def test_rejects_bad_horizon(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        with pytest.raises(ValueError):
            simulate_profile(two_by_two, profile, horizon=0.0)

    def test_rejects_bad_warmup(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        with pytest.raises(ValueError):
            simulate_profile(two_by_two, profile, horizon=10.0, warmup=10.0)


class TestSingleQueueTheory:
    def test_mm1_mean_response_time(self):
        system = single_queue_system(lam=3.0, mu=5.0)
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile(
            system, profile, horizon=4000.0, warmup=400.0, seed=1
        )
        theory = expected_response_time(3.0, 5.0)
        assert result.user_mean_response_times[0] == pytest.approx(
            theory, rel=0.05
        )

    def test_utilization_estimate(self):
        system = single_queue_system(lam=2.0, mu=5.0)
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile(
            system, profile, horizon=3000.0, warmup=300.0, seed=2
        )
        assert result.computer_utilizations[0] == pytest.approx(0.4, abs=0.03)

    def test_job_count_near_expectation(self):
        system = single_queue_system(lam=4.0, mu=9.0)
        profile = StrategyProfile(np.array([[1.0]]))
        result = simulate_profile(
            system, profile, horizon=1000.0, warmup=0.0, seed=3
        )
        assert result.total_jobs == pytest.approx(4000, rel=0.1)


class TestMultiQueue:
    def test_per_user_times_match_analytic(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        analytic = two_by_two.user_response_times(profile.fractions)
        result = simulate_profile(
            two_by_two, profile, horizon=5000.0, warmup=500.0, seed=4
        )
        np.testing.assert_allclose(
            result.user_mean_response_times, analytic, rtol=0.06
        )

    def test_unused_computer_receives_nothing(self, two_by_two):
        profile = StrategyProfile(np.array([[1.0, 0.0], [1.0, 0.0]]))
        result = simulate_profile(
            two_by_two, profile, horizon=100.0, seed=5
        )
        assert result.computer_job_counts[1] == 0

    def test_determinism(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        a = simulate_profile(two_by_two, profile, horizon=200.0, seed=9)
        b = simulate_profile(two_by_two, profile, horizon=200.0, seed=9)
        np.testing.assert_array_equal(
            a.user_mean_response_times, b.user_mean_response_times
        )
        np.testing.assert_array_equal(a.user_job_counts, b.user_job_counts)

    def test_seed_changes_sample_path(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        a = simulate_profile(two_by_two, profile, horizon=200.0, seed=1)
        b = simulate_profile(two_by_two, profile, horizon=200.0, seed=2)
        assert not np.array_equal(a.user_job_counts, b.user_job_counts)

    def test_warmup_discards_jobs(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        full = simulate_profile(two_by_two, profile, horizon=500.0, seed=6)
        trimmed = simulate_profile(
            two_by_two, profile, horizon=500.0, warmup=250.0, seed=6
        )
        assert trimmed.total_jobs < full.total_jobs

    def test_overall_mean_weighted(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        result = simulate_profile(
            two_by_two, profile, horizon=500.0, seed=7
        )
        manual = (
            result.user_mean_response_times * result.user_job_counts
        ).sum() / result.user_job_counts.sum()
        assert result.overall_mean_response_time() == pytest.approx(manual)

    def test_simulation_object_reusable_state_isolated(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        sim = LoadBalancingSimulation(
            two_by_two, profile, horizon=100.0, seed=8
        )
        result = sim.run()
        assert result.total_jobs > 0
