"""Tests for arrival processes (Poisson and MMPP burst sources)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.simengine.arrivals import MMPPArrivals, PoissonArrivals
from repro.simengine.simulator import LoadBalancingSimulation


def mean_rate(process, n=100_000, seed=0):
    rng = np.random.default_rng(seed)
    total = sum(process.next_interarrival(rng) for _ in range(n))
    return n / total


class TestPoissonArrivals:
    def test_average_rate(self):
        assert PoissonArrivals(3.0).average_rate == 3.0

    def test_empirical_rate(self):
        assert mean_rate(PoissonArrivals(4.0), n=50_000) == pytest.approx(
            4.0, rel=0.02
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestMMPPArrivals:
    def make(self, calm=1.0, burst=9.0, q_cb=0.5, q_bc=0.5):
        return MMPPArrivals(
            calm, burst, calm_to_burst=q_cb, burst_to_calm=q_bc
        )

    def test_average_rate_formula(self):
        # Equal switching -> half time in each state -> mean = (1+9)/2.
        assert self.make().average_rate == pytest.approx(5.0)

    def test_asymmetric_stationary_weights(self):
        process = self.make(q_cb=1.0, q_bc=3.0)  # 75% calm
        assert process.average_rate == pytest.approx(0.75 * 1.0 + 0.25 * 9.0)

    def test_empirical_rate(self):
        assert mean_rate(self.make(), n=100_000) == pytest.approx(
            5.0, rel=0.05
        )

    def test_burstier_than_poisson(self):
        """Interarrival scv above 1 — the burstiness fingerprint."""
        rng = np.random.default_rng(1)
        process = self.make(calm=0.5, burst=20.0, q_cb=0.2, q_bc=0.2)
        gaps = np.array(
            [process.next_interarrival(rng) for _ in range(100_000)]
        )
        scv = gaps.var() / gaps.mean() ** 2
        assert scv > 1.5

    def test_silent_calm_state(self):
        process = MMPPArrivals(
            0.0, 10.0, calm_to_burst=1.0, burst_to_calm=1.0
        )
        assert process.average_rate == pytest.approx(5.0)
        assert mean_rate(process, n=30_000, seed=2) == pytest.approx(
            5.0, rel=0.1
        )
        assert process.burstiness == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(5.0, 1.0, calm_to_burst=1.0, burst_to_calm=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(1.0, 5.0, calm_to_burst=0.0, burst_to_calm=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(-1.0, 5.0, calm_to_burst=1.0, burst_to_calm=1.0)


class TestBurstySimulation:
    @pytest.fixture(scope="class")
    def system(self):
        return DistributedSystem(
            service_rates=[10.0, 5.0], arrival_rates=[6.0]
        )

    def test_rate_mismatch_rejected(self, system):
        profile = StrategyProfile.proportional(system)
        with pytest.raises(ValueError, match="average rate"):
            LoadBalancingSimulation(
                system,
                profile,
                horizon=10.0,
                arrival_processes=[PoissonArrivals(4.0)],
            )

    def test_count_validated(self, system):
        profile = StrategyProfile.proportional(system)
        with pytest.raises(ValueError, match="one entry per user"):
            LoadBalancingSimulation(
                system,
                profile,
                horizon=10.0,
                arrival_processes=[PoissonArrivals(6.0), PoissonArrivals(6.0)],
            )

    def test_total_jobs_match_average_rate(self, system):
        profile = StrategyProfile.proportional(system)
        process = MMPPArrivals(
            2.0, 10.0, calm_to_burst=0.5, burst_to_calm=0.5
        )
        assert process.average_rate == pytest.approx(6.0)
        result = LoadBalancingSimulation(
            system,
            profile,
            horizon=2000.0,
            seed=3,
            arrival_processes=[process],
        ).run()
        assert result.total_jobs == pytest.approx(12_000, rel=0.1)

    def test_burstiness_inflates_latency(self, system):
        """Same mean rate, bursty arrivals -> strictly worse latency than
        the Poisson (M/M/1) prediction the game is optimized for."""
        profile = StrategyProfile.proportional(system)
        poisson = LoadBalancingSimulation(
            system, profile, horizon=4000.0, warmup=200.0, seed=4
        ).run()
        bursty = LoadBalancingSimulation(
            system,
            profile,
            horizon=4000.0,
            warmup=200.0,
            seed=4,
            arrival_processes=[
                MMPPArrivals(1.0, 26.0, calm_to_burst=0.25, burst_to_calm=1.0)
            ],
        ).run()
        assert (
            bursty.overall_mean_response_time()
            > 1.2 * poisson.overall_mean_response_time()
        )
