"""Tests for run-queue estimation and the measured best-reply loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import StrategyProfile
from repro.simengine.estimation import (
    estimate_loads_from_queue_lengths,
    run_measured_best_reply,
)
from repro.simengine.simulator import LoadBalancingSimulation
from repro.workloads.configs import paper_table1_system


class TestLoadEstimator:
    def test_inverts_occupancy_law(self):
        # E[N] = rho/(1-rho); at rho = 0.5, N = 1.
        lam = estimate_loads_from_queue_lengths([1.0], [10.0])
        assert lam[0] == pytest.approx(5.0)

    def test_idle_queue_zero_load(self):
        lam = estimate_loads_from_queue_lengths([0.0], [10.0])
        assert lam[0] == 0.0

    def test_always_stable(self):
        # Even absurdly long queues map strictly inside the stable region.
        lam = estimate_loads_from_queue_lengths([1e6], [10.0])
        assert lam[0] < 10.0

    def test_monotone_in_queue_length(self):
        lams = estimate_loads_from_queue_lengths(
            [0.5, 1.0, 4.0], [10.0, 10.0, 10.0]
        )
        assert lams[0] < lams[1] < lams[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_loads_from_queue_lengths([1.0], [10.0, 20.0])
        with pytest.raises(ValueError):
            estimate_loads_from_queue_lengths([-1.0], [10.0])


class TestQueueSampling:
    def test_samples_recorded(self):
        system = paper_table1_system(utilization=0.6, n_users=4)
        profile = StrategyProfile.proportional(system)
        result = LoadBalancingSimulation(
            system, profile, horizon=50.0, warmup=5.0, seed=1,
            sample_interval=0.5,
        ).run()
        samples = result.queue_length_samples
        assert samples.shape[1] == system.n_computers
        assert samples.shape[0] == pytest.approx(90, abs=3)
        assert np.all(samples >= 0)

    def test_no_sampling_by_default(self):
        system = paper_table1_system(utilization=0.5, n_users=2)
        profile = StrategyProfile.proportional(system)
        result = LoadBalancingSimulation(
            system, profile, horizon=20.0, seed=1
        ).run()
        assert result.queue_length_samples.shape == (0, system.n_computers)
        with pytest.raises(ValueError, match="sample"):
            result.mean_queue_lengths()

    def test_sample_interval_validated(self):
        system = paper_table1_system(utilization=0.5, n_users=2)
        profile = StrategyProfile.proportional(system)
        with pytest.raises(ValueError):
            LoadBalancingSimulation(
                system, profile, horizon=10.0, sample_interval=0.0
            )

    def test_mean_queue_lengths_estimate_loads(self):
        """End to end: sampled occupancies invert to the true loads."""
        system = paper_table1_system(utilization=0.6, n_users=4)
        profile = StrategyProfile.proportional(system)
        result = LoadBalancingSimulation(
            system, profile, horizon=600.0, warmup=60.0, seed=2,
            sample_interval=0.5,
        ).run()
        estimated = estimate_loads_from_queue_lengths(
            result.mean_queue_lengths(), system.service_rates
        )
        true_loads = system.loads(profile.fractions)
        # Aggregate within a few percent.
        assert estimated.sum() == pytest.approx(true_loads.sum(), rel=0.05)


class TestMeasuredBestReply:
    @pytest.fixture(scope="class")
    def system(self):
        return paper_table1_system(utilization=0.6, n_users=4)

    @pytest.fixture(scope="class")
    def outcome(self, system):
        return run_measured_best_reply(
            system, cycles=5, measurement_window=80.0, seed=3
        )

    def test_profile_feasible(self, system, outcome):
        outcome.profile.validate(system)

    def test_settles_near_equilibrium(self, outcome):
        # Regret within a few percent of the ~0.06 s equilibrium times.
        assert outcome.final_regret < 0.01

    def test_history_lengths(self, outcome):
        assert outcome.regret_history.size == 5
        assert outcome.load_estimate_errors.size == 5

    def test_estimates_reasonably_accurate(self, outcome):
        assert np.all(outcome.load_estimate_errors < 0.2)

    def test_deterministic(self, system):
        a = run_measured_best_reply(
            system, cycles=2, measurement_window=40.0, seed=9
        )
        b = run_measured_best_reply(
            system, cycles=2, measurement_window=40.0, seed=9
        )
        np.testing.assert_array_equal(
            a.profile.fractions, b.profile.fractions
        )

    def test_validation(self, system):
        with pytest.raises(ValueError):
            run_measured_best_reply(system, cycles=0)
        with pytest.raises(ValueError, match="feasible"):
            run_measured_best_reply(system, cycles=1, init="zero")
