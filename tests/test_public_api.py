"""Smoke tests of the top-level public API (the README quickstart)."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        system = repro.paper_table1_system(utilization=0.6)
        result = repro.compute_nash_equilibrium(system)
        assert result.converged
        cert = repro.verify_equilibrium(system, result.profile, tol=1e-4)
        assert cert.epsilon <= 1e-4

    def test_scheme_comparison_flow(self):
        system = repro.paper_table1_system(utilization=0.5, n_users=4)
        results = {s.name: s.allocate(system) for s in repro.standard_schemes()}
        assert results["GOS"].overall_time <= results["PS"].overall_time
        assert repro.price_of_anarchy(
            results["NASH"].overall_time, results["GOS"].overall_time
        ) >= 1.0 - 1e-9

    def test_custom_system_flow(self):
        system = repro.DistributedSystem(
            service_rates=[30.0, 15.0, 5.0],
            arrival_rates=[10.0, 8.0],
        )
        reply = repro.best_response(
            system, repro.StrategyProfile.zeros(2, 3), 0
        )
        assert reply.fractions.sum() == pytest.approx(1.0)

    def test_fairness_helper(self):
        assert repro.fairness_index([1.0, 1.0]) == pytest.approx(1.0)

    def test_overall_response_helper(self):
        value = repro.overall_response_time([1.0, 2.0], [1.0, 1.0])
        assert value == pytest.approx(1.5)

    def test_cli_entry_point_importable(self):
        from repro.experiments.runner import main

        assert callable(main)

    def test_cli_runs_table1(self, capsys):
        from repro.experiments.runner import main

        assert main(["t1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["t1", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "t1.csv").exists()

    def test_cli_unknown_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["bogus"]) == 2
