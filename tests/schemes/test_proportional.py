"""Tests for the PS baseline (Chow & Kohler)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schemes.proportional import (
    ProportionalScheme,
    proportional_response_time,
)
from repro.workloads.configs import paper_table1_system


class TestProportionalScheme:
    def test_profile_rows_proportional_to_rates(self, table1_medium):
        result = ProportionalScheme().allocate(table1_medium)
        mu = table1_medium.service_rates
        expected = mu / mu.sum()
        for row in result.profile.fractions:
            np.testing.assert_allclose(row, expected)

    def test_every_computer_same_utilization(self, table1_medium):
        result = ProportionalScheme().allocate(table1_medium)
        loads = table1_medium.loads(result.profile.fractions)
        rho = loads / table1_medium.service_rates
        np.testing.assert_allclose(rho, table1_medium.system_utilization)

    def test_fairness_exactly_one(self, table1_medium):
        result = ProportionalScheme().allocate(table1_medium)
        assert result.fairness == pytest.approx(1.0)

    def test_closed_form_matches_evaluation(self, table1_medium):
        result = ProportionalScheme().allocate(table1_medium)
        closed = proportional_response_time(table1_medium)
        np.testing.assert_allclose(result.user_times, closed)
        assert result.overall_time == pytest.approx(closed)
        assert result.extra["closed_form_time"] == pytest.approx(closed)

    def test_closed_form_value(self):
        system = paper_table1_system(utilization=0.5)
        # n / ((1 - rho) sum(mu)) = 16 / (0.5 * 510)
        assert proportional_response_time(system) == pytest.approx(16 / 255.0)

    def test_independent_of_user_count(self):
        a = paper_table1_system(utilization=0.6, n_users=4)
        b = paper_table1_system(utilization=0.6, n_users=25)
        assert proportional_response_time(a) == pytest.approx(
            proportional_response_time(b)
        )

    def test_time_increases_with_load(self):
        times = [
            proportional_response_time(paper_table1_system(utilization=rho))
            for rho in (0.2, 0.5, 0.8)
        ]
        assert times[0] < times[1] < times[2]

    def test_scheme_name(self, table1_medium):
        assert ProportionalScheme().allocate(table1_medium).scheme == "PS"

    def test_profile_feasible(self, table1_medium):
        result = ProportionalScheme().allocate(table1_medium)
        result.profile.validate(table1_medium)
