"""Tests for the Stackelberg extension scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schemes.global_optimal import GlobalOptimalScheme
from repro.schemes.individual_optimal import IndividualOptimalScheme
from repro.schemes.stackelberg import (
    StackelbergScheme,
    induced_equilibrium_loads,
    stackelberg_total_cost,
)
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=10)


class TestInducedEquilibrium:
    def test_followers_conserve_demand(self, system):
        leader = np.zeros(system.n_computers)
        follower = induced_equilibrium_loads(system, leader, 100.0)
        assert follower.sum() == pytest.approx(100.0)

    def test_zero_followers(self, system):
        leader = np.zeros(system.n_computers)
        follower = induced_equilibrium_loads(system, leader, 0.0)
        assert follower.sum() == 0.0

    def test_leader_presence_repels_followers(self, system):
        follower_demand = 0.5 * system.total_arrival_rate
        idle = induced_equilibrium_loads(
            system, np.zeros(system.n_computers), follower_demand
        )
        # Leader saturating the fastest computer pushes followers away.
        leader = np.zeros(system.n_computers)
        fastest = int(np.argmax(system.service_rates))
        leader[fastest] = 0.9 * system.service_rates[fastest]
        crowded = induced_equilibrium_loads(system, leader, follower_demand)
        assert crowded[fastest] < idle[fastest]

    def test_total_cost_infinite_when_saturated(self, system):
        leader = system.service_rates.copy()  # saturate everything
        assert stackelberg_total_cost(
            system, leader, 1.0
        ) == float("inf")


class TestScheme:
    def test_beta_zero_is_wardrop(self, system):
        result = StackelbergScheme(beta=0.0).allocate(system)
        ios = IndividualOptimalScheme().allocate(system)
        assert result.overall_time == pytest.approx(ios.overall_time, rel=1e-6)

    def test_beta_one_is_global_optimum(self, system):
        result = StackelbergScheme(beta=1.0).allocate(system)
        gos = GlobalOptimalScheme(split="fair").allocate(system)
        assert result.overall_time == pytest.approx(gos.overall_time, rel=1e-4)

    def test_cost_between_extremes(self, system):
        gos = GlobalOptimalScheme(split="fair").allocate(system).overall_time
        ios = IndividualOptimalScheme().allocate(system).overall_time
        mid = StackelbergScheme(beta=0.5).allocate(system).overall_time
        assert gos - 1e-9 <= mid <= ios + 1e-9

    def test_more_leadership_never_hurts(self, system):
        times = [
            StackelbergScheme(beta=b).allocate(system).overall_time
            for b in (0.0, 0.5, 1.0)
        ]
        assert times[0] + 1e-9 >= times[1] >= times[2] - 1e-9

    def test_aloof_no_better_than_nlp(self, system):
        nlp = StackelbergScheme(beta=0.5, strategy="nlp").allocate(system)
        aloof = StackelbergScheme(beta=0.5, strategy="aloof").allocate(system)
        assert nlp.overall_time <= aloof.overall_time + 1e-6

    def test_beta_validated(self):
        with pytest.raises(ValueError):
            StackelbergScheme(beta=1.5)
        with pytest.raises(ValueError):
            StackelbergScheme(beta=-0.1)

    def test_profile_feasible(self, system):
        result = StackelbergScheme(beta=0.3).allocate(system)
        result.profile.validate(system)

    def test_extras_recorded(self, system):
        result = StackelbergScheme(beta=0.3).allocate(system)
        leader = result.extra["leader_loads"]
        follower = result.extra["follower_loads"]
        assert leader.sum() == pytest.approx(
            0.3 * system.total_arrival_rate, rel=1e-6
        )
        assert (leader + follower).sum() == pytest.approx(
            system.total_arrival_rate, rel=1e-9
        )
