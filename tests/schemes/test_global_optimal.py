"""Tests for the GOS baseline (Kim & Kameda / Tantawi & Towsley)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import StrategyProfile
from repro.queueing.metrics import overall_response_time
from repro.schemes.global_optimal import (
    GlobalOptimalScheme,
    global_optimal_loads,
    sequential_fill_split,
    solve_gos_nlp,
)
from repro.workloads.configs import paper_table1_system


class TestOptimalLoads:
    def test_loads_sum_to_total(self, table1_medium):
        loads = global_optimal_loads(table1_medium)
        assert loads.sum() == pytest.approx(table1_medium.total_arrival_rate)

    def test_loads_stable(self, table1_medium):
        loads = global_optimal_loads(table1_medium)
        assert np.all(loads < table1_medium.service_rates)

    def test_slow_computers_idle_at_low_load(self):
        system = paper_table1_system(utilization=0.1)
        loads = global_optimal_loads(system)
        mu = system.service_rates
        # At 10% load the slowest class (10 jobs/s) should get nothing.
        assert np.all(loads[mu == mu.min()] == 0.0)

    def test_all_computers_used_at_high_load(self):
        system = paper_table1_system(utilization=0.9)
        loads = global_optimal_loads(system)
        assert np.all(loads > 0.0)

    def test_beats_random_aggregate_allocations(self, table1_medium, rng):
        loads = global_optimal_loads(table1_medium)
        mu = table1_medium.service_rates
        total = table1_medium.total_arrival_rate
        # reprolint: allow=R003 independent oracle, deliberately not via repro.queueing
        optimal = (loads / (mu - loads)).sum()
        for _ in range(200):
            x = rng.dirichlet(np.ones(mu.size)) * total
            if np.any(x >= mu):
                continue
            # reprolint: allow=R003 independent oracle
            assert (x / (mu - x)).sum() >= optimal - 1e-9


class TestSequentialSplit:
    def test_column_sums_reproduce_loads(self, table1_medium):
        loads = global_optimal_loads(table1_medium)
        fractions = sequential_fill_split(table1_medium, loads)
        reproduced = table1_medium.loads(fractions)
        np.testing.assert_allclose(reproduced, loads, atol=1e-8)

    def test_rows_are_distributions(self, table1_medium):
        loads = global_optimal_loads(table1_medium)
        fractions = sequential_fill_split(table1_medium, loads)
        np.testing.assert_allclose(fractions.sum(axis=1), 1.0)
        assert np.all(fractions >= 0.0)

    def test_first_user_gets_fastest_machines(self, table1_medium):
        loads = global_optimal_loads(table1_medium)
        fractions = sequential_fill_split(table1_medium, loads)
        times = table1_medium.user_response_times(fractions)
        # User order tracks machine speed order: user 1 strictly better
        # than the last user at medium load.
        assert times[0] < times[-1]
        # And times are nondecreasing in user index by construction.
        assert np.all(np.diff(times) >= -1e-9)

    def test_shape_validation(self, table1_medium):
        with pytest.raises(ValueError):
            sequential_fill_split(table1_medium, np.array([1.0]))


class TestSchemeVariants:
    def test_all_splits_achieve_same_overall_time(self, table1_medium):
        results = {
            split: GlobalOptimalScheme(split=split).allocate(table1_medium)
            for split in ("sequential", "fair", "slsqp")
        }
        times = [r.overall_time for r in results.values()]
        np.testing.assert_allclose(times, times[0], rtol=1e-5)

    def test_fair_split_fairness_one(self, table1_medium):
        result = GlobalOptimalScheme(split="fair").allocate(table1_medium)
        assert result.fairness == pytest.approx(1.0)

    def test_sequential_split_unfair_at_medium_load(self, table1_medium):
        result = GlobalOptimalScheme().allocate(table1_medium)
        assert result.fairness < 0.95

    def test_gos_is_global_minimum(self, table1_medium, rng):
        gos = GlobalOptimalScheme().allocate(table1_medium)
        m, n = table1_medium.n_users, table1_medium.n_computers
        for _ in range(100):
            raw = rng.dirichlet(np.ones(n), size=m)
            profile = StrategyProfile(raw)
            if not profile.satisfies_stability(table1_medium):
                continue
            candidate = overall_response_time(
                table1_medium.user_response_times(raw),
                table1_medium.arrival_rates,
            )
            assert candidate >= gos.overall_time - 1e-9

    def test_nlp_matches_closed_form(self, table1_small):
        profile = solve_gos_nlp(table1_small)
        nlp_time = table1_small.overall_response_time(profile.fractions)
        closed = GlobalOptimalScheme(split="fair").allocate(table1_small)
        assert nlp_time == pytest.approx(closed.overall_time, rel=1e-4)

    def test_unknown_split_rejected(self, table1_medium):
        with pytest.raises(ValueError):
            GlobalOptimalScheme(split="bogus").allocate(table1_medium)  # type: ignore[arg-type]

    def test_scheme_name_and_extras(self, table1_medium):
        result = GlobalOptimalScheme().allocate(table1_medium)
        assert result.scheme == "GOS"
        assert "optimal_loads" in result.extra
        assert result.extra["split"] == "sequential"

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_overall_time_increases_with_load(self, rho):
        lo = GlobalOptimalScheme(split="fair").allocate(
            paper_table1_system(utilization=rho * 0.5)
        )
        hi = GlobalOptimalScheme(split="fair").allocate(
            paper_table1_system(utilization=rho * 0.5 + 0.45)
        )
        assert lo.overall_time < hi.overall_time
