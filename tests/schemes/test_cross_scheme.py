"""Integration tests comparing schemes — the paper's Sec. 4 claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing.metrics import price_of_anarchy
from repro.schemes import (
    GlobalOptimalScheme,
    IndividualOptimalScheme,
    NashScheme,
    ProportionalScheme,
    standard_schemes,
)
from repro.workloads.configs import paper_table1_system, random_system, skewed_system


def all_results(system):
    return {s.name: s.allocate(system) for s in standard_schemes()}


class TestOrderings:
    @pytest.mark.parametrize("rho", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_gos_lower_bounds_everyone(self, rho):
        system = paper_table1_system(utilization=rho)
        results = all_results(system)
        gos = results["GOS"].overall_time
        for name in ("NASH", "IOS", "PS"):
            assert results[name].overall_time >= gos - 1e-9

    @pytest.mark.parametrize("rho", [0.2, 0.4, 0.6, 0.8])
    def test_nash_no_worse_than_wardrop_or_ps(self, rho):
        """Finite selfish users beat infinitesimal selfish jobs and the
        oblivious proportional split on the paper's configurations."""
        system = paper_table1_system(utilization=rho)
        results = all_results(system)
        assert results["NASH"].overall_time <= results["IOS"].overall_time + 1e-9
        assert results["NASH"].overall_time <= results["PS"].overall_time + 1e-9

    def test_nash_close_to_gos_at_medium_load(self):
        """Paper: at 50% load NASH is within ~10% of GOS and ~30% better
        than PS."""
        system = paper_table1_system(utilization=0.5)
        results = all_results(system)
        nash, gos, ps = (
            results["NASH"].overall_time,
            results["GOS"].overall_time,
            results["PS"].overall_time,
        )
        assert (nash - gos) / gos < 0.15
        assert (ps - nash) / ps > 0.2

    def test_ios_equals_ps_at_high_load(self):
        system = paper_table1_system(utilization=0.9)
        results = all_results(system)
        assert results["IOS"].overall_time == pytest.approx(
            results["PS"].overall_time, rel=1e-9
        )

    def test_ios_beats_ps_at_low_load(self):
        system = paper_table1_system(utilization=0.15)
        results = all_results(system)
        assert results["IOS"].overall_time < results["PS"].overall_time

    def test_low_load_all_but_ps_similar(self):
        """Paper: at 10-40% load NASH/GOS/IOS nearly coincide, PS lags."""
        system = paper_table1_system(utilization=0.2)
        results = all_results(system)
        trio = [results[n].overall_time for n in ("NASH", "GOS", "IOS")]
        spread = (max(trio) - min(trio)) / min(trio)
        assert spread < 0.15
        assert results["PS"].overall_time > max(trio) * 1.2


class TestFairness:
    @pytest.mark.parametrize("rho", [0.2, 0.5, 0.8])
    def test_ps_and_ios_fairness_one(self, rho):
        system = paper_table1_system(utilization=rho)
        results = all_results(system)
        assert results["PS"].fairness == pytest.approx(1.0)
        assert results["IOS"].fairness == pytest.approx(1.0)

    def test_nash_fairness_near_one(self):
        system = paper_table1_system(utilization=0.6)
        assert NashScheme().allocate(system).fairness > 0.999

    def test_gos_fairness_degrades_with_load(self):
        lo = GlobalOptimalScheme().allocate(paper_table1_system(utilization=0.3))
        hi = GlobalOptimalScheme().allocate(paper_table1_system(utilization=0.9))
        assert hi.fairness < lo.fairness

    def test_gos_sequential_split_unfair_at_high_load(self):
        result = GlobalOptimalScheme().allocate(
            paper_table1_system(utilization=0.9)
        )
        assert result.fairness < 0.9


class TestHeterogeneity:
    def test_homogeneous_system_all_reasonable_schemes_tie(self):
        """At skewness 1 every computer is identical, so PS, IOS, GOS (fair)
        and NASH all put the same load everywhere."""
        system = skewed_system(1.0, utilization=0.6)
        results = all_results(system)
        times = [results[n].overall_time for n in ("NASH", "GOS", "IOS", "PS")]
        np.testing.assert_allclose(times, times[0], rtol=1e-6)

    def test_nash_tracks_gos_at_high_skewness(self):
        system = skewed_system(20.0, utilization=0.6)
        results = all_results(system)
        gap = (
            results["NASH"].overall_time - results["GOS"].overall_time
        ) / results["GOS"].overall_time
        assert gap < 0.05

    def test_ps_poor_under_heterogeneity(self):
        system = skewed_system(16.0, utilization=0.6)
        results = all_results(system)
        assert results["PS"].overall_time > 1.5 * results["NASH"].overall_time


class TestPriceOfAnarchy:
    @pytest.mark.parametrize("rho", [0.2, 0.5, 0.8])
    def test_poa_at_least_one(self, rho):
        system = paper_table1_system(utilization=rho)
        results = all_results(system)
        poa = price_of_anarchy(
            results["NASH"].overall_time, results["GOS"].overall_time
        )
        assert poa >= 1.0 - 1e-9

    def test_poa_modest_on_paper_configs(self):
        system = paper_table1_system(utilization=0.6)
        results = all_results(system)
        poa = price_of_anarchy(
            results["NASH"].overall_time, results["GOS"].overall_time
        )
        assert poa < 1.25


class TestRandomSystems:
    def test_orderings_hold_on_random_instances(self, rng):
        for _ in range(5):
            system = random_system(rng, n_computers=6, n_users=4)
            results = all_results(system)
            gos = results["GOS"].overall_time
            assert results["NASH"].overall_time >= gos - 1e-9
            assert results["IOS"].overall_time >= gos - 1e-9
            assert results["PS"].overall_time >= gos - 1e-9
            assert results["PS"].fairness == pytest.approx(1.0)
            assert results["IOS"].fairness == pytest.approx(1.0)
