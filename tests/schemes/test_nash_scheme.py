"""Tests for the NASH scheme wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash_equilibrium
from repro.schemes.nash_scheme import NashScheme


class TestNashScheme:
    def test_allocation_is_equilibrium(self, table1_medium):
        result = NashScheme(tolerance=1e-9).allocate(table1_medium)
        assert is_nash_equilibrium(table1_medium, result.profile, tol=1e-5)

    def test_epsilon_reported(self, table1_medium):
        result = NashScheme(tolerance=1e-9).allocate(table1_medium)
        assert result.extra["epsilon"] <= 1e-5

    def test_converged_flag(self, table1_medium):
        result = NashScheme().allocate(table1_medium)
        assert result.extra["converged"]
        assert result.extra["iterations"] > 0

    def test_init_variants_agree(self, table1_small):
        zero = NashScheme(init="zero", tolerance=1e-9).allocate(table1_small)
        prop = NashScheme(init="proportional", tolerance=1e-9).allocate(
            table1_small
        )
        np.testing.assert_allclose(
            zero.user_times, prop.user_times, rtol=1e-5
        )

    def test_symmetric_users_near_equal_times(self, table1_medium):
        """Identical users get (numerically) identical equilibrium costs."""
        result = NashScheme(tolerance=1e-9).allocate(table1_medium)
        spread = result.user_times.max() - result.user_times.min()
        assert spread < 1e-4 * result.user_times.mean()

    def test_fairness_close_to_one(self, table1_medium):
        result = NashScheme().allocate(table1_medium)
        assert result.fairness > 0.999

    def test_scheme_name(self, table1_medium):
        assert NashScheme().allocate(table1_medium).scheme == "NASH"

    def test_profile_feasible(self, table1_medium):
        result = NashScheme().allocate(table1_medium)
        result.profile.validate(table1_medium)

    def test_loads_recorded(self, table1_medium):
        result = NashScheme().allocate(table1_medium)
        loads = result.extra["loads"]
        assert loads.sum() == pytest.approx(table1_medium.total_arrival_rate)
