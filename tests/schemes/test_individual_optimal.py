"""Tests for the IOS baseline (Wardrop equilibrium, Kameda et al.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schemes.individual_optimal import (
    IndividualOptimalScheme,
    flow_deviation_loads,
    wardrop_loads,
    wardrop_response_time,
)
from repro.schemes.proportional import proportional_response_time
from repro.workloads.configs import paper_table1_system


class TestWardropLoads:
    def test_loads_conserve_demand(self, table1_medium):
        loads = wardrop_loads(table1_medium)
        assert loads.sum() == pytest.approx(table1_medium.total_arrival_rate)

    def test_equal_times_on_used_computers(self, table1_medium):
        loads = wardrop_loads(table1_medium)
        mu = table1_medium.service_rates
        used = loads > 0.0
        # reprolint: allow=R003 independent oracle for the waterfill result
        times = 1.0 / (mu[used] - loads[used])
        np.testing.assert_allclose(times, times[0], rtol=1e-9)

    def test_unused_computers_slower_even_idle(self, table1_medium):
        loads = wardrop_loads(table1_medium)
        mu = table1_medium.service_rates
        tau = wardrop_response_time(table1_medium)
        idle = loads == 0.0  # reprolint: allow=R002 exact-sentinel mask
        assert np.all(1.0 / mu[idle] >= tau - 1e-12)

    def test_tau_matches_used_times(self, table1_medium):
        loads = wardrop_loads(table1_medium)
        mu = table1_medium.service_rates
        used = loads > 0.0
        tau = wardrop_response_time(table1_medium)
        assert tau == pytest.approx(float(1.0 / (mu[used] - loads[used]).max()))

    def test_high_load_matches_ps_closed_form(self):
        """Once every computer is used, IOS time == PS time (exactly)."""
        system = paper_table1_system(utilization=0.9)
        loads = wardrop_loads(system)
        assert np.all(loads > 0.0)
        tau = wardrop_response_time(system)
        assert tau == pytest.approx(proportional_response_time(system), rel=1e-9)

    def test_low_load_better_than_ps(self):
        system = paper_table1_system(utilization=0.2)
        tau = wardrop_response_time(system)
        assert tau < proportional_response_time(system)


class TestFlowDeviation:
    def test_matches_closed_form(self, table1_medium):
        closed = wardrop_loads(table1_medium)
        iterated, iterations = flow_deviation_loads(table1_medium, tolerance=1e-9)
        np.testing.assert_allclose(iterated, closed, atol=1e-4)
        assert iterations > 0

    def test_is_paper_noted_inefficient(self, table1_medium):
        """The iterative method takes many more steps than the closed form
        (which is a single sort) — the paper's 'not very efficient' remark."""
        _, iterations = flow_deviation_loads(table1_medium, tolerance=1e-8)
        assert iterations > 50

    def test_respects_stability(self, table1_medium):
        loads, _ = flow_deviation_loads(table1_medium)
        assert np.all(loads < table1_medium.service_rates)
        assert np.all(loads >= 0.0)


class TestScheme:
    def test_fairness_exactly_one(self, table1_medium):
        result = IndividualOptimalScheme().allocate(table1_medium)
        assert result.fairness == pytest.approx(1.0)

    def test_all_users_experience_tau(self, table1_medium):
        result = IndividualOptimalScheme().allocate(table1_medium)
        tau = wardrop_response_time(table1_medium)
        np.testing.assert_allclose(result.user_times, tau, rtol=1e-9)

    def test_overall_time_is_tau(self, table1_medium):
        result = IndividualOptimalScheme().allocate(table1_medium)
        assert result.overall_time == pytest.approx(
            result.extra["tau"], rel=1e-9
        )

    def test_flow_deviation_method(self, table1_medium):
        result = IndividualOptimalScheme(method="flow_deviation").allocate(
            table1_medium
        )
        closed = IndividualOptimalScheme().allocate(table1_medium)
        assert result.overall_time == pytest.approx(
            closed.overall_time, rel=1e-4
        )
        assert result.extra["iterations"] > 0

    def test_unknown_method_rejected(self, table1_medium):
        with pytest.raises(ValueError):
            IndividualOptimalScheme(method="bogus").allocate(table1_medium)

    def test_profile_feasible(self, table1_medium):
        result = IndividualOptimalScheme().allocate(table1_medium)
        result.profile.validate(table1_medium)

    def test_scheme_name(self, table1_medium):
        assert IndividualOptimalScheme().allocate(table1_medium).scheme == "IOS"
