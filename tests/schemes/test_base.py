"""Tests for the common scheme interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import StrategyProfile
from repro.schemes import standard_schemes
from repro.schemes.base import evaluate_profile


class TestEvaluateProfile:
    def test_metrics_consistent(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        result = evaluate_profile(two_by_two, profile, "TEST")
        np.testing.assert_allclose(
            result.user_times, two_by_two.user_response_times(profile.fractions)
        )
        assert result.overall_time == pytest.approx(
            two_by_two.overall_response_time(profile.fractions)
        )
        assert result.scheme == "TEST"

    def test_loads_exposed(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        result = evaluate_profile(two_by_two, profile, "TEST")
        np.testing.assert_allclose(
            result.loads, two_by_two.loads(profile.fractions)
        )

    def test_extra_merged(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        result = evaluate_profile(
            two_by_two, profile, "TEST", extra={"answer": 42}
        )
        assert result.extra["answer"] == 42
        assert "loads" in result.extra

    def test_infeasible_rejected(self, two_by_two):
        profile = StrategyProfile.zeros(2, 2)
        with pytest.raises(ValueError):
            evaluate_profile(two_by_two, profile, "TEST")


class TestStandardSchemes:
    def test_four_paper_schemes(self):
        names = [s.name for s in standard_schemes()]
        assert names == ["NASH", "GOS", "IOS", "PS"]

    def test_fresh_instances_each_call(self):
        a = standard_schemes()
        b = standard_schemes()
        assert a is not b
