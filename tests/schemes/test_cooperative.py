"""Tests for the cooperative Nash Bargaining Solution scheme (EXT3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.schemes.cooperative import CooperativeScheme, nash_bargaining_profile
from repro.schemes.global_optimal import GlobalOptimalScheme
from repro.schemes.proportional import ProportionalScheme
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def symmetric_system():
    return paper_table1_system(utilization=0.6, n_users=4)


@pytest.fixture(scope="module")
def asymmetric_system():
    return DistributedSystem(
        service_rates=[100.0, 50.0, 20.0, 20.0],
        arrival_rates=[70.0, 20.0, 10.0],
    )


class TestNashBargaining:
    def test_individually_rational(self, symmetric_system):
        ps_times = ProportionalScheme().allocate(symmetric_system).user_times
        result = CooperativeScheme().allocate(symmetric_system)
        assert np.all(result.user_times <= ps_times + 1e-9)

    def test_individually_rational_asymmetric(self, asymmetric_system):
        ps_times = ProportionalScheme().allocate(asymmetric_system).user_times
        result = CooperativeScheme().allocate(asymmetric_system)
        assert np.all(result.user_times <= ps_times + 1e-9)

    def test_symmetric_users_equal_times(self, symmetric_system):
        result = CooperativeScheme().allocate(symmetric_system)
        spread = result.user_times.max() - result.user_times.min()
        assert spread < 1e-6
        assert result.fairness == pytest.approx(1.0, abs=1e-9)

    def test_symmetric_case_matches_fair_global_optimum(self, symmetric_system):
        """With identical users the NBS maximizes total gain fairly, which
        is exactly the fair split of the GOS loads."""
        nbs = CooperativeScheme().allocate(symmetric_system)
        gos = GlobalOptimalScheme(split="fair").allocate(symmetric_system)
        assert nbs.overall_time == pytest.approx(gos.overall_time, rel=1e-6)

    def test_overall_time_bounded_by_gos_and_ps(self, asymmetric_system):
        nbs = CooperativeScheme().allocate(asymmetric_system)
        gos = GlobalOptimalScheme(split="fair").allocate(asymmetric_system)
        ps = ProportionalScheme().allocate(asymmetric_system)
        assert gos.overall_time - 1e-9 <= nbs.overall_time <= ps.overall_time

    def test_bargaining_beats_disagreement_product(self, asymmetric_system):
        """The NBS Nash product dominates any ad-hoc feasible profile's."""
        ps_times = ProportionalScheme().allocate(asymmetric_system).user_times
        nbs = CooperativeScheme().allocate(asymmetric_system)
        nbs_product = np.prod(ps_times - nbs.user_times)

        gos = GlobalOptimalScheme(split="fair").allocate(asymmetric_system)
        gains = ps_times - gos.user_times
        if np.all(gains > 0.0):
            assert nbs_product >= np.prod(gains) * (1.0 - 1e-6)

    def test_profile_feasible(self, asymmetric_system):
        result = CooperativeScheme().allocate(asymmetric_system)
        result.profile.validate(asymmetric_system)

    def test_disagreement_point_recorded(self, symmetric_system):
        result = CooperativeScheme().allocate(symmetric_system)
        ps_times = ProportionalScheme().allocate(symmetric_system).user_times
        np.testing.assert_allclose(
            result.extra["disagreement_times"], ps_times
        )

    def test_scheme_name(self, symmetric_system):
        assert CooperativeScheme().allocate(symmetric_system).scheme == "NBS"

    def test_bad_disagreement_shape(self, symmetric_system):
        with pytest.raises(ValueError):
            nash_bargaining_profile(symmetric_system, np.array([1.0]))

    def test_heavy_user_concedes(self, asymmetric_system):
        """Bargaining trades: the heavy user runs slower than light users
        (its jobs congest everyone), unlike the egalitarian fair-GOS."""
        result = CooperativeScheme().allocate(asymmetric_system)
        assert result.user_times[0] > result.user_times[-1]
