"""Unit tests for the computer board and user agents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent


class TestComputerBoard:
    def test_initial_flows_zero(self):
        board = ComputerBoard(np.array([10.0, 5.0]), n_users=2)
        np.testing.assert_array_equal(board.flows, 0.0)

    def test_available_rates_exclude_own_flow(self):
        board = ComputerBoard(np.array([10.0, 5.0]), n_users=2)
        board.publish(0, np.array([4.0, 0.0]))
        board.publish(1, np.array([0.0, 2.0]))
        np.testing.assert_allclose(board.available_rates(0), [10.0, 3.0])
        np.testing.assert_allclose(board.available_rates(1), [6.0, 5.0])

    def test_republish_overwrites(self):
        board = ComputerBoard(np.array([10.0]), n_users=1)
        board.publish(0, np.array([3.0]))
        board.publish(0, np.array([1.0]))
        np.testing.assert_allclose(board.flows[0], [1.0])

    def test_publish_validation(self):
        board = ComputerBoard(np.array([10.0, 5.0]), n_users=1)
        with pytest.raises(ValueError):
            board.publish(0, np.array([1.0]))
        with pytest.raises(ValueError):
            board.publish(0, np.array([-1.0, 0.0]))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ComputerBoard(np.array([0.0]), n_users=1)
        with pytest.raises(ValueError):
            ComputerBoard(np.array([1.0]), n_users=0)


class TestUserAgent:
    def make_agent(self, rank=0, n_agents=2):
        board = ComputerBoard(np.array([10.0, 5.0]), n_users=n_agents)
        bus = MessageBus(n_agents)
        agent = UserAgent(
            rank=rank,
            job_rate=2.0,
            board=board,
            bus=bus,
            tolerance=1e-6,
            max_sweeps=100,
        )
        return agent, board, bus

    def test_rejects_bad_rate(self):
        board = ComputerBoard(np.array([10.0]), n_users=1)
        bus = MessageBus(1)
        with pytest.raises(ValueError):
            UserAgent(0, 0.0, board, bus, tolerance=1e-6, max_sweeps=10)

    def test_only_initiator_starts(self):
        agent, _, _ = self.make_agent(rank=1)
        with pytest.raises(RuntimeError):
            agent.start()

    def test_start_publishes_and_forwards(self):
        agent, board, bus = self.make_agent(rank=0)
        agent.start()
        # The agent placed its flow and sent the token to rank 1.
        assert board.flows[0].sum() == pytest.approx(2.0)
        message = bus.recv(1)
        assert message.sweep == 1
        assert message.norm > 0.0
