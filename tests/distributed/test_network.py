"""Unit tests for the message bus."""

from __future__ import annotations

import pytest

from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import MessageBus


def token(sender, receiver, sweep=1, norm=0.0):
    return Message(
        kind=MessageKind.TOKEN,
        sender=sender,
        receiver=receiver,
        sweep=sweep,
        norm=norm,
    )


class TestMessage:
    def test_rejects_negative_sweep(self):
        with pytest.raises(ValueError):
            Message(kind=MessageKind.TOKEN, sender=0, receiver=1, sweep=-1)

    def test_rejects_negative_norm(self):
        with pytest.raises(ValueError):
            Message(
                kind=MessageKind.TOKEN, sender=0, receiver=1, sweep=1, norm=-0.5
            )


class TestMessageBus:
    def test_send_recv_roundtrip(self):
        bus = MessageBus(2)
        msg = token(0, 1)
        bus.send(msg)
        assert bus.recv(1) is msg

    def test_fifo_per_mailbox(self):
        bus = MessageBus(2)
        first = token(0, 1, sweep=1)
        second = token(0, 1, sweep=2)
        bus.send(first)
        bus.send(second)
        assert bus.recv(1) is first
        assert bus.recv(1) is second

    def test_recv_empty_raises(self):
        bus = MessageBus(2)
        with pytest.raises(LookupError):
            bus.recv(0)

    def test_rank_validation(self):
        bus = MessageBus(2)
        with pytest.raises(ValueError):
            bus.send(token(0, 5))
        with pytest.raises(ValueError):
            bus.send(token(7, 0))
        with pytest.raises(ValueError):
            bus.recv(9)

    def test_has_pending_and_pending_ranks(self):
        bus = MessageBus(3)
        assert bus.pending_ranks() == []
        bus.send(token(0, 2))
        assert bus.has_pending(2)
        assert not bus.has_pending(1)
        assert bus.pending_ranks() == [2]

    def test_transcript_records_in_order(self):
        bus = MessageBus(3)
        a, b = token(0, 1), token(1, 2)
        bus.send(a)
        bus.send(b)
        assert bus.transcript == (a, b)

    def test_transcript_can_be_disabled(self):
        bus = MessageBus(2, record_transcript=False)
        bus.send(token(0, 1))
        assert bus.transcript == ()

    def test_needs_agents(self):
        with pytest.raises(ValueError):
            MessageBus(0)
