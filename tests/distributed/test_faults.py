"""Failure-injection tests for the distributed protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nash import compute_nash_equilibrium
from repro.distributed.faults import LossyMessageBus, run_nash_protocol_lossy
from repro.distributed.messages import Message, MessageKind
from repro.workloads.configs import paper_table1_system


def token(sender, receiver, sweep=1):
    return Message(
        kind=MessageKind.TOKEN, sender=sender, receiver=receiver, sweep=sweep
    )


class TestLossyMessageBus:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossyMessageBus(2, drop=1.0)
        with pytest.raises(ValueError):
            LossyMessageBus(2, duplicate=-0.1)

    def test_zero_faults_is_reliable(self):
        bus = LossyMessageBus(2, drop=0.0, duplicate=0.0)
        for sweep in range(1, 50):
            bus.send(token(0, 1, sweep))
        count = 0
        while bus.has_pending(1):
            bus.recv(1)
            count += 1
        assert count == 49
        assert bus.dropped == 0 and bus.duplicated == 0

    def test_drop_rate_approximate(self):
        bus = LossyMessageBus(2, drop=0.3, seed=1)
        n = 5000
        for sweep in range(1, n + 1):
            bus.send(token(0, 1, sweep))
        assert bus.dropped == pytest.approx(0.3 * n, rel=0.1)

    def test_duplication_enqueues_twice(self):
        bus = LossyMessageBus(2, duplicate=0.5, seed=2)
        n = 2000
        for sweep in range(1, n + 1):
            bus.send(token(0, 1, sweep))
        delivered = 0
        while bus.has_pending(1):
            bus.recv(1)
            delivered += 1
        assert delivered == n + bus.duplicated
        assert bus.duplicated == pytest.approx(0.5 * n, rel=0.15)

    def test_fault_stream_reproducible(self):
        a = LossyMessageBus(2, drop=0.2, seed=7)
        b = LossyMessageBus(2, drop=0.2, seed=7)
        for sweep in range(1, 100):
            a.send(token(0, 1, sweep))
            b.send(token(0, 1, sweep))
        assert a.dropped == b.dropped


class TestLossyProtocol:
    @pytest.fixture(scope="class")
    def system(self):
        return paper_table1_system(utilization=0.5, n_users=4)

    @pytest.fixture(scope="class")
    def lossless(self, system):
        return compute_nash_equilibrium(system, tolerance=1e-6)

    def test_no_faults_matches_reliable_protocol(self, system, lossless):
        outcome = run_nash_protocol_lossy(
            system, drop=0.0, duplicate=0.0
        )
        assert outcome.result.iterations == lossless.iterations
        np.testing.assert_allclose(
            outcome.result.profile.fractions,
            lossless.profile.fractions,
            atol=1e-10,
        )

    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_converges_despite_drops(self, system, lossless, fault_seed):
        outcome = run_nash_protocol_lossy(
            system, drop=0.2, duplicate=0.0, fault_seed=fault_seed
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.user_times, lossless.user_times, rtol=1e-5
        )

    def test_converges_despite_duplicates(self, system, lossless):
        outcome = run_nash_protocol_lossy(
            system, drop=0.0, duplicate=0.3, fault_seed=3
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.user_times, lossless.user_times, rtol=1e-5
        )

    def test_converges_with_both_fault_types(self, system, lossless):
        outcome = run_nash_protocol_lossy(
            system, drop=0.15, duplicate=0.15, fault_seed=4
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.user_times, lossless.user_times, rtol=1e-5
        )

    def test_faults_cost_messages_not_correctness(self, system):
        clean = run_nash_protocol_lossy(
            system, drop=0.0, duplicate=0.0
        )
        faulty = run_nash_protocol_lossy(
            system, drop=0.2, duplicate=0.1, fault_seed=5
        )
        # Same equilibrium, more traffic.
        assert faulty.messages_sent > clean.messages_sent
        np.testing.assert_allclose(
            faulty.result.user_times, clean.result.user_times, rtol=1e-5
        )

    def test_deterministic_replay(self, system):
        a = run_nash_protocol_lossy(system, drop=0.2, fault_seed=6)
        b = run_nash_protocol_lossy(system, drop=0.2, fault_seed=6)
        assert a.messages_sent == b.messages_sent
        np.testing.assert_array_equal(
            a.result.profile.fractions, b.result.profile.fractions
        )

    def test_retransmission_budget_enforced(self, system):
        with pytest.raises(RuntimeError, match="budget"):
            run_nash_protocol_lossy(
                system, drop=0.5, fault_seed=7, max_retransmissions=1
            )


class TestExtremeFaultRates:
    """The protocol must survive pathological networks, not just bad ones."""

    @pytest.fixture(scope="class")
    def system(self):
        return paper_table1_system(utilization=0.5, n_users=4)

    @pytest.fixture(scope="class")
    def lossless(self, system):
        return compute_nash_equilibrium(system, tolerance=1e-6)

    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_drop_090(self, system, lossless, fault_seed):
        outcome = run_nash_protocol_lossy(
            system, drop=0.9, duplicate=0.0, fault_seed=fault_seed
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.user_times, lossless.user_times, rtol=1e-5
        )

    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_duplicate_05(self, system, lossless, fault_seed):
        outcome = run_nash_protocol_lossy(
            system, drop=0.0, duplicate=0.5, fault_seed=fault_seed
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.user_times, lossless.user_times, rtol=1e-5
        )

    @pytest.mark.parametrize("fault_seed", [0, 1])
    def test_both_extreme(self, system, lossless, fault_seed):
        outcome = run_nash_protocol_lossy(
            system, drop=0.8, duplicate=0.5, fault_seed=fault_seed
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.user_times, lossless.user_times, rtol=1e-5
        )


class TestMessageAccounting:
    """Regression: messages_sent / retransmissions stay consistent."""

    @pytest.fixture(scope="class")
    def system(self):
        return paper_table1_system(utilization=0.5, n_users=4)

    def test_reliable_run_has_no_retransmissions(self, system):
        outcome = run_nash_protocol_lossy(system, drop=0.0, duplicate=0.0)
        assert outcome.retransmissions == 0

    def test_counters_reconcile_with_transcript(self, system):
        outcome = run_nash_protocol_lossy(
            system, drop=0.3, duplicate=0.2, fault_seed=11
        )
        assert outcome.retransmissions > 0
        # Every transcript entry was a successful delivery, and every
        # delivery was handled: the handled count equals the transcript.
        assert outcome.messages_sent == len(outcome.transcript)
        # The fault-free run needs m tokens per sweep plus the terminate
        # circulation; a faulty run can only exceed that floor through
        # retransmission or duplication, never out of thin air.
        clean = run_nash_protocol_lossy(system, drop=0.0, duplicate=0.0)
        floor = clean.messages_sent
        assert outcome.messages_sent > floor
        extra = outcome.messages_sent - floor
        duplicated_at_most = outcome.messages_sent  # duplicates re-deliver
        assert extra <= outcome.retransmissions + duplicated_at_most

    def test_terminate_not_retransmitted_to_finished_agents(self, system):
        """Regression for the old guard that kept re-sending TERMINATE."""
        outcome = run_nash_protocol_lossy(
            system, drop=0.0, duplicate=0.0
        )
        # With a perfectly reliable network the stall path never fires,
        # so no TERMINATE (or anything else) is ever re-sent.
        terminates = [
            msg for msg in outcome.transcript
            if msg.kind is MessageKind.TERMINATE
        ]
        assert len(terminates) == system.n_users - 1
