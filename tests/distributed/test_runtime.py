"""Integration tests: the ring protocol vs the sequential NASH solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash_equilibrium
from repro.core.nash import compute_nash_equilibrium
from repro.core.strategy import StrategyProfile
from repro.distributed.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    run_nash_protocol_resilient,
)
from repro.distributed.messages import MessageKind
from repro.distributed.runtime import run_nash_protocol
from repro.workloads.configs import paper_table1_system


class TestProtocolEquivalence:
    @pytest.mark.parametrize("init", ["zero", "proportional"])
    def test_matches_sequential_driver(self, table1_small, init):
        sequential = compute_nash_equilibrium(table1_small, init=init)
        protocol = run_nash_protocol(table1_small, init=init)
        assert protocol.result.iterations == sequential.iterations
        assert protocol.result.converged == sequential.converged
        np.testing.assert_allclose(
            protocol.result.profile.fractions,
            sequential.profile.fractions,
            atol=1e-10,
        )
        np.testing.assert_allclose(
            protocol.result.norm_history,
            sequential.norm_history,
            atol=1e-10,
        )

    def test_result_is_equilibrium(self, table1_small):
        protocol = run_nash_protocol(table1_small, tolerance=1e-9)
        assert is_nash_equilibrium(
            table1_small, protocol.result.profile, tol=1e-5
        )

    def test_profile_feasible(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        protocol.result.profile.validate(table1_small)


class TestProtocolMechanics:
    def test_message_complexity(self, table1_small):
        """One token hop per user per sweep, plus m-1 terminate hops."""
        protocol = run_nash_protocol(table1_small)
        m = table1_small.n_users
        sweeps = protocol.result.iterations
        assert protocol.messages_sent == m * sweeps + (m - 1)

    def test_transcript_token_then_terminate(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        kinds = [msg.kind for msg in protocol.transcript]
        first_terminate = kinds.index(MessageKind.TERMINATE)
        assert all(k is MessageKind.TOKEN for k in kinds[:first_terminate])
        assert all(
            k is MessageKind.TERMINATE for k in kinds[first_terminate:]
        )

    def test_token_travels_the_ring(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        m = table1_small.n_users
        hops = [
            (msg.sender, msg.receiver)
            for msg in protocol.transcript
            if msg.kind is MessageKind.TOKEN
        ]
        for sender, receiver in hops:
            assert receiver == (sender + 1) % m

    def test_norm_nonincreasing_tail(self, table1_small):
        protocol = run_nash_protocol(table1_small, tolerance=1e-8)
        norms = protocol.result.norm_history
        # After the initial transient the norm decays monotonically.
        tail = norms[2:]
        assert np.all(np.diff(tail) <= 1e-12)

    def test_sweep_budget(self, table1_small):
        protocol = run_nash_protocol(
            table1_small, tolerance=1e-15, max_sweeps=4
        )
        assert not protocol.result.converged
        assert protocol.result.iterations == 4

    def test_single_user_protocol(self):
        system = paper_table1_system(utilization=0.4, n_users=1)
        protocol = run_nash_protocol(system)
        assert protocol.result.converged
        protocol.result.profile.validate(system)

    def test_two_user_protocol(self):
        system = paper_table1_system(utilization=0.5, n_users=2)
        protocol = run_nash_protocol(system, tolerance=1e-8)
        assert protocol.result.converged
        assert is_nash_equilibrium(
            system, protocol.result.profile, tol=1e-4
        )

    def test_transcript_disabled(self, table1_small):
        protocol = run_nash_protocol(table1_small, record_transcript=False)
        assert protocol.transcript == ()
        assert protocol.messages_sent > 0


class TestMessagesSentAccounting:
    """``messages_sent`` is incremented in the drain loop, not by the
    bus — these tests pin it to actual bus deliveries so the legacy
    field and the telemetry counters cannot drift apart."""

    def test_reliable_run_matches_transcript(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        # On the reliable bus every send is enqueued exactly once and
        # every enqueued message is drained exactly once.
        assert protocol.messages_sent == len(protocol.transcript)
        token = sum(
            1 for m in protocol.transcript if m.kind is MessageKind.TOKEN
        )
        terminate = sum(
            1
            for m in protocol.transcript
            if m.kind is MessageKind.TERMINATE
        )
        assert token + terminate == protocol.messages_sent
        m = table1_small.n_users
        assert token == m * protocol.result.iterations
        assert terminate == m - 1

    def test_crash_fault_run_counts_only_deliveries(self, table1_small):
        # A crash wipes the victim's mailbox: those messages sit in the
        # transcript (they were enqueued) but are never drained, so
        # messages_sent counts strictly the messages agents handled —
        # which is exactly what the telemetry deliver events record.
        from repro.telemetry.sinks import InMemorySink
        from repro.telemetry.trace import Tracer

        schedule = FaultSchedule(
            [
                FaultEvent(6, FaultKind.AGENT_CRASH, 1),
                FaultEvent(16, FaultKind.AGENT_RESTART, 1),
            ]
        )
        sink = InMemorySink()
        outcome = run_nash_protocol_resilient(
            table1_small,
            schedule,
            tolerance=1e-8,
            checkpoint_interval=4,
            tracer=Tracer(sink),
        )
        assert outcome.crashes == 1
        kinds = {m.kind for m in outcome.transcript}
        assert kinds <= {MessageKind.TOKEN, MessageKind.TERMINATE}
        deliveries = [
            e for e in sink.events if e.name == "protocol.deliver"
        ]
        assert outcome.messages_sent == len(deliveries)
        assert outcome.messages_sent <= len(outcome.transcript)


class TestInitialStateSeeding:
    """Regression: the driver used to skip publishing/seeding whenever
    the starting profile was not row-stochastic, and crashed outright on
    a conserving-but-overloaded one — both paths are live and must match
    the sequential solver sweep for sweep."""

    def _assert_parity(self, system, init):
        sequential = compute_nash_equilibrium(system, init=init)
        protocol = run_nash_protocol(system, init=init)
        assert protocol.result.iterations == sequential.iterations
        np.testing.assert_allclose(
            protocol.result.norm_history,
            sequential.norm_history,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            protocol.result.profile.fractions,
            sequential.profile.fractions,
            atol=1e-10,
        )

    def test_partial_profile_start(self, table1_small):
        # Non-conserving start: rows sum below 1. The sequential solver
        # publishes these flows as real starting state; the driver used
        # to silently ignore them.
        partial = StrategyProfile(
            np.full(
                (table1_small.n_users, table1_small.n_computers), 0.01
            )
        )
        self._assert_parity(table1_small, partial)

    def test_overloaded_conserving_start(self, table1_small):
        # A uniform split on the heterogeneous Table-1 system conserves
        # flow but overloads the slow computers: no finite expected
        # times. The driver used to crash here (uncaught ValueError);
        # now it adopts the solver's NASH_0 baseline convention.
        uniform = StrategyProfile.uniform(
            table1_small.n_users, table1_small.n_computers
        )
        with pytest.raises(ValueError):
            table1_small.user_response_times(uniform.fractions)
        self._assert_parity(table1_small, uniform)

    def test_resilient_driver_accepts_hostile_starts(self, table1_small):
        uniform = StrategyProfile.uniform(
            table1_small.n_users, table1_small.n_computers
        )
        outcome = run_nash_protocol_resilient(
            table1_small, init=uniform, tolerance=1e-8
        )
        sequential = compute_nash_equilibrium(
            table1_small, init=uniform, tolerance=1e-8
        )
        assert outcome.result.converged
        np.testing.assert_allclose(
            outcome.result.profile.fractions,
            sequential.profile.fractions,
            atol=1e-10,
        )
