"""Integration tests: the ring protocol vs the sequential NASH solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash_equilibrium
from repro.core.nash import compute_nash_equilibrium
from repro.distributed.messages import MessageKind
from repro.distributed.runtime import run_nash_protocol
from repro.workloads.configs import paper_table1_system


class TestProtocolEquivalence:
    @pytest.mark.parametrize("init", ["zero", "proportional"])
    def test_matches_sequential_driver(self, table1_small, init):
        sequential = compute_nash_equilibrium(table1_small, init=init)
        protocol = run_nash_protocol(table1_small, init=init)
        assert protocol.result.iterations == sequential.iterations
        assert protocol.result.converged == sequential.converged
        np.testing.assert_allclose(
            protocol.result.profile.fractions,
            sequential.profile.fractions,
            atol=1e-10,
        )
        np.testing.assert_allclose(
            protocol.result.norm_history,
            sequential.norm_history,
            atol=1e-10,
        )

    def test_result_is_equilibrium(self, table1_small):
        protocol = run_nash_protocol(table1_small, tolerance=1e-9)
        assert is_nash_equilibrium(
            table1_small, protocol.result.profile, tol=1e-5
        )

    def test_profile_feasible(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        protocol.result.profile.validate(table1_small)


class TestProtocolMechanics:
    def test_message_complexity(self, table1_small):
        """One token hop per user per sweep, plus m-1 terminate hops."""
        protocol = run_nash_protocol(table1_small)
        m = table1_small.n_users
        sweeps = protocol.result.iterations
        assert protocol.messages_sent == m * sweeps + (m - 1)

    def test_transcript_token_then_terminate(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        kinds = [msg.kind for msg in protocol.transcript]
        first_terminate = kinds.index(MessageKind.TERMINATE)
        assert all(k is MessageKind.TOKEN for k in kinds[:first_terminate])
        assert all(
            k is MessageKind.TERMINATE for k in kinds[first_terminate:]
        )

    def test_token_travels_the_ring(self, table1_small):
        protocol = run_nash_protocol(table1_small)
        m = table1_small.n_users
        hops = [
            (msg.sender, msg.receiver)
            for msg in protocol.transcript
            if msg.kind is MessageKind.TOKEN
        ]
        for sender, receiver in hops:
            assert receiver == (sender + 1) % m

    def test_norm_nonincreasing_tail(self, table1_small):
        protocol = run_nash_protocol(table1_small, tolerance=1e-8)
        norms = protocol.result.norm_history
        # After the initial transient the norm decays monotonically.
        tail = norms[2:]
        assert np.all(np.diff(tail) <= 1e-12)

    def test_sweep_budget(self, table1_small):
        protocol = run_nash_protocol(
            table1_small, tolerance=1e-15, max_sweeps=4
        )
        assert not protocol.result.converged
        assert protocol.result.iterations == 4

    def test_single_user_protocol(self):
        system = paper_table1_system(utilization=0.4, n_users=1)
        protocol = run_nash_protocol(system)
        assert protocol.result.converged
        protocol.result.profile.validate(system)

    def test_two_user_protocol(self):
        system = paper_table1_system(utilization=0.5, n_users=2)
        protocol = run_nash_protocol(system, tolerance=1e-8)
        assert protocol.result.converged
        assert is_nash_equilibrium(
            system, protocol.result.profile, tol=1e-4
        )

    def test_transcript_disabled(self, table1_small):
        protocol = run_nash_protocol(table1_small, record_transcript=False)
        assert protocol.transcript == ()
        assert protocol.messages_sent > 0
