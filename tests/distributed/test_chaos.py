"""Crash-fault tolerance tests: detection, recovery, degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.degradation import CapacityExhausted, degraded_equilibrium
from repro.core.nash import compute_nash_equilibrium
from repro.distributed.chaos import (
    CrashyMessageBus,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    run_nash_protocol_resilient,
)
from repro.distributed.checkpoint import CheckpointStore
from repro.distributed.failure_detector import (
    ExponentialBackoff,
    HeartbeatFailureDetector,
)
from repro.distributed.messages import Message, MessageKind
from repro.distributed.runtime import run_nash_protocol
from repro.workloads.configs import paper_table1_system


def token(sender, receiver, sweep=1):
    return Message(
        kind=MessageKind.TOKEN, sender=sender, receiver=receiver, sweep=sweep
    )


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=4)


class TestFaultSchedule:
    def test_events_sorted_and_queryable(self):
        schedule = FaultSchedule(
            [
                FaultEvent(20, FaultKind.AGENT_RESTART, 1),
                FaultEvent(5, FaultKind.AGENT_CRASH, 1),
                FaultEvent(5, FaultKind.COMPUTER_DOWN, 3),
            ]
        )
        assert schedule.n_events == 3
        assert schedule.max_step == 20
        assert len(schedule.events_at(5)) == 2
        assert schedule.events_at(7) == ()
        assert schedule.pending_restart(1, 5)
        assert not schedule.pending_restart(1, 20)

    def test_rejects_double_crash(self):
        with pytest.raises(ValueError, match="already down"):
            FaultSchedule(
                [
                    FaultEvent(5, FaultKind.AGENT_CRASH, 1),
                    FaultEvent(8, FaultKind.AGENT_CRASH, 1),
                ]
            )

    def test_rejects_restart_of_running_agent(self):
        with pytest.raises(ValueError, match="while running"):
            FaultSchedule([FaultEvent(5, FaultKind.AGENT_RESTART, 0)])

    def test_rejects_computer_toggle_mismatch(self):
        with pytest.raises(ValueError, match="restored while online"):
            FaultSchedule([FaultEvent(5, FaultKind.COMPUTER_UP, 0)])
        with pytest.raises(ValueError, match="already down"):
            FaultSchedule(
                [
                    FaultEvent(3, FaultKind.COMPUTER_DOWN, 2),
                    FaultEvent(9, FaultKind.COMPUTER_DOWN, 2),
                ]
            )

    def test_event_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultEvent(0, FaultKind.AGENT_CRASH, 1)
        with pytest.raises(ValueError, match="nonnegative"):
            FaultEvent(3, FaultKind.AGENT_CRASH, -1)

    def test_random_schedule_is_valid_and_reproducible(self):
        kwargs = dict(
            n_agents=4,
            seed=9,
            horizon=120,
            agent_crashes=2,
            computer_failures=1,
            computer_targets=(5, 6, 7),
        )
        a = FaultSchedule.random(**kwargs)
        b = FaultSchedule.random(**kwargs)
        assert a.events == b.events
        kinds = [event.kind for event in a.events]
        assert kinds.count(FaultKind.AGENT_CRASH) == 2
        assert kinds.count(FaultKind.AGENT_RESTART) == 2
        assert kinds.count(FaultKind.COMPUTER_DOWN) == 1
        down = [
            event for event in a.events
            if event.kind is FaultKind.COMPUTER_DOWN
        ]
        assert down[0].target in (5, 6, 7)


class TestCrashyMessageBus:
    def test_dead_rank_loses_mailbox_and_messages(self):
        bus = CrashyMessageBus(3)
        bus.send(token(0, 1))
        assert bus.mark_dead(1) == 1
        assert not bus.has_pending(1)
        bus.send(token(0, 1, sweep=2))
        assert bus.lost_to_crash == 1
        assert not bus.has_pending(1)
        bus.mark_alive(1)
        bus.send(token(0, 1, sweep=3))
        assert bus.has_pending(1)

    def test_is_dead(self):
        bus = CrashyMessageBus(2)
        assert not bus.is_dead(1)
        bus.mark_dead(1)
        assert bus.is_dead(1)


class TestFailureDetector:
    def test_suspects_after_silence(self):
        detector = HeartbeatFailureDetector(suspect_after=2)
        detector.beat(0, 0)
        detector.beat(1, 0)
        assert detector.check(2) == frozenset()
        assert detector.check(3) == frozenset({0, 1})
        assert detector.suspicions == 2

    def test_heartbeat_clears_suspicion(self):
        detector = HeartbeatFailureDetector(suspect_after=1)
        detector.beat(0, 0)
        detector.check(5)
        assert detector.is_suspected(0)
        detector.beat(0, 6)
        assert not detector.is_suspected(0)
        # Re-suspecting later counts as a new suspicion event.
        detector.check(20)
        assert detector.suspicions == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(suspect_after=0)


class TestExponentialBackoff:
    def test_doubles_to_cap(self):
        backoff = ExponentialBackoff(base=2, cap=12)
        assert [backoff.advance() for _ in range(4)] == [2, 4, 8, 12]
        backoff.reset()
        assert backoff.current == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=0)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=4, cap=2)


class TestCheckpointStore:
    def test_capture_restore_round_trip(self, system):
        # Run the reliable protocol halfway by hand to get real agents.
        from repro.distributed.chaos import ResilientAgent
        from repro.distributed.node import ComputerBoard

        board = ComputerBoard(system.service_rates, system.n_users)
        bus = CrashyMessageBus(system.n_users)
        agents = [
            ResilientAgent(
                rank=j,
                job_rate=float(system.arrival_rates[j]),
                board=board,
                bus=bus,
                tolerance=1e-6,
                max_sweeps=100,
            )
            for j in range(system.n_users)
        ]
        agents[0].start()
        for _ in range(10):
            for rank in bus.pending_ranks():
                agents[rank].handle(bus.recv(rank))
        store = CheckpointStore()
        agent = agents[2]
        snapshot = store.capture(agent, board, step=10)
        saved_flows = board.flows[2].copy()
        saved_time = agent._previous_time
        saved_sweep = agent._last_acted_sweep
        # Simulate a crash: trash the volatile state.
        agent._previous_time = -1.0
        agent._last_acted_sweep = 999
        board.publish(2, np.zeros(system.n_computers))
        restored = store.restore(agent, board)
        assert restored is snapshot
        assert agent._previous_time == saved_time
        assert agent._last_acted_sweep == saved_sweep
        np.testing.assert_array_equal(board.flows[2], saved_flows)
        assert store.captures == 1 and store.restores == 1

    def test_stale_generation_clears_termination_flags(self, system):
        from repro.distributed.chaos import ResilientAgent
        from repro.distributed.node import ComputerBoard

        board = ComputerBoard(system.service_rates, system.n_users)
        bus = CrashyMessageBus(system.n_users)
        agent = ResilientAgent(
            rank=1,
            job_rate=float(system.arrival_rates[1]),
            board=board,
            bus=bus,
            tolerance=1e-6,
            max_sweeps=100,
        )
        agent.finished = True
        agent._terminated = True
        store = CheckpointStore()
        store.capture(agent, board, step=5, generation=0)
        # Same generation: flags survive the restore.
        store.restore(agent, board, generation=0)
        assert agent.finished and agent._terminated
        # The ring was reopened since the snapshot: flags are stale.
        store.restore(agent, board, generation=1)
        assert not agent.finished and not agent._terminated


class TestResilientProtocol:
    def test_no_faults_matches_reliable_protocol(self, system):
        resilient = run_nash_protocol_resilient(system, tolerance=1e-8)
        reliable = run_nash_protocol(system, tolerance=1e-8)
        assert resilient.result.converged
        assert resilient.crashes == 0 and resilient.degraded is False
        np.testing.assert_allclose(
            resilient.result.profile.fractions,
            reliable.result.profile.fractions,
            atol=1e-12,
        )

    def test_acceptance_chaos_run(self, system):
        """ISSUE acceptance: crash an agent mid-run AND take a computer
        offline; the run must terminate with the degraded equilibrium."""
        schedule = FaultSchedule(
            [
                FaultEvent(10, FaultKind.AGENT_CRASH, 2),
                FaultEvent(14, FaultKind.COMPUTER_DOWN, 4),
                FaultEvent(26, FaultKind.AGENT_RESTART, 2),
            ]
        )
        outcome = run_nash_protocol_resilient(
            system,
            schedule,
            drop=0.15,
            duplicate=0.05,
            fault_seed=2,
            tolerance=1e-8,
        )
        assert outcome.result.converged
        assert outcome.crashes == 1 and outcome.restarts == 1
        assert outcome.checkpoint_restores == 1
        assert outcome.computers_failed == (4,)
        assert outcome.degraded
        assert outcome.online_mask[4] is False
        reference = degraded_equilibrium(
            system, outcome.online_mask, tolerance=1e-8
        )
        gap = np.abs(
            outcome.result.profile.fractions - reference.profile.fractions
        ).max()
        assert gap <= 1e-6
        # Nothing still routes to the dead computer.
        assert np.all(outcome.result.profile.fractions[:, 4] == 0.0)

    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_seeded_chaos_schedules(self, system, fault_seed):
        clean = run_nash_protocol_resilient(system, tolerance=1e-8)
        schedule = FaultSchedule.random(
            n_agents=system.n_users,
            seed=fault_seed,
            horizon=max(clean.steps, 48),
            agent_crashes=1,
            computer_failures=1,
            computer_targets=tuple(range(2, system.n_computers)),
        )
        outcome = run_nash_protocol_resilient(
            system,
            schedule,
            drop=0.1,
            duplicate=0.05,
            fault_seed=fault_seed,
            tolerance=1e-8,
        )
        assert outcome.result.converged
        reference = degraded_equilibrium(
            system, outcome.online_mask, tolerance=1e-8
        )
        gap = np.abs(
            outcome.result.profile.fractions - reference.profile.fractions
        ).max()
        assert gap <= 1e-6

    def test_capacity_exhausted_raises_not_hangs(self, system):
        schedule = FaultSchedule(
            [
                FaultEvent(5, FaultKind.COMPUTER_DOWN, 0),
                FaultEvent(8, FaultKind.COMPUTER_DOWN, 1),
                FaultEvent(11, FaultKind.COMPUTER_DOWN, 2),
            ]
        )
        with pytest.raises(CapacityExhausted) as excinfo:
            run_nash_protocol_resilient(system, schedule)
        assert excinfo.value.deficit > 0
        assert excinfo.value.offline == (0, 1, 2)

    def test_transient_outage_returns_to_full_equilibrium(self, system):
        schedule = FaultSchedule(
            [
                FaultEvent(8, FaultKind.COMPUTER_DOWN, 0),
                FaultEvent(24, FaultKind.COMPUTER_UP, 0),
            ]
        )
        outcome = run_nash_protocol_resilient(system, schedule, tolerance=1e-8)
        assert outcome.result.converged
        assert not outcome.degraded
        assert outcome.computers_restored == (0,)
        full = compute_nash_equilibrium(system, tolerance=1e-8)
        np.testing.assert_allclose(
            outcome.result.profile.fractions,
            full.profile.fractions,
            atol=1e-5,
        )

    def test_failure_during_terminate_wave_reopens_ring(self, system):
        clean = run_nash_protocol_resilient(system, tolerance=1e-8)
        # Strike while TERMINATE is circulating (the last few steps).
        schedule = FaultSchedule(
            [FaultEvent(clean.steps - 1, FaultKind.COMPUTER_DOWN, 5)]
        )
        outcome = run_nash_protocol_resilient(system, schedule, tolerance=1e-8)
        assert outcome.ring_reopens == 1
        assert outcome.result.converged
        reference = degraded_equilibrium(
            system, outcome.online_mask, tolerance=1e-8
        )
        gap = np.abs(
            outcome.result.profile.fractions - reference.profile.fractions
        ).max()
        assert gap <= 1e-6

    def test_deterministic_replay(self, system):
        schedule = FaultSchedule(
            [
                FaultEvent(9, FaultKind.AGENT_CRASH, 1),
                FaultEvent(22, FaultKind.AGENT_RESTART, 1),
            ]
        )
        a = run_nash_protocol_resilient(
            system, schedule, drop=0.2, fault_seed=4
        )
        b = run_nash_protocol_resilient(
            system, schedule, drop=0.2, fault_seed=4
        )
        assert a.steps == b.steps
        assert a.messages_sent == b.messages_sent
        assert a.retransmissions == b.retransmissions
        np.testing.assert_array_equal(
            a.result.profile.fractions, b.result.profile.fractions
        )

    def test_unrecoverable_crash_raises(self, system):
        # Crash with no scheduled restart: the ring must give up loudly.
        schedule = FaultSchedule([FaultEvent(10, FaultKind.AGENT_CRASH, 2)])
        with pytest.raises(RuntimeError, match="cannot recover"):
            run_nash_protocol_resilient(system, schedule)

    def test_suspicion_and_loss_accounting(self, system):
        schedule = FaultSchedule(
            [
                FaultEvent(10, FaultKind.AGENT_CRASH, 1),
                FaultEvent(30, FaultKind.AGENT_RESTART, 1),
            ]
        )
        outcome = run_nash_protocol_resilient(
            system, schedule, tolerance=1e-8, suspect_after=3
        )
        assert outcome.suspicions >= 1
        assert outcome.messages_lost_to_crash >= 1
        assert outcome.checkpoint_captures > 0
        assert outcome.events_applied == 2
        assert outcome.events_unapplied == 0

    def test_surviving_fractions_shape(self, system):
        schedule = FaultSchedule([FaultEvent(12, FaultKind.COMPUTER_DOWN, 6)])
        outcome = run_nash_protocol_resilient(system, schedule, tolerance=1e-8)
        sub = outcome.surviving_fractions()
        assert sub.shape == (system.n_users, system.n_computers - 1)
        np.testing.assert_allclose(sub.sum(axis=1), 1.0, atol=1e-9)
