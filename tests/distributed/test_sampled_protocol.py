"""The sampled (power-of-k) ring protocol vs its full-information twin.

The message-economics contract is the load-bearing one: every
availability probe is a message, the per-circulation poll cost rides the
token, and the trace alone must reconstruct the driver's honest
``messages_sent`` (``protocol_summary``'s per-kind delivery sum).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nash import NashSolver
from repro.distributed.runtime import run_nash_protocol
from repro.distributed.sampled import run_sampled_nash_protocol
from repro.telemetry.analysis import protocol_summary, solver_summary
from repro.telemetry.sinks import InMemorySink
from repro.telemetry.trace import Tracer
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=4)


class TestFullInformationParity:
    def test_k_equal_n_matches_base_protocol(self, system):
        n = system.n_computers
        base = run_nash_protocol(system)
        sampled = run_sampled_nash_protocol(system, sample_k=n)
        np.testing.assert_array_equal(
            sampled.result.profile.fractions, base.result.profile.fractions
        )
        np.testing.assert_array_equal(
            sampled.result.norm_history, base.result.norm_history
        )
        assert sampled.bus_messages == base.messages_sent
        # Full information honestly pays n polls per update.
        assert sampled.polls == sampled.result.iterations * system.n_users * n
        assert sampled.messages_sent == sampled.bus_messages + sampled.polls

    def test_matches_sequential_sampled_solver(self, system):
        sequential = NashSolver(seed=0, sample_k=2).solve(system)
        protocol = run_sampled_nash_protocol(system, sample_k=2, seed=0)
        assert protocol.result.iterations == sequential.iterations
        np.testing.assert_allclose(
            protocol.result.profile.fractions,
            sequential.profile.fractions,
            atol=1e-10,
        )


class TestSampledRun:
    def test_converges_and_certifies(self, system):
        outcome = run_sampled_nash_protocol(system, sample_k=2)
        assert outcome.result.converged
        assert outcome.epsilon < 1e-4
        certificate = outcome.result.sample
        assert certificate is not None
        assert certificate.k == 2 and not certificate.full_information

    def test_zero_init_widens(self, system):
        outcome = run_sampled_nash_protocol(system, sample_k=2, init="zero")
        assert outcome.result.converged
        # Cold-start widening pays extra polls beyond k per update.
        assert outcome.polls > outcome.result.iterations * system.n_users * 2

    def test_message_reduction_per_sweep(self, system):
        n = system.n_computers
        sampled = run_sampled_nash_protocol(system, sample_k=2)
        baseline = run_sampled_nash_protocol(system, sample_k=n)
        per_sweep = sampled.messages_sent / sampled.result.iterations
        baseline_per_sweep = baseline.messages_sent / baseline.result.iterations
        assert baseline_per_sweep / per_sweep > 3.0

    def test_rejects_bad_k(self, system):
        with pytest.raises(ValueError):
            run_sampled_nash_protocol(system, sample_k=0)


class TestSampledTelemetry:
    def test_trace_reconstructs_messages_sent(self, system):
        sink = InMemorySink()
        outcome = run_sampled_nash_protocol(
            system, sample_k=2, tracer=Tracer(sink)
        )
        summary = protocol_summary(sink.events)
        # The per-kind delivery sum (token/terminate deliveries plus the
        # probe polls folded in from protocol.sample) equals the
        # driver's honest total.
        assert summary["messages_delivered"] == outcome.messages_sent
        assert summary["messages_by_kind"]["probe"] == outcome.polls
        assert (
            summary["messages_by_kind"]["token"]
            + summary["messages_by_kind"]["terminate"]
            == outcome.bus_messages
        )

    def test_sample_events_cover_every_circulation(self, system):
        sink = InMemorySink()
        outcome = run_sampled_nash_protocol(
            system, sample_k=3, tracer=Tracer(sink)
        )
        samples = [e for e in sink.events if e.name == "protocol.sample"]
        assert len(samples) == outcome.result.iterations
        assert sum(e.fields["polls"] for e in samples) == outcome.polls
        norms = [e.fields["norm"] for e in samples]
        assert norms == list(outcome.result.norm_history)
        assert all(e.fields["k"] == 3 for e in samples)

    def test_solver_summary_exposes_sample_certificate(self, system):
        sink = InMemorySink()
        NashSolver(seed=0, sample_k=2).solve(system, tracer=Tracer(sink))
        summary = solver_summary(sink.events)
        sample = summary["sample"]
        assert sample is not None
        assert sample["k"] == 2
        assert sample["polls"] > 0
