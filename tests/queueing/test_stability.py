"""Unit tests for stability checks (paper Sec. 2, constraint iii)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing.stability import (
    assert_loads_stable,
    assert_system_stable,
    max_stable_total_rate,
    stability_margin,
)


class TestSystemStability:
    def test_accepts_stable(self):
        assert_system_stable([5.0, 5.0], [3.0, 3.0])

    def test_rejects_critical(self):
        with pytest.raises(ValueError):
            assert_system_stable([5.0], [5.0])

    def test_rejects_overloaded(self):
        with pytest.raises(ValueError, match="aggregate"):
            assert_system_stable([5.0], [6.0])


class TestLoadStability:
    def test_accepts_subcritical(self):
        assert_loads_stable([1.0, 2.0], [5.0, 5.0])

    def test_rejects_saturated(self):
        with pytest.raises(ValueError, match="unstable"):
            assert_loads_stable([5.0, 1.0], [5.0, 5.0])

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError, match="negative"):
            assert_loads_stable([-0.1, 1.0], [5.0, 5.0])

    def test_boundary_slack_tolerated(self):
        # Tiny negative round-off must not trip the check.
        assert_loads_stable([-1e-15, 1.0], [5.0, 5.0])

    def test_reports_worst_computer(self):
        with pytest.raises(ValueError, match="computer 1"):
            assert_loads_stable([1.0, 4.9999999999], [5.0, 5.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            assert_loads_stable([1.0], [5.0, 5.0])


class TestMargins:
    def test_margin_value(self):
        margin = stability_margin([1.0, 4.0], [2.0, 5.0])
        assert margin == pytest.approx(0.2)  # computer 1: (5-4)/5

    def test_margin_negative_when_overloaded(self):
        assert stability_margin([6.0], [5.0]) < 0.0

    def test_max_stable_total_rate(self):
        assert max_stable_total_rate([3.0, 7.0]) == pytest.approx(10.0)
        assert max_stable_total_rate([3.0, 7.0], margin=0.1) == pytest.approx(9.0)

    def test_max_stable_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            max_stable_total_rate([1.0], margin=1.0)
