"""Unit tests for M/M/1 analytics (paper eq. 1 and Sec. 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import mm1


class TestUtilization:
    def test_scalar(self):
        assert mm1.utilization(2.0, 4.0) == pytest.approx(0.5)

    def test_vectorized(self):
        rho = mm1.utilization([1.0, 2.0], [4.0, 4.0])
        np.testing.assert_allclose(rho, [0.25, 0.5])

    def test_rejects_zero_service(self):
        with pytest.raises(ValueError):
            mm1.utilization(1.0, 0.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            mm1.utilization(-1.0, 1.0)


class TestStability:
    def test_stable(self):
        assert mm1.is_stable(3.0, 4.0) is True

    def test_unstable(self):
        assert mm1.is_stable(4.0, 4.0) is False

    def test_vector(self):
        np.testing.assert_array_equal(
            mm1.is_stable([1.0, 5.0], [4.0, 4.0]), [True, False]
        )


class TestMeans:
    def test_response_time(self):
        assert mm1.expected_response_time(3.0, 4.0) == pytest.approx(1.0)

    def test_response_time_idle_server(self):
        assert mm1.expected_response_time(0.0, 4.0) == pytest.approx(0.25)

    def test_response_time_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            mm1.expected_response_time(4.0, 4.0)

    def test_waiting_plus_service_is_response(self):
        lam, mu = 2.0, 5.0
        w = mm1.expected_waiting_time(lam, mu)
        assert w + 1.0 / mu == pytest.approx(
            mm1.expected_response_time(lam, mu)
        )

    def test_littles_law_system(self):
        lam, mu = 3.0, 7.0
        left = mm1.expected_number_in_system(lam, mu)
        right = lam * mm1.expected_response_time(lam, mu)
        assert left == pytest.approx(right)

    def test_littles_law_queue(self):
        lam, mu = 3.0, 7.0
        left = mm1.expected_number_in_queue(lam, mu)
        right = lam * mm1.expected_waiting_time(lam, mu)
        assert left == pytest.approx(right)

    def test_number_in_system_blows_up_near_saturation(self):
        low = mm1.expected_number_in_system(0.5, 1.0)
        high = mm1.expected_number_in_system(0.99, 1.0)
        assert high > 50 * low

    def test_unstable_number_rejected(self):
        with pytest.raises(ValueError):
            mm1.expected_number_in_system(1.0, 1.0)
        with pytest.raises(ValueError):
            mm1.expected_number_in_queue(2.0, 1.0)


class TestDistribution:
    def test_cdf_at_zero(self):
        assert mm1.response_time_cdf(0.0, 1.0, 3.0) == pytest.approx(0.0)

    def test_cdf_monotone(self):
        ts = np.linspace(0.0, 5.0, 50)
        cdf = mm1.response_time_cdf(ts, 1.0, 3.0)
        assert np.all(np.diff(cdf) > 0.0)
        assert cdf[-1] < 1.0

    def test_cdf_rejects_negative_time(self):
        with pytest.raises(ValueError):
            mm1.response_time_cdf(-1.0, 1.0, 3.0)

    def test_quantile_inverts_cdf(self):
        q = 0.9
        t = mm1.response_time_quantile(q, 2.0, 5.0)
        assert mm1.response_time_cdf(t, 2.0, 5.0) == pytest.approx(q)

    def test_median_smaller_than_mean(self):
        # Exponential distributions are right-skewed.
        median = mm1.response_time_quantile(0.5, 2.0, 5.0)
        mean = mm1.expected_response_time(2.0, 5.0)
        assert median < mean

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            mm1.response_time_quantile(1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            mm1.response_time_quantile(-0.1, 1.0, 2.0)


class TestDelayFunctions:
    def test_total_delay(self):
        assert mm1.total_delay(3.0, 4.0) == pytest.approx(3.0)

    def test_marginal_delay_is_derivative(self):
        lam, mu, h = 2.0, 6.0, 1e-6
        numeric = (mm1.total_delay(lam + h, mu) - mm1.total_delay(lam - h, mu)) / (
            2 * h
        )
        assert mm1.marginal_delay(lam, mu) == pytest.approx(numeric, rel=1e-5)

    def test_marginal_delay_increasing_in_load(self):
        loads = np.linspace(0.0, 0.9, 10)
        marginals = mm1.marginal_delay(loads, 1.0)
        assert np.all(np.diff(marginals) > 0.0)

    @given(
        st.floats(0.01, 50.0),
        st.floats(0.0, 0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_response_time_scaling_invariance(self, mu, rho):
        """T(c*lambda, c*mu) = T(lambda, mu)/c for any speedup c."""
        lam = rho * mu
        base = mm1.expected_response_time(lam, mu)
        scaled = mm1.expected_response_time(3.0 * lam, 3.0 * mu)
        assert scaled == pytest.approx(base / 3.0, rel=1e-9)
