"""Tests for the M/G/1 Pollaczek-Khinchine analytics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing.mg1 import (
    expected_number_in_system_mg1,
    expected_response_time_mg1,
    expected_waiting_time_mg1,
)
from repro.queueing.mm1 import expected_response_time, expected_waiting_time


class TestPollaczekKhinchine:
    def test_scv_one_is_mm1(self):
        assert expected_response_time_mg1(3.0, 5.0, scv=1.0) == pytest.approx(
            expected_response_time(3.0, 5.0)
        )
        assert expected_waiting_time_mg1(3.0, 5.0, scv=1.0) == pytest.approx(
            expected_waiting_time(3.0, 5.0)
        )

    def test_md1_halves_the_wait(self):
        """The classic M/D/1 result: half the M/M/1 queueing delay."""
        mm1_wait = expected_waiting_time(3.0, 5.0)
        md1_wait = expected_waiting_time_mg1(3.0, 5.0, scv=0.0)
        assert md1_wait == pytest.approx(mm1_wait / 2.0)

    def test_wait_linear_in_scv(self):
        waits = [
            expected_waiting_time_mg1(2.0, 4.0, scv=c2) for c2 in (0.0, 1.0, 2.0)
        ]
        assert waits[1] - waits[0] == pytest.approx(waits[2] - waits[1])

    def test_response_is_service_plus_wait(self):
        t = expected_response_time_mg1(2.0, 4.0, scv=3.0)
        w = expected_waiting_time_mg1(2.0, 4.0, scv=3.0)
        assert t == pytest.approx(0.25 + w)

    def test_littles_law(self):
        lam, mu, c2 = 3.0, 7.0, 2.5
        left = expected_number_in_system_mg1(lam, mu, c2)
        right = lam * expected_response_time_mg1(lam, mu, c2)
        assert left == pytest.approx(right)

    def test_idle_server_any_scv(self):
        assert expected_response_time_mg1(0.0, 4.0, scv=9.0) == pytest.approx(
            0.25
        )

    def test_vectorized(self):
        t = expected_response_time_mg1([1.0, 2.0], [4.0, 4.0], scv=0.0)
        assert t.shape == (2,)
        assert t[0] < t[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_response_time_mg1(4.0, 4.0)
        with pytest.raises(ValueError):
            expected_response_time_mg1(1.0, -1.0)
        with pytest.raises(ValueError):
            expected_response_time_mg1(1.0, 2.0, scv=-0.5)
        with pytest.raises(ValueError):
            expected_response_time_mg1(-1.0, 2.0)
