"""Unit tests for the performance metrics (paper Sec. 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.metrics import (
    fairness_index,
    overall_response_time,
    price_of_anarchy,
    relative_gap,
    speedup,
    sweep_norm,
)


class TestFairnessIndex:
    def test_equal_times_is_one(self):
        assert fairness_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_single_user_is_one(self):
        assert fairness_index([3.0]) == pytest.approx(1.0)

    def test_fully_concentrated_is_one_over_m(self):
        assert fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
        assert fairness_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)

    def test_scale_invariance(self):
        values = [0.2, 0.9, 0.4]
        assert fairness_index(values) == pytest.approx(
            fairness_index([10 * v for v in values])
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fairness_index([1.0, -0.1])

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            fairness_index([])
        with pytest.raises(ValueError):
            fairness_index([[1.0, 2.0]])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            fairness_index([0.0, 0.0])

    @given(
        st.lists(st.floats(0.001, 100.0), min_size=1, max_size=20)
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_generic(self, values):
        index = fairness_index(values)
        m = len(values)
        assert 1.0 / m - 1e-12 <= index <= 1.0 + 1e-12

    @given(
        st.lists(st.floats(0.01, 10.0), min_size=2, max_size=10),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_mixing_toward_mean_never_decreases(self, values, blend):
        """Moving every value toward the mean is majorization-fairer."""
        x = np.asarray(values)
        mixed = (1 - blend) * x + blend * x.mean()
        assert fairness_index(mixed) >= fairness_index(x) - 1e-9


class TestOverallResponseTime:
    def test_uniform_weights_give_mean(self):
        assert overall_response_time([1.0, 3.0], [2.0, 2.0]) == pytest.approx(2.0)

    def test_weighting(self):
        # Heavier user dominates.
        value = overall_response_time([1.0, 3.0], [9.0, 1.0])
        assert value == pytest.approx(0.9 * 1.0 + 0.1 * 3.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            overall_response_time([1.0], [1.0, 2.0])

    def test_zero_total_rate(self):
        with pytest.raises(ValueError):
            overall_response_time([1.0], [0.0])


class TestRatios:
    def test_price_of_anarchy(self):
        assert price_of_anarchy(1.2, 1.0) == pytest.approx(1.2)

    def test_price_of_anarchy_bad_inputs(self):
        with pytest.raises(ValueError):
            price_of_anarchy(1.0, 0.0)
        with pytest.raises(ValueError):
            price_of_anarchy(-1.0, 1.0)

    def test_speedup(self):
        assert speedup(4.0, 2.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_relative_gap(self):
        assert relative_gap(1.07, 1.0) == pytest.approx(0.07)
        assert relative_gap(0.7, 1.0) == pytest.approx(-0.3)
        with pytest.raises(ValueError):
            relative_gap(1.0, 0.0)


class TestSweepNorm:
    def test_zero_for_identical(self):
        assert sweep_norm([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_accumulates_absolute_changes(self):
        assert sweep_norm([1.0, 2.0], [1.5, 1.0]) == pytest.approx(1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sweep_norm([1.0], [1.0, 2.0])

    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=8),
        st.lists(st.floats(-10, 10), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetry_generic(self, a, b):
        n = min(len(a), len(b))
        x, y = a[:n], b[:n]
        assert sweep_norm(x, y) == pytest.approx(sweep_norm(y, x))
