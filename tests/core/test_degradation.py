"""Tests for graceful degradation onto a surviving computer set."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.degradation import (
    CapacityExhausted,
    degraded_equilibrium,
    embed_profile,
    project_profile,
    surviving_subsystem,
)
from repro.core.nash import compute_nash_equilibrium
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=4)


class TestSurvivingSubsystem:
    def test_subsets_computers(self, system):
        mask = np.ones(system.n_computers, dtype=bool)
        mask[[3, 7]] = False
        sub = surviving_subsystem(system, mask)
        assert sub.n_computers == system.n_computers - 2
        np.testing.assert_array_equal(
            sub.service_rates, system.service_rates[mask]
        )
        np.testing.assert_array_equal(
            sub.arrival_rates, system.arrival_rates
        )

    def test_full_mask_is_identity(self, system):
        sub = surviving_subsystem(
            system, np.ones(system.n_computers, dtype=bool)
        )
        np.testing.assert_array_equal(
            sub.service_rates, system.service_rates
        )

    def test_infeasible_raises_with_diagnostics(self, system):
        # Killing both 100 jobs/s computers and a 50 leaves 260 < 306.
        mask = np.ones(system.n_computers, dtype=bool)
        mask[[0, 1, 2]] = False
        with pytest.raises(CapacityExhausted) as excinfo:
            surviving_subsystem(system, mask)
        exc = excinfo.value
        assert exc.total_arrival_rate == pytest.approx(306.0)
        assert exc.surviving_capacity == pytest.approx(260.0)
        assert exc.deficit == pytest.approx(46.0)
        assert exc.offline == (0, 1, 2)
        assert "deficit" in str(exc)

    def test_no_survivors_raises(self, system):
        with pytest.raises(CapacityExhausted):
            surviving_subsystem(
                system, np.zeros(system.n_computers, dtype=bool)
            )

    def test_wrong_mask_shape_rejected(self, system):
        with pytest.raises(ValueError, match="one entry per computer"):
            surviving_subsystem(system, [True, False])


class TestProjectProfile:
    def test_preserves_row_totals(self, system):
        eq = compute_nash_equilibrium(system)
        mask = np.ones(system.n_computers, dtype=bool)
        mask[5] = False
        projected = project_profile(eq.profile.fractions, mask)
        np.testing.assert_allclose(projected.sum(axis=1), 1.0)
        assert np.all(projected[:, 5] == 0.0)

    def test_flows_space_preserves_phi(self, system):
        eq = compute_nash_equilibrium(system)
        flows = eq.profile.fractions * system.arrival_rates[:, None]
        mask = np.ones(system.n_computers, dtype=bool)
        mask[[0, 8]] = False
        projected = project_profile(flows, mask)
        np.testing.assert_allclose(
            projected.sum(axis=1), system.arrival_rates
        )

    def test_stranded_row_uses_fallback_rates(self):
        # All of user 0's mass sits on the (dying) first computer.
        matrix = np.array([[1.0, 0.0, 0.0], [0.0, 0.5, 0.5]])
        mask = np.array([False, True, True])
        projected = project_profile(
            matrix, mask, fallback_rates=[10.0, 30.0, 10.0]
        )
        np.testing.assert_allclose(projected[0], [0.0, 0.75, 0.25])
        np.testing.assert_allclose(projected[1], [0.0, 0.5, 0.5])

    def test_stranded_row_uniform_without_fallback(self):
        matrix = np.array([[1.0, 0.0, 0.0]])
        mask = np.array([False, True, True])
        projected = project_profile(matrix, mask)
        np.testing.assert_allclose(projected[0], [0.0, 0.5, 0.5])

    def test_zero_row_stays_zero(self):
        # An all-zero row is NASH_0's "not yet allocated", not stranded.
        matrix = np.zeros((1, 3))
        mask = np.array([True, True, False])
        np.testing.assert_array_equal(
            project_profile(matrix, mask), np.zeros((1, 3))
        )

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError, match="empty computer set"):
            project_profile(np.ones((1, 2)), [False, False])


class TestEmbedProfile:
    def test_round_trip(self):
        sub = np.array([[0.25, 0.75], [0.5, 0.5]])
        mask = np.array([True, False, True])
        full = embed_profile(sub, mask)
        assert full.shape == (2, 3)
        np.testing.assert_array_equal(full[:, 1], 0.0)
        np.testing.assert_array_equal(full[:, [0, 2]], sub)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            embed_profile(np.ones((1, 3)), [True, False, True])


class TestDegradedEquilibrium:
    def test_matches_subsystem_solve(self, system):
        mask = np.ones(system.n_computers, dtype=bool)
        mask[[2, 10]] = False
        result = degraded_equilibrium(system, mask, tolerance=1e-8)
        sub = surviving_subsystem(system, mask)
        direct = compute_nash_equilibrium(sub, tolerance=1e-8)
        assert result.converged
        np.testing.assert_allclose(
            result.profile.fractions[:, mask],
            direct.profile.fractions,
            atol=1e-12,
        )
        assert np.all(result.profile.fractions[:, ~mask] == 0.0)

    def test_full_mask_matches_full_solve(self, system):
        mask = np.ones(system.n_computers, dtype=bool)
        result = degraded_equilibrium(system, mask, tolerance=1e-8)
        full = compute_nash_equilibrium(system, tolerance=1e-8)
        np.testing.assert_allclose(
            result.profile.fractions, full.profile.fractions, atol=1e-12
        )

    def test_infeasible_mask_raises(self, system):
        mask = np.ones(system.n_computers, dtype=bool)
        mask[[0, 1, 2]] = False
        with pytest.raises(CapacityExhausted):
            degraded_equilibrium(system, mask)
