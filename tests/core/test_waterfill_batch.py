"""Parity tests for the batched water-fill and best-response kernels.

The batch kernels must produce the *same numbers* as looping the scalar
solvers over the rows — loads, thresholds and supports — on randomized
heterogeneous instances, including rows with unavailable computers and
zero demand.  These are the property-style guarantees the vectorized
NASH core rests on (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.best_response import (
    optimal_fractions,
    optimal_fractions_batch,
)
from repro.core.waterfill import (
    InfeasibleDemand,
    sqrt_waterfill,
    sqrt_waterfill_batch,
)


def random_instances(rng, m: int, n: int):
    """Randomized heterogeneous (capacities, demands) with unusable slots."""
    a = rng.uniform(0.5, 60.0, size=(m, n))
    # Knock out a sprinkling of computers per row (nonpositive capacity).
    knockout = rng.random((m, n)) < 0.15
    a[knockout] = rng.choice([-1.0, 0.0], size=int(knockout.sum()))
    capacity = np.where(a > 0.0, a, 0.0).sum(axis=1)
    d = rng.uniform(0.05, 0.9, size=m) * capacity
    return a, d


class TestSqrtWaterfillBatchParity:
    @pytest.mark.parametrize("m,n", [(1, 1), (7, 3), (40, 13), (120, 29)])
    def test_matches_scalar_loop(self, rng, m, n):
        a, d = random_instances(rng, m, n)
        batch = sqrt_waterfill_batch(a, d)
        for j in range(m):
            scalar = sqrt_waterfill(a[j], float(d[j]))
            np.testing.assert_allclose(
                batch.loads[j], scalar.loads, rtol=1e-12, atol=1e-12
            )
            assert batch.thresholds[j] == pytest.approx(
                scalar.threshold, rel=1e-12
            )
            np.testing.assert_array_equal(batch.support(j), scalar.support)

    def test_zero_demand_rows(self, rng):
        a, d = random_instances(rng, 6, 5)
        d[2] = 0.0
        d[4] = 0.0
        batch = sqrt_waterfill_batch(a, d)
        for j in (2, 4):
            assert not batch.loads[j].any()
            assert np.isinf(batch.thresholds[j])
            assert batch.support(j).size == 0
        # The other rows are unaffected by the zero-demand neighbours.
        np.testing.assert_allclose(
            batch.loads[0], sqrt_waterfill(a[0], float(d[0])).loads
        )

    def test_unusable_computers_get_nothing(self, rng):
        a, d = random_instances(rng, 10, 8)
        batch = sqrt_waterfill_batch(a, d)
        assert not batch.loads[a <= 0.0].any()
        assert not batch.support_mask[a <= 0.0].any()

    def test_demands_met_exactly(self, rng):
        a, d = random_instances(rng, 30, 6)
        batch = sqrt_waterfill_batch(a, d)
        np.testing.assert_allclose(batch.loads.sum(axis=1), d, rtol=1e-12)
        assert np.all(batch.loads >= 0.0)


class TestSqrtWaterfillBatchValidation:
    def test_infeasible_row_reports_user(self):
        a = np.array([[4.0, 4.0], [1.0, 1.0]])
        with pytest.raises(InfeasibleDemand) as excinfo:
            sqrt_waterfill_batch(a, [2.0, 5.0])
        err = excinfo.value
        assert err.user == 1
        assert err.demand == pytest.approx(5.0)
        assert err.capacity == pytest.approx(2.0)
        assert "user 1" in str(err)

    def test_infeasible_is_a_value_error(self):
        a = np.array([[1.0, 1.0]])
        with pytest.raises(ValueError):
            sqrt_waterfill_batch(a, [7.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(m, n\) matrix"):
            sqrt_waterfill_batch(np.ones(3), [1.0])
        with pytest.raises(ValueError, match="one entry per capacity row"):
            sqrt_waterfill_batch(np.ones((2, 3)), [1.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            sqrt_waterfill_batch(np.array([[np.inf, 1.0]]), [0.5])
        with pytest.raises(ValueError, match="finite and nonnegative"):
            sqrt_waterfill_batch(np.ones((1, 2)), [-0.5])


class TestInfeasibleDemandScalar:
    def test_scalar_waterfill_raises_typed_error(self):
        with pytest.raises(InfeasibleDemand) as excinfo:
            sqrt_waterfill(np.array([2.0, 3.0]), 10.0)
        err = excinfo.value
        assert err.user is None
        assert err.demand == pytest.approx(10.0)
        assert err.capacity == pytest.approx(5.0)

    def test_optimal_fractions_raises_typed_error(self):
        with pytest.raises(InfeasibleDemand):
            optimal_fractions(np.array([1.0, 1.0]), 3.0)


class TestOptimalFractionsBatchParity:
    def test_matches_scalar_loop(self, rng):
        m, n = 25, 9
        a = rng.uniform(1.0, 80.0, size=(m, n))
        d = rng.uniform(0.1, 0.8, size=m) * a.sum(axis=1)
        batch = optimal_fractions_batch(a, d)
        for j in range(m):
            scalar = optimal_fractions(a[j], float(d[j]))
            np.testing.assert_allclose(
                batch.fractions[j], scalar.fractions, rtol=1e-12, atol=1e-12
            )
            assert batch.expected_response_times[j] == pytest.approx(
                scalar.expected_response_time, rel=1e-12
            )
            assert batch.thresholds[j] == pytest.approx(
                scalar.threshold, rel=1e-12
            )
            np.testing.assert_array_equal(
                np.flatnonzero(batch.support_mask[j]), scalar.support
            )

    def test_fractions_rows_sum_to_one(self, rng):
        a = rng.uniform(1.0, 50.0, size=(12, 5))
        d = 0.4 * a.sum(axis=1)
        batch = optimal_fractions_batch(a, d)
        np.testing.assert_allclose(batch.fractions.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly positive"):
            optimal_fractions_batch(np.ones((2, 3)), [1.0, 0.0])
        with pytest.raises(ValueError, match=r"\(m, n\) matrix"):
            optimal_fractions_batch(np.ones(3), [1.0])
