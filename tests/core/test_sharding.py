"""Tests for the two-level sharded class-space NASH solve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classes import (
    ClassNashSolver,
    aggregate_users,
    class_best_response_regrets,
)
from repro.core.model import DistributedSystem
from repro.core.sharding import partition_classes, solve_sharded
from repro.workloads.configs import random_system


def _many_class_system(
    n_computers: int = 8, n_classes: int = 12, seed: int = 17
) -> DistributedSystem:
    """A system whose users split into ``n_classes`` weighted classes."""
    rng = np.random.default_rng(seed)
    mu = rng.uniform(20.0, 60.0, size=n_computers)
    rates = rng.uniform(0.2, 1.0, size=n_classes)
    counts = rng.integers(1, 5, size=n_classes)
    phi = np.repeat(rates, counts)
    phi *= 0.6 * mu.sum() / phi.sum()
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


class TestPartitionClasses:
    def test_covers_every_class_exactly_once(self):
        agg = aggregate_users(_many_class_system())
        shards = partition_classes(agg, 4)
        assert len(shards) == 4
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(agg.n_classes))

    def test_lpt_balances_demand(self):
        agg = aggregate_users(_many_class_system(n_classes=24))
        shards = partition_classes(agg, 4)
        loads = np.array([agg.demands[s].sum() for s in shards])
        # LPT guarantees no shard exceeds the mean by more than the
        # largest single class demand.
        assert loads.max() - loads.min() <= agg.demands.max() + 1e-9

    def test_more_shards_than_classes(self):
        agg = aggregate_users(_many_class_system(n_classes=3))
        shards = partition_classes(agg, 8)
        assert len(shards) == 3  # capped at one class per shard

    def test_rejects_bad_shard_count(self):
        agg = aggregate_users(_many_class_system())
        with pytest.raises(ValueError):
            partition_classes(agg, 0)


class TestSolveSharded:
    def test_single_shard_matches_plain_class_solve(self):
        agg = aggregate_users(_many_class_system())
        sharded = solve_sharded(agg, n_shards=1, tolerance=1e-8)
        assert sharded.converged
        plain = ClassNashSolver(tolerance=1e-10).solve(agg, "proportional")
        # The equilibrium is unique; near the certificate floor the
        # *delays* agree tightly even where boundary fractions wiggle.
        np.testing.assert_allclose(
            agg.class_times(sharded.class_fractions),
            agg.class_times(plain.class_fractions),
            rtol=1e-4,
        )
        assert class_best_response_regrets(
            agg, plain.class_fractions
        ).is_equilibrium(1e-8)

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_reaches_same_certificate_epsilon(self, n_shards):
        agg = aggregate_users(_many_class_system(n_classes=16, seed=5))
        tolerance = 1e-6
        sharded = solve_sharded(
            agg, n_shards=n_shards, tolerance=tolerance
        )
        assert sharded.converged
        assert sharded.epsilon <= tolerance
        # The certificate the result carries is the real class-space one.
        cert = class_best_response_regrets(agg, sharded.class_fractions)
        np.testing.assert_allclose(cert.epsilon, sharded.epsilon, rtol=1e-9)

    def test_epsilon_history_is_recorded(self):
        agg = aggregate_users(_many_class_system(seed=3))
        result = solve_sharded(agg, n_shards=2, tolerance=1e-6)
        assert result.converged
        assert len(result.epsilon_history) == result.rounds
        assert result.epsilon_history[-1] <= 1e-6

    def test_reconciler_honors_update_order(self):
        # Regression: solve_sharded forwarded ``order=`` into the shard
        # payloads but built the reconciliation ClassNashSolver with the
        # default order, so cross-shard reconciliation silently ignored
        # the caller's choice.  With singleton shards (one class each)
        # the shard-internal solves are order-independent, so *all*
        # order sensitivity lives in the reconciler: a "random"-order
        # run must diverge from "roundrobin", which must match the
        # default-order run bit for bit.
        agg = aggregate_users(_many_class_system(n_classes=12, seed=9))
        kwargs = dict(n_shards=agg.n_classes, tolerance=1e-6, max_rounds=8)
        default = solve_sharded(agg, **kwargs)
        roundrobin = solve_sharded(agg, order="roundrobin", **kwargs)
        randomized = solve_sharded(agg, order="random", seed=123, **kwargs)
        np.testing.assert_array_equal(
            default.class_fractions, roundrobin.class_fractions
        )
        assert not np.array_equal(
            roundrobin.class_fractions, randomized.class_fractions
        )

    def test_pool_matches_serial_bit_for_bit(self):
        # Identical shard maths whether shards run in-process or across
        # a process pool (explicit n_workers=2 so the pool really runs
        # even on single-core CI).
        agg = aggregate_users(_many_class_system(n_classes=10, seed=8))
        serial = solve_sharded(agg, n_shards=2, tolerance=1e-6, n_workers=1)
        pooled = solve_sharded(agg, n_shards=2, tolerance=1e-6, n_workers=2)
        assert serial.rounds == pooled.rounds
        np.testing.assert_array_equal(
            serial.class_fractions, pooled.class_fractions
        )
        np.testing.assert_array_equal(
            np.asarray(serial.epsilon_history),
            np.asarray(pooled.epsilon_history),
        )

    def test_chunksize_is_forwarded(self):
        agg = aggregate_users(_many_class_system(seed=4))
        result = solve_sharded(
            agg, n_shards=2, tolerance=1e-6, n_workers=2, chunksize=2
        )
        assert result.converged
        with pytest.raises(ValueError, match="chunksize"):
            solve_sharded(
                agg, n_shards=2, tolerance=1e-6, n_workers=2, chunksize=0
            )

    def test_expand_produces_user_profile(self):
        system = _many_class_system(seed=12)
        agg = aggregate_users(system)
        result = solve_sharded(agg, n_shards=2, tolerance=1e-6)
        profile = result.expand()
        assert profile.fractions.shape == (system.n_users, system.n_computers)
        np.testing.assert_allclose(
            profile.fractions.sum(axis=1), 1.0, atol=1e-9
        )

    def test_warm_start_init(self):
        agg = aggregate_users(_many_class_system(seed=6))
        cold = solve_sharded(agg, n_shards=2, tolerance=1e-6)
        warm = solve_sharded(
            agg, n_shards=2, tolerance=1e-6, init=cold.class_fractions
        )
        assert warm.converged
        assert warm.rounds <= cold.rounds

    def test_rejects_bad_config(self):
        agg = aggregate_users(_many_class_system())
        with pytest.raises(ValueError):
            solve_sharded(agg, n_shards=1, tolerance=0.0)
        with pytest.raises(ValueError):
            solve_sharded(agg, n_shards=1, max_rounds=0)
        with pytest.raises(ValueError):
            solve_sharded(agg, n_shards=1, reconcile_sweeps=0)


class TestShardTelemetry:
    def test_traced_round_and_solve_events(self, tmp_path):
        from repro.telemetry.analysis import class_summary
        from repro.telemetry.sinks import JsonlSink, read_trace
        from repro.telemetry.trace import Tracer

        path = tmp_path / "shard.trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        agg = aggregate_users(_many_class_system(seed=2))
        result = solve_sharded(
            agg, n_shards=2, tolerance=1e-6, tracer=tracer
        )
        tracer.close()
        events = read_trace(path)
        names = [event.name for event in events]
        assert names.count("shard.round") == result.rounds
        assert names.count("shard.solve") == 2 * result.rounds
        summary = class_summary(events)
        assert summary["n_rounds"] == result.rounds
        assert summary["final_epsilon"] == result.epsilon


class TestSharedMemoryParity:
    """The zero-copy data plane must be invisible in the results."""

    @pytest.fixture(autouse=True)
    def _small_blocks(self, monkeypatch):
        # Test arrays are tiny; drop the size threshold so they really
        # travel through shared-memory blocks instead of falling back.
        import functools

        from repro.core import sharding as sharding_module
        from repro.experiments.shm import SharedArrayPlane, clear_worker_cache

        monkeypatch.setattr(
            sharding_module,
            "SharedArrayPlane",
            functools.partial(SharedArrayPlane, min_bytes=0),
        )
        clear_worker_cache()
        yield
        clear_worker_cache()

    @pytest.mark.parametrize("order", ["roundrobin", "random"])
    def test_bit_identical_to_pickling_path(self, order):
        agg = aggregate_users(_many_class_system(n_classes=16, seed=5))
        pickled = solve_sharded(
            agg,
            n_shards=3,
            tolerance=1e-6,
            order=order,
            use_shm=False,
            n_workers=1,
        )
        shm = solve_sharded(
            agg,
            n_shards=3,
            tolerance=1e-6,
            order=order,
            use_shm=True,
            n_workers=2,
        )
        np.testing.assert_array_equal(
            shm.class_fractions, pickled.class_fractions
        )
        np.testing.assert_array_equal(
            shm.epsilon_history, pickled.epsilon_history
        )
        assert shm.rounds == pickled.rounds
        assert shm.converged == pickled.converged

    def test_simultaneous_order_fails_identically(self):
        # The undamped simultaneous order overshoots into instability on
        # this workload regardless of transport (a pre-existing solver
        # property) — parity means the shm path raises exactly where the
        # pickling path does, not that it magically converges.
        agg = aggregate_users(_many_class_system(n_classes=16, seed=5))
        kwargs = dict(n_shards=3, tolerance=1e-6, order="simultaneous")
        with pytest.raises(ValueError, match="stability"):
            solve_sharded(agg, use_shm=False, n_workers=1, **kwargs)
        with pytest.raises(ValueError, match="stability"):
            solve_sharded(agg, use_shm=True, n_workers=2, **kwargs)

    def test_plane_publishes_and_closes(self):
        from repro.telemetry.sinks import InMemorySink
        from repro.telemetry.trace import Tracer

        sink = InMemorySink()
        tracer = Tracer(sink)
        agg = aggregate_users(_many_class_system(n_classes=16, seed=5))
        solve_sharded(
            agg,
            n_shards=2,
            tolerance=1e-6,
            use_shm=True,
            n_workers=2,
            tracer=tracer,
        )
        names = [event.name for event in sink.events]
        assert "pool.shm.publish" in names
        assert names.count("pool.shm.close") == 1
        counters = tracer.registry.snapshot()["counters"]
        # Static class matrices + at least one per-round fraction matrix.
        assert counters["pool.shm.blocks"] >= 5
        assert counters["pool.shm.bytes_saved"] > 0

    def test_shm_serial_fallback_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        agg = aggregate_users(_many_class_system(seed=5))
        result = solve_sharded(agg, n_shards=2, tolerance=1e-6)
        assert result.converged
