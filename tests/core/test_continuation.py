"""Tests for warm-start continuation along parameter sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.continuation import SweepPredictor, warm_start_profile
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import NashSolver
from repro.core.strategy import StrategyProfile
from repro.experiments.common import run_schemes_sweep
from repro.schemes import NashScheme
from repro.workloads.configs import paper_table1_system
from repro.workloads.sweeps import utilization_sweep


class TestWarmStartProfile:
    def test_feasible_previous_is_reused_verbatim(self, table1_small):
        previous = StrategyProfile.proportional(table1_small)
        warm = warm_start_profile(table1_small, previous)
        assert warm is not None
        np.testing.assert_array_equal(warm.fractions, previous.fractions)

    def test_infeasible_previous_is_blended_feasible(self):
        # The previous equilibrium piles everything on one computer; at
        # the new point that computer alone cannot carry the load, so the
        # repair must blend toward proportional rather than give up.
        system = DistributedSystem(
            service_rates=[5.0, 5.0], arrival_rates=[4.0, 3.0]
        )
        skewed = StrategyProfile(
            np.array([[1.0, 0.0], [1.0, 0.0]])
        )
        warm = warm_start_profile(system, skewed)
        assert warm is not None
        assert warm.is_feasible(system)
        # The blend keeps some of the skew rather than resetting fully.
        assert warm.fractions[0, 0] > 0.5

    def test_user_count_change_carries_aggregate_split(self):
        old = paper_table1_system(utilization=0.6, n_users=4)
        new = paper_table1_system(utilization=0.6, n_users=8)
        previous = NashSolver().solve(old, "proportional").profile
        warm = warm_start_profile(new, previous, previous_system=old)
        assert warm is not None
        assert warm.n_users == 8
        assert warm.is_feasible(new)
        # Aggregate loads are preserved up to the demand rescaling.
        old_split = old.loads(previous.fractions)
        new_split = new.loads(warm.fractions)
        np.testing.assert_allclose(
            new_split / new_split.sum(), old_split / old_split.sum()
        )

    def test_computer_count_change_returns_none(self, table1_small):
        other = DistributedSystem(
            service_rates=[10.0, 5.0], arrival_rates=[3.0] * 4
        )
        previous = StrategyProfile.proportional(other)
        assert warm_start_profile(table1_small, previous) is None

    def test_failure_remap_drops_offline_column(self):
        """A computer failure (name-matched via previous_system) carries
        the surviving columns and re-splits the failed computer's mass."""
        full = paper_table1_system(utilization=0.6, n_users=4)
        previous = NashSolver().solve(full, "proportional").profile
        alive = np.ones(full.n_computers, dtype=bool)
        alive[15] = False
        degraded = DistributedSystem(
            service_rates=full.service_rates[alive],
            arrival_rates=full.arrival_rates,
            computer_names=tuple(
                name
                for name, keep in zip(full.computer_names, alive)
                if keep
            ),
        )
        warm = warm_start_profile(degraded, previous, previous_system=full)
        assert warm is not None
        assert warm.n_computers == 15
        assert warm.is_feasible(degraded)
        # Surviving columns keep their relative proportions: within each
        # row the used columns all scale by the same factor (columns the
        # user never used stay at zero and carry no ratio).
        carried = previous.fractions[:, alive]
        for row_warm, row_prev in zip(warm.fractions, carried):
            used = row_prev > 0.0
            ratio = row_warm[used] / row_prev[used]
            np.testing.assert_allclose(ratio, ratio[0], rtol=1e-12)
            np.testing.assert_array_equal(row_warm[~used], 0.0)

    def test_reopen_remap_seeds_fresh_column_by_capacity_share(self):
        full = paper_table1_system(utilization=0.6, n_users=4)
        alive = np.ones(full.n_computers, dtype=bool)
        alive[15] = False
        degraded = DistributedSystem(
            service_rates=full.service_rates[alive],
            arrival_rates=full.arrival_rates,
            computer_names=tuple(
                name
                for name, keep in zip(full.computer_names, alive)
                if keep
            ),
        )
        previous = NashSolver().solve(degraded, "proportional").profile
        warm = warm_start_profile(full, previous, previous_system=degraded)
        assert warm is not None
        assert warm.n_computers == 16
        assert warm.is_feasible(full)
        share = full.service_rates[15] / full.service_rates.sum()
        np.testing.assert_allclose(warm.fractions[:, 15], share)

    def test_remap_with_user_count_change_combines_both_paths(self):
        full = paper_table1_system(utilization=0.6, n_users=4)
        alive = np.ones(full.n_computers, dtype=bool)
        alive[15] = False
        degraded = DistributedSystem(
            service_rates=full.service_rates[alive],
            arrival_rates=[30.0] * 6,
            computer_names=tuple(
                name
                for name, keep in zip(full.computer_names, alive)
                if keep
            ),
        )
        previous = NashSolver().solve(full, "proportional").profile
        warm = warm_start_profile(degraded, previous, previous_system=full)
        assert warm is not None
        assert warm.n_users == 6
        assert warm.is_feasible(degraded)

    def test_remap_shortens_the_resolve(self):
        """The remapped seed must beat a cold start on the degraded solve."""
        full = paper_table1_system(utilization=0.7, n_users=8)
        previous = NashSolver().solve(full, "proportional").profile
        alive = np.ones(full.n_computers, dtype=bool)
        alive[15] = False
        degraded = DistributedSystem(
            service_rates=full.service_rates[alive],
            arrival_rates=full.arrival_rates,
            computer_names=tuple(
                name
                for name, keep in zip(full.computer_names, alive)
                if keep
            ),
        )
        warm = warm_start_profile(degraded, previous, previous_system=full)
        assert warm is not None
        solver = NashSolver()
        warm_run = solver.solve(degraded, warm)
        cold_run = solver.solve(degraded, "proportional")
        assert warm_run.converged and cold_run.converged
        assert warm_run.iterations < cold_run.iterations
        cert = best_response_regrets(degraded, warm_run.profile)
        assert cert.epsilon <= 1e-6

    def test_remap_without_previous_system_still_returns_none(self):
        full = paper_table1_system(utilization=0.6, n_users=4)
        previous = NashSolver().solve(full, "proportional").profile
        degraded = DistributedSystem(
            service_rates=full.service_rates[:-1],
            arrival_rates=full.arrival_rates,
        )
        assert warm_start_profile(degraded, previous) is None

    def test_remap_without_name_overlap_returns_none(self):
        full = paper_table1_system(utilization=0.6, n_users=4)
        previous = NashSolver().solve(full, "proportional").profile
        foreign = DistributedSystem(
            service_rates=[400.0, 200.0],
            arrival_rates=full.arrival_rates,
            computer_names=("alien-0", "alien-1"),
        )
        assert (
            warm_start_profile(foreign, previous, previous_system=full)
            is None
        )

    def test_saturated_system_returns_none(self):
        system = DistributedSystem(
            service_rates=[5.0, 5.0], arrival_rates=[4.9, 4.9]
        )
        skewed = StrategyProfile(np.array([[1.0, 0.0], [1.0, 0.0]]))
        warm = warm_start_profile(system, skewed)
        # Near saturation any outcome must still be feasible if not None.
        if warm is not None:
            assert warm.is_feasible(system)


class TestSweepPredictor:
    def test_empty_history_predicts_none(self, table1_small):
        assert SweepPredictor().predict(0.5, table1_small) is None

    def test_single_point_falls_back_to_carry_over(self, table1_small):
        predictor = SweepPredictor()
        previous = StrategyProfile.proportional(table1_small)
        predictor.record(0.5, previous, table1_small)
        warm = predictor.predict(0.6, paper_table1_system(utilization=0.6, n_users=4))
        assert warm is not None
        np.testing.assert_array_equal(warm.fractions, previous.fractions)

    def test_extrapolation_beats_carry_over(self):
        # On a smooth sweep the Lagrange seed must start closer to the
        # next equilibrium than plain carry-over does.
        solver = NashSolver(tolerance=1e-9, max_sweeps=5000)
        predictor = SweepPredictor()
        for rho in (0.5, 0.6, 0.7):
            system = paper_table1_system(utilization=rho, n_users=4)
            result = solver.solve(system, "proportional")
            predictor.record(rho, result.profile, system)
        target_system = paper_table1_system(utilization=0.8, n_users=4)
        target = solver.solve(target_system, "proportional").profile
        seed = predictor.predict(0.8, target_system)
        assert seed is not None
        carry = predictor._history[-1][1]
        err_seed = np.abs(seed.fractions - target.fractions).max()
        err_carry = np.abs(carry.fractions - target.fractions).max()
        assert err_seed < err_carry

    def test_history_is_bounded_by_depth(self, table1_small):
        predictor = SweepPredictor(depth=2)
        profile = StrategyProfile.proportional(table1_small)
        for rho in (0.1, 0.2, 0.3, 0.4):
            predictor.record(rho, profile, table1_small)
        assert len(predictor._history) == 2

    def test_non_numeric_parameters_fall_back(self, table1_small):
        predictor = SweepPredictor()
        profile = StrategyProfile.proportional(table1_small)
        predictor.record("a", profile, table1_small)
        predictor.record("b", profile, table1_small)
        warm = predictor.predict("c", table1_small)
        assert warm is not None
        np.testing.assert_array_equal(warm.fractions, profile.fractions)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            SweepPredictor(depth=0)


class TestContinuationSweep:
    def test_same_certificates_as_cold(self):
        # The acceptance criterion of the continuation feature: warm
        # sweeps must pass the exact same epsilon checks as cold solves.
        points = list(utilization_sweep((0.2, 0.4, 0.6, 0.8), n_users=4))
        schemes = (NashScheme(),)
        tolerance = NashScheme().tolerance
        cold = run_schemes_sweep(points, schemes)
        warm = run_schemes_sweep(points, schemes, continuation=True)
        for (rho_c, cold_res), (rho_w, warm_res) in zip(cold, warm):
            assert rho_c == rho_w
            system = dict(points)[rho_c]
            cert_cold = best_response_regrets(system, cold_res["NASH"].profile)
            cert_warm = best_response_regrets(system, warm_res["NASH"].profile)
            assert cert_cold.is_equilibrium(tolerance)
            assert cert_warm.is_equilibrium(tolerance)

    def test_warm_points_use_fewer_iterations(self):
        points = list(utilization_sweep(tuple(np.linspace(0.2, 0.8, 13)), n_users=4))
        schemes = (NashScheme(),)
        cold = run_schemes_sweep(points, schemes)
        warm = run_schemes_sweep(points, schemes, continuation=True)
        cold_total = sum(r["NASH"].extra["iterations"] for _, r in cold)
        warm_total = sum(r["NASH"].extra["iterations"] for _, r in warm)
        assert warm_total < cold_total
        # All but the cold-started first axis point are warm-started.
        warmed = [r["NASH"].extra["warm_started"] for _, r in warm]
        assert warmed.count(True) >= len(points) - 1

    def test_results_keep_input_order(self):
        points = list(utilization_sweep((0.6, 0.2, 0.4), n_users=4))
        warm = run_schemes_sweep(points, (NashScheme(),), continuation=True)
        assert [rho for rho, _ in warm] == [0.6, 0.2, 0.4]

    def test_continuation_rejects_workers(self):
        points = list(utilization_sweep((0.2, 0.4), n_users=4))
        with pytest.raises(ValueError):
            run_schemes_sweep(points, continuation=True, n_workers=2)

    def test_warm_started_scheme_solves_from_profile(self, table1_small):
        base = NashScheme()
        cold = base.allocate(table1_small)
        warmed = base.warm_started(cold.profile).allocate(table1_small)
        assert warmed.extra["init"] == "warm-start"
        # Starting at the equilibrium, the solve should converge at once.
        assert warmed.extra["iterations"] <= cold.extra["iterations"]
        np.testing.assert_allclose(
            warmed.profile.fractions, cold.profile.fractions, atol=1e-4
        )
