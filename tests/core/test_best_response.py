"""Tests for the OPTIMAL best-response algorithm (paper Thm 2.1/2.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import (
    best_response,
    best_response_value,
    optimal_fractions,
)
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile


def user_cost(available, fractions, job_rate):
    """D_j = sum_i s_ji / (a_i - s_ji phi_j) evaluated directly."""
    available = np.asarray(available, dtype=float)
    fractions = np.asarray(fractions, dtype=float)
    x = fractions * job_rate
    used = fractions > 0
    # reprolint: allow=R003 independent oracle, deliberately not via repro.queueing
    return float((fractions[used] / (available[used] - x[used])).sum())


class TestOptimalFractions:
    def test_fractions_form_distribution(self):
        reply = optimal_fractions([10.0, 5.0, 2.0], 6.0)
        assert reply.fractions.sum() == pytest.approx(1.0)
        assert np.all(reply.fractions >= 0.0)

    def test_expected_time_consistent(self):
        available = [10.0, 5.0, 2.0]
        reply = optimal_fractions(available, 6.0)
        assert reply.expected_response_time == pytest.approx(
            user_cost(available, reply.fractions, 6.0)
        )

    def test_single_computer_everything_there(self):
        reply = optimal_fractions([10.0], 3.0)
        assert reply.fractions[0] == pytest.approx(1.0)
        assert reply.expected_response_time == pytest.approx(1.0 / 7.0)

    def test_homogeneous_even_split(self):
        reply = optimal_fractions([4.0, 4.0], 2.0)
        np.testing.assert_allclose(reply.fractions, 0.5)

    def test_tiny_rate_uses_fastest_only(self):
        reply = optimal_fractions([100.0, 1.0], 0.001)
        np.testing.assert_array_equal(reply.support, [0])
        assert reply.fractions[1] == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="job rate"):
            optimal_fractions([5.0], 0.0)

    def test_rejects_infeasible_rate(self):
        with pytest.raises(ValueError):
            optimal_fractions([2.0, 2.0], 5.0)

    def test_stability_of_own_allocation(self):
        available = np.array([9.0, 7.0, 2.0])
        reply = optimal_fractions(available, 8.0)
        assert np.all(reply.fractions * 8.0 < available)

    def test_faster_computers_get_larger_fractions(self):
        reply = optimal_fractions([12.0, 8.0, 4.0, 2.0], 10.0)
        diffs = np.diff(reply.fractions)
        assert np.all(diffs <= 1e-12)


class TestOptimality:
    """Theorem 2.2: the OPTIMAL output solves the convex program exactly."""

    def test_beats_dirichlet_samples(self, rng):
        available = np.array([20.0, 10.0, 6.0, 2.0])
        rate = 12.0
        reply = optimal_fractions(available, rate)
        for _ in range(300):
            s = rng.dirichlet(np.ones(4))
            if np.any(s * rate >= available):
                continue
            assert user_cost(available, s, rate) >= (
                reply.expected_response_time - 1e-10
            )

    def test_beats_perturbations(self, rng):
        available = np.array([15.0, 11.0, 3.0])
        rate = 9.0
        reply = optimal_fractions(available, rate)
        base = reply.fractions
        for _ in range(200):
            noise = rng.normal(scale=0.02, size=3)
            s = np.clip(base + noise, 0.0, None)
            if s.sum() == 0.0:  # reprolint: allow=R002 exact-sentinel
                continue
            s /= s.sum()
            if np.any(s * rate >= available):
                continue
            assert user_cost(available, s, rate) >= (
                reply.expected_response_time - 1e-10
            )

    def test_matches_scipy(self):
        from scipy import optimize

        available = np.array([14.0, 9.0, 5.0])
        rate = 10.0

        def objective(s):
            return user_cost(available, np.clip(s, 1e-15, None), rate)

        solution = optimize.minimize(
            objective,
            x0=np.full(3, 1.0 / 3.0),
            bounds=[(0.0, min(1.0, a / rate * (1 - 1e-9))) for a in available],
            constraints=[{"type": "eq", "fun": lambda s: s.sum() - 1.0}],
            method="SLSQP",
            options={"ftol": 1e-14, "maxiter": 500},
        )
        reply = optimal_fractions(available, rate)
        assert reply.expected_response_time <= solution.fun + 1e-9

    @given(
        st.lists(st.floats(1.0, 100.0), min_size=2, max_size=8),
        st.floats(0.05, 0.9),
        st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_profitable_two_computer_transfer(self, rates, frac, seed):
        """First-order optimality: moving mass between any two used/unused
        computers never helps."""
        available = np.asarray(rates)
        job_rate = frac * available.sum()
        reply = optimal_fractions(available, job_rate)
        base = reply.expected_response_time
        rng = np.random.default_rng(seed)
        for _ in range(20):
            i, k = rng.integers(0, available.size, size=2)
            if i == k or reply.fractions[i] <= 0.0:
                continue
            delta = min(reply.fractions[i], 0.01)
            s = reply.fractions.copy()
            s[i] -= delta
            s[k] += delta
            if np.any(s * job_rate >= available):
                continue
            assert user_cost(available, s, job_rate) >= base - 1e-9


class TestBestResponseOnSystems:
    def test_single_user_game_is_global_optimum(self, single_user):
        """With one user the best response equals GOS."""
        from repro.schemes.global_optimal import global_optimal_loads

        profile = StrategyProfile.zeros(1, 3)
        reply = best_response(single_user, profile, 0)
        expected = global_optimal_loads(single_user)
        np.testing.assert_allclose(
            reply.fractions * single_user.arrival_rates[0], expected, atol=1e-9
        )

    def test_reply_ignores_own_current_strategy(self, two_by_two):
        base = StrategyProfile(np.array([[1.0, 0.0], [0.5, 0.5]]))
        changed = base.with_user_strategy(0, [0.0, 1.0])
        reply_a = best_response(two_by_two, base, 0)
        reply_b = best_response(two_by_two, changed, 0)
        np.testing.assert_allclose(reply_a.fractions, reply_b.fractions)

    def test_reply_reacts_to_opponents(self, two_by_two):
        idle = StrategyProfile(np.array([[0.5, 0.5], [0.5, 0.5]]))
        crowded = StrategyProfile(np.array([[0.5, 0.5], [1.0, 0.0]]))
        reply_idle = best_response(two_by_two, idle, 0)
        reply_crowded = best_response(two_by_two, crowded, 0)
        # When user 1 crowds computer 0, user 0 shifts mass away from it.
        assert reply_crowded.fractions[0] < reply_idle.fractions[0]

    def test_best_response_value_shortcut(self, two_by_two):
        profile = StrategyProfile.uniform(2, 2)
        reply = best_response(two_by_two, profile, 0)
        assert best_response_value(two_by_two, profile, 0) == pytest.approx(
            reply.expected_response_time
        )

    def test_improves_on_current_strategy(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        current = table1_medium.user_response_times(profile.fractions)
        for j in range(table1_medium.n_users):
            reply = best_response(table1_medium, profile, j)
            assert reply.expected_response_time <= current[j] + 1e-12

    def test_complexity_is_sort_bound(self):
        """The algorithm handles thousands of computers instantly."""
        rng = np.random.default_rng(1)
        available = rng.uniform(1.0, 100.0, size=5000)
        reply = optimal_fractions(available, 0.5 * available.sum())
        assert reply.fractions.sum() == pytest.approx(1.0)
