"""Property-based tests of the equilibrium's structural properties.

These pin down comparative statics the paper implies but never states:
more capacity helps, more load hurts, equilibria are unique and
initialization-independent, and the equilibrium inherits the scaling
invariance of the M/M/1 model.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import DistributedSystem
from repro.core.nash import compute_nash_equilibrium


def solve(system):
    result = compute_nash_equilibrium(system, tolerance=1e-9, max_sweeps=3000)
    assert result.converged
    return result


def random_instances():
    """Hypothesis strategy: (service rates, user rates) with slack."""
    return st.tuples(
        st.lists(st.floats(2.0, 80.0), min_size=2, max_size=6),
        st.lists(st.floats(0.5, 5.0), min_size=1, max_size=4),
    ).filter(lambda case: sum(case[1]) < 0.9 * sum(case[0]))


class TestComparativeStatics:
    @given(random_instances())
    @settings(max_examples=40, deadline=None)
    def test_adding_a_computer_never_hurts_anyone(self, case):
        mu, phi = case
        before = solve(DistributedSystem(service_rates=mu, arrival_rates=phi))
        extended = DistributedSystem(
            service_rates=list(mu) + [max(mu)], arrival_rates=phi
        )
        after = solve(extended)
        assert np.all(after.user_times <= before.user_times + 1e-6)

    @given(random_instances(), st.floats(1.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_speeding_up_a_computer_never_hurts_overall(self, case, factor):
        mu, phi = case
        slow = DistributedSystem(service_rates=mu, arrival_rates=phi)
        fast_rates = list(mu)
        fast_rates[0] *= factor
        fast = DistributedSystem(service_rates=fast_rates, arrival_rates=phi)
        time_slow = slow.overall_response_time(solve(slow).profile.fractions)
        time_fast = fast.overall_response_time(solve(fast).profile.fractions)
        assert time_fast <= time_slow + 1e-6

    @given(random_instances(), st.floats(1.05, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_more_load_never_helps(self, case, factor):
        mu, phi = case
        light = DistributedSystem(service_rates=mu, arrival_rates=phi)
        heavier_rates = [p * factor for p in phi]
        if sum(heavier_rates) >= 0.98 * sum(mu):
            return
        heavy = DistributedSystem(
            service_rates=mu, arrival_rates=heavier_rates
        )
        time_light = light.overall_response_time(
            solve(light).profile.fractions
        )
        time_heavy = heavy.overall_response_time(
            solve(heavy).profile.fractions
        )
        assert time_heavy >= time_light - 1e-6

    @given(random_instances(), st.floats(0.5, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_time_scaling_invariance(self, case, scale):
        """Scaling all rates by c divides every equilibrium time by c and
        leaves the strategy profile unchanged — seconds vs milliseconds
        cannot matter."""
        mu, phi = case
        base = DistributedSystem(service_rates=mu, arrival_rates=phi)
        scaled = DistributedSystem(
            service_rates=[m * scale for m in mu],
            arrival_rates=[p * scale for p in phi],
        )
        result_base = solve(base)
        result_scaled = solve(scaled)
        np.testing.assert_allclose(
            result_scaled.user_times,
            result_base.user_times / scale,
            rtol=1e-4,
        )
        # Strategies match more loosely than costs: the cost landscape is
        # flat near the equilibrium, so the stopping iterate wanders more
        # than the value it achieves.
        np.testing.assert_allclose(
            result_scaled.profile.fractions,
            result_base.profile.fractions,
            atol=1e-3,
        )


class TestUniqueness:
    @given(random_instances(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_equilibrium_unique_across_inits(self, case, seed):
        """Orda et al.'s uniqueness theorem, checked constructively: zero,
        proportional and a random feasible initialization all land on the
        same user times."""
        mu, phi = case
        system = DistributedSystem(service_rates=mu, arrival_rates=phi)
        from repro.core.strategy import StrategyProfile

        rng = np.random.default_rng(seed)
        raw = rng.dirichlet(np.ones(len(mu)), size=len(phi))
        random_init = StrategyProfile(raw)
        targets = [solve(system).user_times]
        for init in ("zero", random_init):
            result = compute_nash_equilibrium(
                system, init=init, tolerance=1e-9, max_sweeps=3000
            )
            if not result.converged:
                continue
            targets.append(result.user_times)
        for times in targets[1:]:
            np.testing.assert_allclose(times, targets[0], rtol=1e-4)


class TestSymmetry:
    @given(
        st.lists(st.floats(2.0, 50.0), min_size=2, max_size=5),
        st.floats(0.5, 4.0),
        st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_users_identical_times(self, mu, per_user, m):
        if per_user * m >= 0.9 * sum(mu):
            return
        system = DistributedSystem(
            service_rates=mu, arrival_rates=[per_user] * m
        )
        result = solve(system)
        spread = result.user_times.max() - result.user_times.min()
        assert spread <= 1e-5 * result.user_times.mean() + 1e-9
