"""Tests for the water-filling solvers (paper Theorem 2.1 and the Wardrop fill)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.waterfill import response_time_waterfill, sqrt_waterfill


def capacities_and_demand():
    """Hypothesis strategy: positive capacities with a feasible demand."""
    return st.tuples(
        st.lists(st.floats(0.5, 200.0), min_size=1, max_size=12),
        st.floats(0.01, 0.95),
    )


class TestSqrtWaterfillBasics:
    def test_single_computer(self):
        result = sqrt_waterfill([10.0], 4.0)
        np.testing.assert_allclose(result.loads, [4.0])
        np.testing.assert_array_equal(result.support, [0])

    def test_zero_demand(self):
        result = sqrt_waterfill([10.0, 5.0], 0.0)
        np.testing.assert_array_equal(result.loads, [0.0, 0.0])
        assert result.support.size == 0

    def test_demand_conserved(self):
        result = sqrt_waterfill([10.0, 5.0, 2.0], 7.3)
        assert result.loads.sum() == pytest.approx(7.3)

    def test_loads_nonnegative(self):
        result = sqrt_waterfill([10.0, 5.0, 2.0], 0.5)
        assert np.all(result.loads >= 0.0)

    def test_small_demand_uses_only_fastest(self):
        # With tiny demand only the fastest computer should be used:
        # threshold test excludes all with sqrt(a_k) <= t.
        result = sqrt_waterfill([100.0, 1.0], 0.01)
        assert result.loads[1] == 0.0
        assert result.loads[0] == pytest.approx(0.01)

    def test_large_demand_uses_all(self):
        a = np.array([10.0, 8.0, 6.0])
        result = sqrt_waterfill(a, 23.0)
        assert np.all(result.loads > 0.0)
        assert np.all(result.loads < a)

    def test_homogeneous_split_evenly(self):
        result = sqrt_waterfill([5.0, 5.0, 5.0, 5.0], 10.0)
        np.testing.assert_allclose(result.loads, 2.5)

    def test_order_independence(self):
        a = [2.0, 10.0, 5.0]
        forward = sqrt_waterfill(a, 6.0).loads
        backward = sqrt_waterfill(a[::-1], 6.0).loads
        np.testing.assert_allclose(forward, backward[::-1], atol=1e-12)

    def test_closed_form_on_support(self):
        a = np.array([10.0, 8.0, 1.0])
        result = sqrt_waterfill(a, 5.0)
        t = result.threshold
        for i in result.support:
            assert result.loads[i] == pytest.approx(
                a[i] - t * np.sqrt(a[i]), rel=1e-9
            )

    def test_nonpositive_capacity_excluded(self):
        result = sqrt_waterfill([10.0, -3.0, 0.0], 2.0)
        assert result.loads[1] == 0.0
        assert result.loads[2] == 0.0
        assert result.loads[0] == pytest.approx(2.0)

    def test_rejects_infeasible_demand(self):
        with pytest.raises(ValueError, match="demand"):
            sqrt_waterfill([1.0, 1.0], 2.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            sqrt_waterfill([1.0], -0.5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            sqrt_waterfill([[1.0, 2.0]], 0.5)
        with pytest.raises(ValueError):
            sqrt_waterfill([], 0.5)

    def test_rejects_nan_capacity(self):
        with pytest.raises(ValueError):
            sqrt_waterfill([np.nan, 1.0], 0.5)


class TestSqrtWaterfillOptimality:
    """The fill must satisfy the KKT conditions of min sum x/(a - x)."""

    @staticmethod
    def total_delay(a, x):
        used = x > 0
        return float((x[used] / (a[used] - x[used])).sum())

    def test_kkt_equal_marginals_on_support(self):
        a = np.array([30.0, 20.0, 10.0, 5.0])
        result = sqrt_waterfill(a, 20.0)
        x = result.loads
        marginals = a / (a - x) ** 2
        on = result.support
        np.testing.assert_allclose(
            marginals[on], marginals[on][0], rtol=1e-9
        )

    def test_kkt_excluded_marginals_higher(self):
        a = np.array([30.0, 1.0])
        result = sqrt_waterfill(a, 1.0)
        assert result.loads[1] == 0.0
        alpha = a[0] / (a[0] - result.loads[0]) ** 2
        assert 1.0 / a[1] >= alpha - 1e-12

    def test_beats_random_feasible_allocations(self, rng):
        a = np.array([25.0, 12.0, 7.0, 3.0])
        demand = 15.0
        best = sqrt_waterfill(a, demand)
        optimal = self.total_delay(a, best.loads)
        for _ in range(200):
            w = rng.dirichlet(np.ones(a.size))
            x = w * demand
            if np.any(x >= a):
                continue
            assert self.total_delay(a, x) >= optimal - 1e-9

    def test_matches_scipy_slsqp(self):
        from scipy import optimize

        a = np.array([18.0, 9.0, 4.0])
        demand = 12.0

        def objective(x):
            return float((x / (a - x)).sum())

        result = optimize.minimize(
            objective,
            x0=np.full(3, demand / 3),
            bounds=[(0.0, ai * (1 - 1e-9)) for ai in a],
            constraints=[{"type": "eq", "fun": lambda x: x.sum() - demand}],
            method="SLSQP",
            options={"ftol": 1e-14, "maxiter": 500},
        )
        fill = sqrt_waterfill(a, demand)
        assert objective(fill.loads) <= result.fun + 1e-9
        np.testing.assert_allclose(fill.loads, result.x, atol=1e-5)

    @given(capacities_and_demand())
    @settings(max_examples=120, deadline=None)
    def test_properties_hold_generically(self, case):
        capacities, load_factor = case
        a = np.asarray(capacities)
        demand = load_factor * a.sum()
        result = sqrt_waterfill(a, demand)
        x = result.loads
        assert x.sum() == pytest.approx(demand, rel=1e-9)
        assert np.all(x >= 0.0)
        assert np.all(x < a)
        # Faster computers never receive less load.
        order = np.argsort(-a, kind="stable")
        sorted_loads = x[order]
        assert np.all(np.diff(sorted_loads) <= 1e-9)


class TestResponseTimeWaterfill:
    def test_equal_response_times_on_support(self):
        a = np.array([20.0, 10.0, 5.0])
        result = response_time_waterfill(a, 18.0)
        x = result.loads
        on = result.support
        times = 1.0 / (a[on] - x[on])
        np.testing.assert_allclose(times, times[0], rtol=1e-9)
        assert times[0] == pytest.approx(result.threshold, rel=1e-9)

    def test_unused_slower_even_idle(self):
        a = np.array([50.0, 1.0])
        result = response_time_waterfill(a, 5.0)
        assert result.loads[1] == 0.0
        assert 1.0 / a[1] >= result.threshold - 1e-12

    def test_demand_conserved(self):
        result = response_time_waterfill([10.0, 6.0, 3.0], 11.0)
        assert result.loads.sum() == pytest.approx(11.0)

    def test_zero_demand(self):
        result = response_time_waterfill([4.0], 0.0)
        assert result.loads[0] == 0.0

    def test_full_usage_threshold_closed_form(self):
        # With all computers used: 1/tau = (sum(mu) - demand) / n.
        a = np.array([10.0, 9.0, 8.0])
        demand = 24.0
        result = response_time_waterfill(a, demand)
        assert np.all(result.loads > 0.0)
        expected_tau = a.size / (a.sum() - demand)
        assert result.threshold == pytest.approx(expected_tau, rel=1e-9)

    def test_rejects_infeasible(self):
        with pytest.raises(ValueError):
            response_time_waterfill([2.0], 2.0)

    @given(capacities_and_demand())
    @settings(max_examples=120, deadline=None)
    def test_wardrop_conditions_generic(self, case):
        capacities, load_factor = case
        a = np.asarray(capacities)
        demand = load_factor * a.sum()
        result = response_time_waterfill(a, demand)
        x = result.loads
        assert x.sum() == pytest.approx(demand, rel=1e-9)
        assert np.all(x < a)
        if demand > 0:
            tau = result.threshold
            used = x > 1e-12
            if np.any(used):
                np.testing.assert_allclose(
                    1.0 / (a[used] - x[used]), tau, rtol=1e-6
                )
            idle = ~used & (a > 0)
            assert np.all(1.0 / a[idle] >= tau * (1 - 1e-9))
