"""Tests for user-class aggregation and the class-space NASH solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classes import (
    ClassAggregation,
    ClassNashSolver,
    aggregate_users,
    class_best_response_regrets,
)
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import NashSolver
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import InfeasibleDemand
from repro.workloads.configs import paper_table1_system, random_system


class TestAggregateUsers:
    def test_uniform_population_collapses_to_one_class(self):
        system = paper_table1_system(n_users=10)
        agg = aggregate_users(system)
        assert agg.n_classes == 1
        assert agg.n_users == 10
        assert agg.compression == 10.0
        np.testing.assert_allclose(agg.total_demand, system.total_arrival_rate)

    def test_exact_grouping_by_rate(self):
        system = DistributedSystem(
            service_rates=[20.0, 10.0],
            arrival_rates=[2.0, 1.0, 2.0, 3.0, 1.0, 2.0],
        )
        agg = aggregate_users(system)
        assert agg.n_classes == 3
        np.testing.assert_array_equal(agg.class_rates, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(agg.counts, [2, 3, 1])
        # class_of maps each user to the class holding its exact rate
        assert agg.class_of is not None
        np.testing.assert_array_equal(
            agg.class_rates[agg.class_of], system.arrival_rates
        )

    def test_demands_account_for_every_user(self):
        system = random_system(np.random.default_rng(7), n_computers=5, n_users=40)
        agg = aggregate_users(system)
        np.testing.assert_allclose(
            agg.total_demand, system.total_arrival_rate, rtol=1e-12
        )
        assert int(agg.counts.sum()) == system.n_users

    def test_tolerance_grouping_merges_near_rates(self):
        system = DistributedSystem(
            service_rates=[50.0],
            arrival_rates=[1.0, 1.005, 1.009, 2.0, 2.004],
        )
        exact = aggregate_users(system)
        coarse = aggregate_users(system, tol=0.01)
        assert exact.n_classes == 5
        assert coarse.n_classes == 2
        np.testing.assert_array_equal(coarse.counts, [3, 2])
        # weighted demand is conserved under merging
        np.testing.assert_allclose(
            coarse.total_demand, system.total_arrival_rate, rtol=1e-12
        )

    def test_exact_grouping_demands_are_member_sums(self):
        rng = np.random.default_rng(11)
        phi = np.repeat(rng.uniform(0.5, 2.0, size=6), 4)
        rng.shuffle(phi)
        system = DistributedSystem(service_rates=[200.0], arrival_rates=phi)
        agg = aggregate_users(system)
        np.testing.assert_array_equal(
            agg.demands, np.bincount(agg.class_of, weights=phi)
        )

    def test_boundary_feasibility_survives_grouping(self):
        # Regression: demands were re-derived as ``class_rates * counts``,
        # whose rounding can exceed the true member-rate sum — a feasible
        # system with total capacity between the two sums then failed
        # aggregation with "aggregate demand must be strictly below total
        # capacity" even though the *system itself* was stable.
        for seed in range(400):
            rng = np.random.default_rng(seed)
            anchors = np.array([1.0, 2.0, 3.0])
            jitter = rng.uniform(0.0, 0.004, size=(3, 7))
            phi = (anchors[:, None] * (1.0 + jitter)).ravel()
            rng.shuffle(phi)
            probe = DistributedSystem(
                service_rates=[100.0], arrival_rates=phi
            )
            agg = aggregate_users(probe, tol=0.01)
            # Reconstruct the true member-rate segment sums independently
            # of the library (classes are the sorted-rate segments), then
            # the drifted re-derivation the old code used.
            sorted_phi = np.sort(phi, kind="stable")
            offsets = np.concatenate(([0], np.cumsum(agg.counts)))
            true_sums = np.array(
                [
                    float(sorted_phi[offsets[k]: offsets[k + 1]].sum())
                    for k in range(agg.n_classes)
                ]
            )
            rederived = float(((true_sums / agg.counts) * agg.counts).sum())
            member_sum = float(true_sums.sum())
            if rederived > max(member_sum, float(phi.sum())):
                break
        else:  # pragma: no cover - depends on float summation scheme
            pytest.skip("no drifting instance found")
        # Capacity sits exactly at the re-derived sum: the system and the
        # member-sum aggregation are feasible, the drifted one was not.
        boundary = DistributedSystem(
            service_rates=[rederived], arrival_rates=phi
        )
        agg = aggregate_users(boundary, tol=0.01)
        assert float(agg.demands.sum()) < rederived

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            aggregate_users(paper_table1_system(n_users=4), tol=-0.1)

    def test_rejects_unstable_demand(self):
        with pytest.raises(ValueError):
            ClassAggregation(
                service_rates=np.array([1.0]),
                class_rates=np.array([2.0]),
                counts=np.array([1]),
                demands=np.array([2.0]),
            )


class TestExpandContract:
    def test_expand_contract_roundtrip(self):
        system = random_system(np.random.default_rng(3), n_computers=4, n_users=12)
        agg = aggregate_users(system)
        f = agg.proportional_fractions()
        profile = agg.expand(f)
        assert isinstance(profile, StrategyProfile)
        assert profile.fractions.shape == (system.n_users, system.n_computers)
        np.testing.assert_allclose(agg.contract(profile), f, atol=1e-12)

    def test_expand_assigns_class_row_to_each_member(self):
        system = paper_table1_system(n_users=6)
        agg = aggregate_users(system)
        f = agg.proportional_fractions()
        profile = agg.expand(f)
        for j in range(system.n_users):
            np.testing.assert_array_equal(profile.fractions[j], f[0])

    def test_synthetic_aggregation_cannot_expand(self):
        agg = ClassAggregation(
            service_rates=np.array([10.0]),
            class_rates=np.array([1.0]),
            counts=np.array([3]),
            demands=np.array([3.0]),
        )
        with pytest.raises(ValueError, match="no user mapping"):
            agg.expand(np.array([[1.0]]))


class TestSingletonBitParity:
    """Singleton classes reduce to the per-user solver bit-for-bit."""

    @pytest.mark.parametrize("order", ["roundrobin", "random"])
    @pytest.mark.parametrize("init", ["zero", "proportional"])
    def test_bit_identical_to_per_user(self, order, init):
        base = random_system(np.random.default_rng(11), n_computers=4, n_users=8)
        # Distinct rates -> every class is a singleton.  Rates are sorted
        # so class index == user index (np.unique sorts): the class-space
        # Gauss-Seidel then visits the same schedule as the per-user one
        # and the trajectories must agree to the last bit.
        system = DistributedSystem(
            service_rates=base.service_rates,
            arrival_rates=np.sort(base.arrival_rates),
        )
        assert np.unique(system.arrival_rates).size == system.n_users
        agg = aggregate_users(system)
        assert agg.n_classes == system.n_users

        per_user = NashSolver(order=order, seed=5).solve(system, init)
        per_class = ClassNashSolver(order=order, seed=5).solve(agg, init)

        assert per_class.converged
        assert per_class.iterations == per_user.iterations
        np.testing.assert_array_equal(
            per_class.expand().fractions, per_user.profile.fractions
        )
        np.testing.assert_array_equal(
            np.asarray(per_class.norm_history),
            np.asarray(per_user.norm_history),
        )

    def test_simultaneous_order_bit_identical(self):
        base = random_system(np.random.default_rng(2), n_computers=4, n_users=6)
        system = DistributedSystem(
            service_rates=base.service_rates,
            arrival_rates=np.sort(base.arrival_rates),
        )
        agg = aggregate_users(system)
        per_user = NashSolver(order="simultaneous").solve(system, "zero")
        per_class = ClassNashSolver(order="simultaneous").solve(agg, "zero")
        assert per_class.iterations == per_user.iterations
        np.testing.assert_array_equal(
            per_class.expand().fractions, per_user.profile.fractions
        )


class TestGroupedParity:
    def test_uniform_class_solve_matches_per_user_equilibrium(self):
        system = paper_table1_system(n_users=10, utilization=0.6)
        per_user = NashSolver(tolerance=1e-9).solve(system, "proportional")
        agg = aggregate_users(system)
        per_class = ClassNashSolver(tolerance=1e-9).solve(agg, "proportional")
        assert per_class.converged
        # Same equilibrium (it is unique), certified in user space.
        cert = best_response_regrets(system, per_class.expand())
        assert cert.epsilon <= 1e-6
        np.testing.assert_allclose(
            per_class.expand().fractions,
            per_user.profile.fractions,
            atol=1e-6,
        )

    def test_tolerance_grouping_epsilon_within_slack(self):
        rng = np.random.default_rng(9)
        base = rng.uniform(0.5, 2.0, size=6)
        phi = np.repeat(base, 4) * rng.uniform(1.0, 1.0005, size=24)
        system = DistributedSystem(
            service_rates=[40.0, 25.0, 15.0], arrival_rates=phi
        )
        agg = aggregate_users(system, tol=1e-3)
        assert agg.n_classes < system.n_users
        result = ClassNashSolver().solve(agg, "proportional")
        assert result.converged
        # user-space certificate degrades by O(tol), not more
        cert = best_response_regrets(system, result.expand())
        assert cert.epsilon <= 1e-2

    def test_class_certificate_matches_user_certificate_exact_grouping(self):
        system = random_system(np.random.default_rng(21), n_computers=4, n_users=10)
        agg = aggregate_users(system)
        result = ClassNashSolver().solve(agg, "proportional")
        class_cert = class_best_response_regrets(agg, result.class_fractions)
        user_cert = best_response_regrets(system, result.expand())
        np.testing.assert_allclose(
            class_cert.epsilon, user_cert.epsilon, atol=1e-12
        )
        assert class_cert.is_equilibrium(1e-6)


class TestMultiMemberClasses:
    def test_converges_and_certifies(self):
        system = paper_table1_system(n_users=32, utilization=0.7)
        agg = aggregate_users(system)
        assert agg.n_classes == 1  # uniform rates -> a genuinely fat class
        result = ClassNashSolver().solve(agg, "zero")
        assert result.converged
        cert = class_best_response_regrets(agg, result.class_fractions)
        assert cert.epsilon <= 1e-6

    def test_mixed_counts_reach_user_space_equilibrium(self):
        phi = np.array([1.0] * 5 + [2.5] * 3 + [0.4])
        system = DistributedSystem(
            service_rates=[30.0, 20.0, 10.0], arrival_rates=phi
        )
        agg = aggregate_users(system)
        np.testing.assert_array_equal(np.sort(agg.counts), [1, 3, 5])
        result = ClassNashSolver().solve(agg, "proportional")
        assert result.converged
        cert = best_response_regrets(system, result.expand())
        assert cert.epsilon <= 1e-6

    def test_infeasible_class_fill_raises(self):
        from repro.core.classes import _symmetric_class_fill

        with pytest.raises(InfeasibleDemand):
            _symmetric_class_fill(np.array([1.0, 0.5]), 2.0, 3)

    def test_symmetric_fill_degenerates_to_waterfill_for_count_one(self):
        from repro.core.best_response import optimal_fractions
        from repro.core.classes import _symmetric_class_fill

        m = np.array([9.0, 4.0, 1.0])
        demand = 2.5
        y, d = _symmetric_class_fill(m, demand, 1)
        reply = optimal_fractions(m, demand)
        np.testing.assert_allclose(y, reply.fractions * demand, atol=1e-12)

    def test_symmetric_fill_conserves_demand(self):
        from repro.core.classes import _symmetric_class_fill

        m = np.array([12.0, 7.0, 3.0, 0.5])
        for count in (1, 2, 5, 100):
            y, d = _symmetric_class_fill(m, 4.0, count)
            np.testing.assert_allclose(y.sum(), 4.0, rtol=1e-10)
            assert np.all(y >= 0.0)
            assert np.all(y <= m + 1e-12)
            assert d > 0.0


class TestSolverConfig:
    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            ClassNashSolver(tolerance=0.0)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            ClassNashSolver(order="sideways")

    def test_record_history(self):
        agg = aggregate_users(paper_table1_system(n_users=4))
        result = ClassNashSolver(record_history=True).solve(agg, "zero")
        assert result.history is not None
        assert len(result.history) == result.iterations


class TestTracing:
    def test_traced_run_reconstructs_norm_history(self, tmp_path):
        from repro.telemetry.analysis import reconstruct_norm_history
        from repro.telemetry.sinks import JsonlSink, read_trace
        from repro.telemetry.trace import Tracer

        path = tmp_path / "class.trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        agg = aggregate_users(paper_table1_system(n_users=10))
        result = ClassNashSolver().solve(agg, "zero", tracer=tracer)
        tracer.close()
        events = read_trace(path)
        assert reconstruct_norm_history(events) == list(result.norm_history)
        names = [event.name for event in events]
        assert names.count("solver.class_start") == 1
        assert names.count("solver.class_done") == 1

    def test_class_summary_rollup(self, tmp_path):
        from repro.telemetry.analysis import class_summary
        from repro.telemetry.sinks import JsonlSink, read_trace
        from repro.telemetry.trace import Tracer

        path = tmp_path / "class.trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        agg = aggregate_users(paper_table1_system(n_users=10))
        result = ClassNashSolver().solve(agg, "zero", tracer=tracer)
        tracer.close()
        summary = class_summary(read_trace(path))
        assert summary["n_solves"] == 1
        assert summary["classes"] == 1
        assert summary["users"] == 10
        assert summary["total_sweeps"] == result.iterations
        assert summary["backend"] == result.backend
