"""Tests for the dynamic re-balancing driver (paper Sec. 3/Sec. 5 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamics import run_dynamic_balancing
from repro.core.equilibrium import is_nash_equilibrium
from repro.workloads.configs import paper_table1_system


def drifting_systems(n_episodes=4, base=0.5, step=0.05, n_users=4):
    """Slowly increasing load, as a periodically re-run NASH would see."""
    return [
        paper_table1_system(utilization=base + step * k, n_users=n_users)
        for k in range(n_episodes)
    ]


class TestDynamicBalancing:
    def test_every_episode_converges(self):
        result = run_dynamic_balancing(drifting_systems())
        assert result.all_converged
        assert len(result.episodes) == 4

    def test_episode_equilibria_verified(self):
        result = run_dynamic_balancing(drifting_systems(), tolerance=1e-9)
        for episode in result.episodes:
            assert is_nash_equilibrium(
                episode.system, episode.result.profile, tol=1e-5
            )

    def test_warm_start_saves_iterations(self):
        systems = drifting_systems(n_episodes=5, step=0.02)
        warm = run_dynamic_balancing(systems, warm_start=True)
        cold = run_dynamic_balancing(systems, warm_start=False)
        # After the first episode, warm starting from the neighbouring
        # equilibrium must not be slower overall.
        assert (
            warm.iterations_per_episode[1:].sum()
            <= cold.iterations_per_episode[1:].sum()
        )

    def test_first_episode_identical_regardless_of_warm_start(self):
        systems = drifting_systems(n_episodes=2)
        warm = run_dynamic_balancing(systems, warm_start=True)
        cold = run_dynamic_balancing(systems, warm_start=False)
        assert (
            warm.iterations_per_episode[0] == cold.iterations_per_episode[0]
        )

    def test_trajectory_shape(self):
        systems = drifting_systems(n_episodes=3, n_users=4)
        result = run_dynamic_balancing(systems)
        assert result.user_time_trajectory.shape == (3, 4)

    def test_rising_load_raises_times(self):
        result = run_dynamic_balancing(drifting_systems(step=0.08))
        trajectory = result.user_time_trajectory.mean(axis=1)
        assert np.all(np.diff(trajectory) > 0.0)

    def test_user_population_change_falls_back_to_cold(self):
        systems = [
            paper_table1_system(utilization=0.5, n_users=4),
            paper_table1_system(utilization=0.5, n_users=6),
        ]
        result = run_dynamic_balancing(systems, warm_start=True)
        assert result.all_converged
        assert result.episodes[1].result.profile.n_users == 6

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            run_dynamic_balancing([])

    def test_cold_init_choices(self):
        systems = drifting_systems(n_episodes=2)
        for init in ("zero", "proportional", "uniform"):
            result = run_dynamic_balancing(
                systems, warm_start=False, cold_init=init
            )
            assert result.all_converged
