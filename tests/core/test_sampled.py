"""Power-of-k sampled best replies (:mod:`repro.core.sampled`).

Pins the three contracts the sampled mode is built on:

* ``sample_k >= n`` is the exact solver, **bit for bit**, for every
  update order, in both the per-user and the class-space solver;
* sampling is deterministic in ``(seed, sweep, index)`` — identical
  draws in-process and across process-pool workers;
* the certificate's poll accounting is exact (``k`` per reply plus the
  honestly counted widening probes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classes import ClassNashSolver, aggregate_users
from repro.core.nash import NashSolver
from repro.core.sampled import (
    SampleCertificate,
    reply_set,
    sample_indices,
    sampled_best_reply,
    sampled_best_reply_batch,
    widen_reply_set,
)
from repro.core.waterfill import InfeasibleDemand
from repro.experiments.parallel import parallel_map
from repro.workloads.configs import paper_table1_system

ORDERS = ("roundrobin", "random", "simultaneous")


class TestSampleIndices:
    def test_deterministic(self):
        a = sample_indices(7, 3, 2, 50, 5)
        b = sample_indices(7, 3, 2, 50, 5)
        np.testing.assert_array_equal(a, b)

    def test_sorted_unique_in_range(self):
        idx = sample_indices(0, 0, 0, 40, 8)
        assert idx.size == 8
        assert np.all(np.diff(idx) > 0)
        assert idx.min() >= 0 and idx.max() < 40

    def test_varies_with_sweep_and_index(self):
        base = sample_indices(1, 0, 0, 1000, 4)
        assert not np.array_equal(base, sample_indices(1, 1, 0, 1000, 4))
        assert not np.array_equal(base, sample_indices(1, 0, 1, 1000, 4))

    def test_k_at_least_n_is_arange(self):
        for k in (10, 11, 99):
            np.testing.assert_array_equal(
                sample_indices(0, 0, 0, 10, k), np.arange(10)
            )

    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            sample_indices(0, 0, 0, 10, 0)


class TestReplySet:
    def test_union_of_support_and_sample(self):
        own = np.array([0.0, 2.0, 0.0, 1.0])
        chosen = reply_set(own, np.array([0, 1], dtype=np.intp))
        np.testing.assert_array_equal(chosen, [0, 1, 3])

    def test_empty_support_is_sample(self):
        chosen = reply_set(np.zeros(4), np.array([2], dtype=np.intp))
        np.testing.assert_array_equal(chosen, [2])


class TestWidenReplySet:
    def test_no_widening_when_capacity_covers_demand(self):
        available = np.full(10, 5.0)
        reply = np.array([0, 1], dtype=np.intp)
        widened, polls = widen_reply_set(
            reply, available, 4.0, seed=0, sweep=0, index=0
        )
        assert polls == 0
        np.testing.assert_array_equal(widened, reply)

    def test_widens_until_capacity_exceeds_demand(self):
        available = np.full(100, 1.0)
        reply = np.array([3], dtype=np.intp)
        widened, polls = widen_reply_set(
            reply, available, 10.0, seed=0, sweep=0, index=0
        )
        assert polls > 0
        assert float(available[widened].sum()) > 10.0

    def test_infeasible_demand_raises(self):
        available = np.full(8, 1.0)
        reply = np.array([0], dtype=np.intp)
        with pytest.raises(InfeasibleDemand):
            widen_reply_set(reply, available, 100.0, seed=0, sweep=0, index=0)


class TestSampledReply:
    def test_conserves_and_respects_reply_set(self):
        available = np.array([9.0, 7.0, 5.0, 3.0, 2.0, 1.0])
        own = np.array([0.0, 1.0, 0.0, 0.0, 0.5, 0.0])
        reply = sampled_best_reply(
            available, own, 2.0, seed=0, sweep=0, index=0, k=2
        )
        assert reply.flows.sum() == pytest.approx(2.0)
        off = np.setdiff1d(np.arange(6), reply.reply_set)
        assert np.all(reply.flows[off] == 0.0)
        assert np.all(reply.flows <= available + 1e-12)
        assert reply.polls >= 2

    def test_batch_matches_scalar_replies(self):
        rng = np.random.default_rng(3)
        available = rng.uniform(1.0, 10.0, size=(4, 12))
        own = np.zeros((4, 12))
        own[:, :2] = 0.3
        rates = np.array([1.0, 2.0, 0.5, 1.5])
        batch = sampled_best_reply_batch(
            available, own, rates, seed=5, sweep=2, k=3
        )
        for j in range(4):
            scalar = sampled_best_reply(
                available[j],
                own[j],
                float(rates[j]),
                seed=5,
                sweep=2,
                index=j,
                k=3,
            )
            np.testing.assert_allclose(batch.flows[j], scalar.flows, atol=1e-12)


class TestFullInformationParity:
    """``sample_k >= n`` takes the exact code path — bit-for-bit."""

    @pytest.mark.parametrize("order", ORDERS)
    def test_per_user_solver(self, order):
        system = paper_table1_system(utilization=0.6, n_users=5)
        n = system.n_computers
        exact = NashSolver(order=order, seed=3).solve(system)
        sampled = NashSolver(order=order, seed=3, sample_k=n).solve(system)
        np.testing.assert_array_equal(
            sampled.profile.fractions, exact.profile.fractions
        )
        np.testing.assert_array_equal(
            sampled.norm_history, exact.norm_history
        )
        assert sampled.iterations == exact.iterations
        assert exact.sample is None
        certificate = sampled.sample
        assert isinstance(certificate, SampleCertificate)
        assert certificate.full_information
        assert certificate.k == n
        assert certificate.polls == (
            sampled.iterations * system.n_users * n
        )

    @pytest.mark.parametrize("order", ORDERS)
    def test_class_solver(self, order):
        system = paper_table1_system(utilization=0.7, n_users=12)
        aggregation = aggregate_users(system)
        n = aggregation.n_computers
        exact = ClassNashSolver(order=order, seed=3).solve(aggregation)
        sampled = ClassNashSolver(order=order, seed=3, sample_k=n + 7).solve(
            aggregation
        )
        np.testing.assert_array_equal(
            sampled.class_fractions, exact.class_fractions
        )
        np.testing.assert_array_equal(
            sampled.norm_history, exact.norm_history
        )
        assert exact.sample is None
        certificate = sampled.sample
        assert certificate is not None
        assert certificate.full_information and certificate.k == n
        assert certificate.polls == (
            sampled.iterations * aggregation.n_classes * n
        )


class TestSampledSolve:
    def test_reaches_equilibrium_with_small_k(self):
        system = paper_table1_system(utilization=0.6, n_users=4)
        result = NashSolver(tolerance=1e-8, seed=1, sample_k=2).solve(system)
        assert result.converged
        certificate = result.sample
        assert certificate is not None
        assert not certificate.full_information
        assert certificate.epsilon < 1e-6

    def test_zero_init_widens_and_converges(self):
        system = paper_table1_system(utilization=0.6, n_users=4)
        result = NashSolver(tolerance=1e-8, seed=1, sample_k=2).solve(
            system, init="zero"
        )
        assert result.converged
        assert result.sample is not None
        # The cold start cannot carry the demand on 2 sampled computers
        # alone, so the widening scan must have paid extra polls.
        assert result.sample.polls > result.iterations * system.n_users * 2

    def test_poll_accounting_exact_without_widening(self):
        system = paper_table1_system(utilization=0.6, n_users=4)
        result = NashSolver(tolerance=1e-8, seed=1, sample_k=3).solve(system)
        certificate = result.sample
        assert certificate is not None
        # Proportional init keeps every reply feasible on support alone:
        # exactly k polls per reply, no widening.
        assert certificate.polls == result.iterations * system.n_users * 3

    def test_deterministic_rerun(self):
        system = paper_table1_system(utilization=0.6, n_users=4)
        first = NashSolver(seed=9, sample_k=2).solve(system)
        second = NashSolver(seed=9, sample_k=2).solve(system)
        np.testing.assert_array_equal(
            first.profile.fractions, second.profile.fractions
        )

    def test_class_sampled_certified(self):
        system = paper_table1_system(utilization=0.6, n_users=12)
        aggregation = aggregate_users(system)
        result = ClassNashSolver(
            tolerance=1e-8, seed=1, sample_k=2
        ).solve(aggregation, init="zero")
        certificate = result.sample
        assert certificate is not None
        assert certificate.epsilon < 1e-6
        assert certificate.k == 2


def _sampled_fractions(seed: int) -> bytes:
    """Top-level so the process-pool workers can unpickle it."""
    system = paper_table1_system(utilization=0.6, n_users=4)
    result = NashSolver(seed=seed, sample_k=2).solve(system)
    return np.ascontiguousarray(result.profile.fractions).tobytes()


class TestPoolDeterminism:
    def test_sampling_identical_across_pool_workers(self):
        seeds = [0, 1, 2, 3]
        serial = [_sampled_fractions(s) for s in seeds]
        pooled = parallel_map(_sampled_fractions, seeds, n_workers=2)
        assert pooled == serial
