"""Unit tests for the distributed system model (paper Sec. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile


class TestConstruction:
    def test_basic_shapes(self, two_by_two):
        assert two_by_two.n_computers == 2
        assert two_by_two.n_users == 2

    def test_rates_are_copied_and_readonly(self):
        mu = np.array([10.0, 5.0])
        phi = np.array([3.0])
        system = DistributedSystem(service_rates=mu, arrival_rates=phi)
        mu[0] = 999.0
        assert system.service_rates[0] == 10.0
        with pytest.raises(ValueError):
            system.service_rates[0] = 1.0

    def test_accepts_lists(self):
        system = DistributedSystem(service_rates=[1.0, 2.0], arrival_rates=[0.5])
        assert system.total_processing_rate == 3.0

    def test_rejects_nonpositive_service_rate(self):
        with pytest.raises(ValueError, match="service_rates"):
            DistributedSystem(service_rates=[10.0, 0.0], arrival_rates=[1.0])

    def test_rejects_negative_arrival_rate(self):
        with pytest.raises(ValueError, match="arrival_rates"):
            DistributedSystem(service_rates=[10.0], arrival_rates=[-1.0])

    def test_rejects_empty_computers(self):
        with pytest.raises(ValueError):
            DistributedSystem(service_rates=[], arrival_rates=[1.0])

    def test_rejects_empty_users(self):
        with pytest.raises(ValueError):
            DistributedSystem(service_rates=[10.0], arrival_rates=[])

    def test_rejects_nan_rates(self):
        with pytest.raises(ValueError):
            DistributedSystem(service_rates=[np.nan], arrival_rates=[1.0])

    def test_rejects_2d_rates(self):
        with pytest.raises(ValueError):
            DistributedSystem(
                service_rates=[[10.0, 5.0]], arrival_rates=[1.0]
            )

    def test_rejects_overloaded_system(self):
        with pytest.raises(ValueError, match="arrival rate"):
            DistributedSystem(service_rates=[1.0, 1.0], arrival_rates=[2.5])

    def test_rejects_exactly_critical_system(self):
        with pytest.raises(ValueError):
            DistributedSystem(service_rates=[1.0, 1.0], arrival_rates=[2.0])

    def test_default_names_generated(self, two_by_two):
        assert two_by_two.computer_names == ("computer-0", "computer-1")
        assert two_by_two.user_names == ("user-0", "user-1")

    def test_custom_names_validated(self):
        with pytest.raises(ValueError, match="computer_names"):
            DistributedSystem(
                service_rates=[10.0, 5.0],
                arrival_rates=[1.0],
                computer_names=("only-one",),
            )


class TestAggregates:
    def test_total_rates(self, two_by_two):
        assert two_by_two.total_processing_rate == 15.0
        assert two_by_two.total_arrival_rate == 6.0

    def test_system_utilization(self, two_by_two):
        assert two_by_two.system_utilization == pytest.approx(0.4)

    def test_speed_skewness(self, two_by_two):
        assert two_by_two.speed_skewness == pytest.approx(2.0)

    def test_speed_skewness_homogeneous(self):
        system = DistributedSystem(
            service_rates=[3.0, 3.0, 3.0], arrival_rates=[1.0]
        )
        assert system.speed_skewness == 1.0


class TestProfileQuantities:
    def test_loads_linear_in_fractions(self, two_by_two):
        s = np.array([[1.0, 0.0], [0.0, 1.0]])
        lam = two_by_two.loads(s)
        np.testing.assert_allclose(lam, [4.0, 2.0])

    def test_loads_shape_check(self, two_by_two):
        with pytest.raises(ValueError, match="shape"):
            two_by_two.loads(np.ones((3, 2)))

    def test_response_times_match_mm1(self, two_by_two):
        s = np.array([[0.5, 0.5], [0.5, 0.5]])
        lam = two_by_two.loads(s)
        # reprolint: allow=R003 independent oracle for the mm1-backed method
        expected = 1.0 / (two_by_two.service_rates - lam)
        np.testing.assert_allclose(two_by_two.response_times(s), expected)

    def test_response_times_reject_unstable(self, two_by_two):
        # Push all 6 jobs/sec to the 5 jobs/sec computer.
        s = np.array([[0.0, 1.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="stability"):
            two_by_two.response_times(s)

    def test_user_response_times_weighted_sum(self, two_by_two):
        s = np.array([[1.0, 0.0], [0.5, 0.5]])
        f = two_by_two.response_times(s)
        d = two_by_two.user_response_times(s)
        np.testing.assert_allclose(d, s @ f)

    def test_overall_time_is_traffic_weighted_mean(self, two_by_two):
        s = np.array([[0.7, 0.3], [0.2, 0.8]])
        d = two_by_two.user_response_times(s)
        phi = two_by_two.arrival_rates
        expected = (d @ phi) / phi.sum()
        assert two_by_two.overall_response_time(s) == pytest.approx(expected)

    def test_available_rates_subtract_only_others(self, two_by_two):
        s = np.array([[1.0, 0.0], [0.0, 1.0]])
        a0 = two_by_two.available_rates(s, 0)
        # User 0 sees mu minus user 1's flow (2 jobs/s on computer 1).
        np.testing.assert_allclose(a0, [10.0, 3.0])
        a1 = two_by_two.available_rates(s, 1)
        np.testing.assert_allclose(a1, [6.0, 5.0])

    def test_available_rates_bad_user(self, two_by_two):
        s = np.zeros((2, 2))
        with pytest.raises(IndexError):
            two_by_two.available_rates(s, 5)

    def test_subsystem_seen_by(self, two_by_two):
        s = np.array([[1.0, 0.0], [0.0, 1.0]])
        available, phi = two_by_two.subsystem_seen_by(s, 1)
        np.testing.assert_allclose(available, [6.0, 5.0])
        assert phi == 2.0


class TestDerivedSystems:
    def test_with_utilization_rescales(self, two_by_two):
        scaled = two_by_two.with_utilization(0.8)
        assert scaled.system_utilization == pytest.approx(0.8)
        # Relative user shares preserved (4:2).
        ratio = scaled.arrival_rates[0] / scaled.arrival_rates[1]
        assert ratio == pytest.approx(2.0)

    def test_with_utilization_bounds(self, two_by_two):
        with pytest.raises(ValueError):
            two_by_two.with_utilization(0.0)
        with pytest.raises(ValueError):
            two_by_two.with_utilization(1.0)

    def test_with_users_swaps_population(self, two_by_two):
        other = two_by_two.with_users([1.0, 2.0, 3.0])
        assert other.n_users == 3
        np.testing.assert_array_equal(other.service_rates, two_by_two.service_rates)

    def test_immutable_dataclass(self, two_by_two):
        with pytest.raises(AttributeError):
            two_by_two.service_rates = np.array([1.0])


class TestConsistencyWithStrategyProfile:
    def test_proportional_profile_equalizes_utilization(self, table1_medium):
        profile = StrategyProfile.proportional(table1_medium)
        lam = table1_medium.loads(profile.fractions)
        rho = lam / table1_medium.service_rates
        np.testing.assert_allclose(rho, table1_medium.system_utilization)
