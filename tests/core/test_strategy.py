"""Unit tests for strategy profiles and feasibility (paper Sec. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile


class TestConstruction:
    def test_copies_input(self):
        raw = np.array([[0.5, 0.5]])
        profile = StrategyProfile(raw)
        raw[0, 0] = 9.0
        assert profile.fractions[0, 0] == 0.5

    def test_readonly(self):
        profile = StrategyProfile(np.array([[0.5, 0.5]]))
        with pytest.raises(ValueError):
            profile.fractions[0, 0] = 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StrategyProfile(np.array([0.5, 0.5]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StrategyProfile(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            StrategyProfile(np.array([[np.nan, 1.0]]))

    def test_shapes(self):
        profile = StrategyProfile(np.zeros((3, 4)))
        assert profile.n_users == 3
        assert profile.n_computers == 4


class TestConstructors:
    def test_zeros_is_all_zero(self):
        profile = StrategyProfile.zeros(2, 3)
        assert profile.fractions.sum() == 0.0

    def test_zeros_violates_conservation(self):
        assert not StrategyProfile.zeros(2, 3).satisfies_conservation()

    def test_uniform_rows_sum_to_one(self):
        profile = StrategyProfile.uniform(4, 5)
        np.testing.assert_allclose(profile.fractions.sum(axis=1), 1.0)
        assert np.all(profile.fractions == 0.2)

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            StrategyProfile.zeros(0, 3)
        with pytest.raises(ValueError):
            StrategyProfile.uniform(3, 0)

    def test_proportional_matches_rates(self, two_by_two):
        profile = StrategyProfile.proportional(two_by_two)
        np.testing.assert_allclose(profile.fractions[0], [10 / 15, 5 / 15])
        np.testing.assert_allclose(profile.fractions[0], profile.fractions[1])

    def test_from_loads_fair_split(self, two_by_two):
        loads = np.array([4.0, 2.0])
        profile = StrategyProfile.from_loads(two_by_two, loads)
        np.testing.assert_allclose(
            two_by_two.loads(profile.fractions), loads
        )
        # Every user uses identical fractions.
        np.testing.assert_allclose(profile.fractions[0], profile.fractions[1])

    def test_from_loads_rejects_wrong_total(self, two_by_two):
        with pytest.raises(ValueError, match="sum"):
            StrategyProfile.from_loads(two_by_two, np.array([1.0, 1.0]))

    def test_from_loads_rejects_negative(self, two_by_two):
        with pytest.raises(ValueError, match="nonnegative"):
            StrategyProfile.from_loads(two_by_two, np.array([7.0, -1.0]))

    def test_from_loads_rejects_bad_shape(self, two_by_two):
        with pytest.raises(ValueError, match="one entry"):
            StrategyProfile.from_loads(two_by_two, np.array([6.0]))


class TestFeasibility:
    def test_uniform_feasible_when_stable(self, two_by_two):
        profile = StrategyProfile.uniform(2, 2)
        assert profile.is_feasible(two_by_two)
        profile.validate(two_by_two)  # must not raise

    def test_positivity_violation_detected(self, two_by_two):
        profile = StrategyProfile(np.array([[1.5, -0.5], [0.5, 0.5]]))
        assert not profile.satisfies_positivity()
        with pytest.raises(ValueError, match="positivity"):
            profile.validate(two_by_two)

    def test_conservation_violation_detected(self, two_by_two):
        profile = StrategyProfile(np.array([[0.4, 0.4], [0.5, 0.5]]))
        assert not profile.satisfies_conservation()
        with pytest.raises(ValueError, match="conservation"):
            profile.validate(two_by_two)

    def test_stability_violation_detected(self):
        system = DistributedSystem(
            service_rates=[10.0, 2.0], arrival_rates=[4.0, 4.0]
        )
        # All traffic on the slow computer: 8 > 2.
        profile = StrategyProfile(np.array([[0.0, 1.0], [0.0, 1.0]]))
        assert not profile.satisfies_stability(system)
        with pytest.raises(ValueError, match="stability"):
            profile.validate(system)

    def test_validate_shape_mismatch(self, two_by_two):
        profile = StrategyProfile.uniform(3, 2)
        with pytest.raises(ValueError, match="shape"):
            profile.validate(two_by_two)

    def test_tolerance_respected(self):
        profile = StrategyProfile(np.array([[0.5 + 1e-10, 0.5 - 1e-10]]))
        assert profile.satisfies_conservation()


class TestUpdatesAndAccess:
    def test_with_user_strategy_functional(self):
        base = StrategyProfile.uniform(2, 2)
        updated = base.with_user_strategy(0, [1.0, 0.0])
        assert base.fractions[0, 0] == 0.5  # unchanged
        assert updated.fractions[0, 0] == 1.0
        assert updated.fractions[1, 0] == 0.5  # other rows preserved

    def test_with_user_strategy_shape_check(self):
        base = StrategyProfile.uniform(2, 2)
        with pytest.raises(ValueError):
            base.with_user_strategy(0, [1.0, 0.0, 0.0])

    def test_user_strategy_view(self):
        profile = StrategyProfile(np.array([[0.3, 0.7], [1.0, 0.0]]))
        np.testing.assert_allclose(profile.user_strategy(1), [1.0, 0.0])

    def test_support(self):
        profile = StrategyProfile(np.array([[0.3, 0.0, 0.7]]))
        np.testing.assert_array_equal(profile.support(0), [0, 2])

    def test_distance_l1(self):
        a = StrategyProfile(np.array([[1.0, 0.0]]))
        b = StrategyProfile(np.array([[0.0, 1.0]]))
        assert a.distance_to(b) == pytest.approx(2.0)

    def test_distance_shape_mismatch(self):
        a = StrategyProfile.uniform(1, 2)
        b = StrategyProfile.uniform(2, 2)
        with pytest.raises(ValueError):
            a.distance_to(b)

    def test_equality_and_hash(self):
        a = StrategyProfile(np.array([[0.5, 0.5]]))
        b = StrategyProfile(np.array([[0.5, 0.5]]))
        c = StrategyProfile(np.array([[0.4, 0.6]]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a profile"


class TestPropertyBased:
    @given(
        fractions=hnp.arrays(
            dtype=float,
            shape=st.tuples(
                st.integers(1, 5), st.integers(1, 6)
            ),
            elements=st.floats(0.0, 1.0),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_row_normalized_matrices_conserve(self, fractions):
        sums = fractions.sum(axis=1)
        # Only rows with positive mass can be normalized.
        if np.any(sums <= 0.0):
            return
        profile = StrategyProfile(fractions / sums[:, None])
        assert profile.satisfies_conservation()
        assert profile.satisfies_positivity()

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_distance_is_a_metric_on_samples(self, data):
        shape = (2, 3)
        def draw_profile():
            raw = data.draw(
                hnp.arrays(
                    dtype=float, shape=shape, elements=st.floats(0.01, 1.0)
                )
            )
            return StrategyProfile(raw / raw.sum(axis=1, keepdims=True))

        a, b, c = draw_profile(), draw_profile(), draw_profile()
        assert a.distance_to(a) == 0.0
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-12
