"""Tests for best-reply dynamics under observation noise (ABL4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.uncertainty import NoisyNashSolver
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=4)


class TestConfiguration:
    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            NoisyNashSolver(noise=-0.1)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            NoisyNashSolver(smoothing=0.0)
        with pytest.raises(ValueError):
            NoisyNashSolver(smoothing=1.5)

    def test_rejects_bad_sweeps(self):
        with pytest.raises(ValueError):
            NoisyNashSolver(sweeps=0)

    def test_rejects_infeasible_start(self, system):
        with pytest.raises(ValueError, match="feasible"):
            NoisyNashSolver(sweeps=2).solve(system, init="zero")


class TestZeroNoiseLimit:
    def test_recovers_exact_dynamics(self, system):
        result = NoisyNashSolver(noise=0.0, sweeps=30, seed=1).solve(system)
        assert result.mean_final_regret < 1e-6
        assert result.projections == 0

    def test_profile_feasible(self, system):
        result = NoisyNashSolver(noise=0.0, sweeps=10).solve(system)
        result.profile.validate(system)


class TestNoisyBehaviour:
    def test_profile_stays_feasible_under_noise(self, system):
        for seed in range(3):
            result = NoisyNashSolver(
                noise=0.25, sweeps=25, seed=seed
            ).solve(system)
            result.profile.validate(system)

    def test_regret_plateau_scales_with_noise(self, system):
        regrets = [
            NoisyNashSolver(noise=noise, sweeps=30, seed=5)
            .solve(system)
            .mean_final_regret
            for noise in (0.0, 0.05, 0.2)
        ]
        assert regrets[0] < regrets[1] < regrets[2]

    def test_small_noise_small_neighbourhood(self, system):
        result = NoisyNashSolver(noise=0.05, sweeps=30, seed=2).solve(system)
        # Regret plateau well under the equilibrium times (~0.06 s).
        assert result.mean_final_regret < 0.01

    def test_smoothing_shrinks_the_neighbourhood(self, system):
        raw = NoisyNashSolver(noise=0.2, smoothing=1.0, sweeps=40, seed=5)
        ema = NoisyNashSolver(noise=0.2, smoothing=0.3, sweeps=40, seed=5)
        assert (
            ema.solve(system).mean_final_regret
            < raw.solve(system).mean_final_regret
        )

    def test_deterministic_given_seed(self, system):
        a = NoisyNashSolver(noise=0.1, sweeps=10, seed=9).solve(system)
        b = NoisyNashSolver(noise=0.1, sweeps=10, seed=9).solve(system)
        np.testing.assert_array_equal(
            a.profile.fractions, b.profile.fractions
        )
        np.testing.assert_array_equal(a.regret_history, b.regret_history)

    def test_history_length(self, system):
        result = NoisyNashSolver(noise=0.1, sweeps=17).solve(system)
        assert result.regret_history.size == 17
