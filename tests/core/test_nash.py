"""Tests for the NASH best-reply iteration (paper Sec. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import best_response_regrets, is_nash_equilibrium
from repro.core.model import DistributedSystem
from repro.core.nash import (
    NashSolver,
    compute_nash_equilibrium,
    initial_profile,
)
from repro.core.strategy import StrategyProfile
from repro.workloads.configs import paper_table1_system, random_system


class TestInitialProfile:
    def test_zero(self, two_by_two):
        profile = initial_profile(two_by_two, "zero")
        assert profile.fractions.sum() == 0.0

    def test_proportional(self, two_by_two):
        profile = initial_profile(two_by_two, "proportional")
        np.testing.assert_allclose(profile.fractions[0], [2 / 3, 1 / 3])

    def test_uniform(self, two_by_two):
        profile = initial_profile(two_by_two, "uniform")
        assert np.all(profile.fractions == 0.5)

    def test_custom_profile_passthrough(self, two_by_two):
        custom = StrategyProfile(np.array([[0.9, 0.1], [0.2, 0.8]]))
        assert initial_profile(two_by_two, custom) is custom

    def test_custom_profile_shape_checked(self, two_by_two):
        with pytest.raises(ValueError):
            initial_profile(two_by_two, StrategyProfile.uniform(3, 2))

    def test_unknown_init_rejected(self, two_by_two):
        with pytest.raises(ValueError, match="unknown"):
            initial_profile(two_by_two, "magic")


class TestSolverConfig:
    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            NashSolver(tolerance=0.0)

    def test_rejects_bad_sweeps(self):
        with pytest.raises(ValueError):
            NashSolver(max_sweeps=0)


class TestConvergence:
    def test_converges_on_table1(self, table1_medium):
        result = compute_nash_equilibrium(table1_medium)
        assert result.converged
        assert result.final_norm <= 1e-6

    def test_result_is_feasible(self, table1_medium):
        result = compute_nash_equilibrium(table1_medium)
        result.profile.validate(table1_medium)

    def test_result_is_equilibrium(self, table1_medium):
        result = compute_nash_equilibrium(table1_medium, tolerance=1e-10)
        assert is_nash_equilibrium(table1_medium, result.profile, tol=1e-6)

    def test_zero_and_proportional_reach_same_equilibrium(self, table1_small):
        zero = compute_nash_equilibrium(
            table1_small, init="zero", tolerance=1e-10
        )
        prop = compute_nash_equilibrium(
            table1_small, init="proportional", tolerance=1e-10
        )
        assert zero.profile.distance_to(prop.profile) < 1e-4
        np.testing.assert_allclose(
            zero.user_times, prop.user_times, rtol=1e-6
        )

    def test_norm_history_matches_iterations(self, table1_small):
        result = compute_nash_equilibrium(table1_small)
        assert result.norm_history.size == result.iterations

    def test_norm_history_eventually_below_tolerance(self, table1_small):
        result = compute_nash_equilibrium(table1_small, tolerance=1e-5)
        assert result.norm_history[-1] <= 1e-5
        assert np.all(result.norm_history[:-1] > 1e-5)

    def test_sweep_budget_respected(self, table1_medium):
        result = compute_nash_equilibrium(
            table1_medium, init="zero", tolerance=1e-12, max_sweeps=3
        )
        assert not result.converged
        assert result.iterations == 3

    def test_record_history(self, table1_small):
        result = compute_nash_equilibrium(table1_small, record_history=True)
        assert len(result.profile_history) == result.iterations
        last = result.profile_history[-1]
        np.testing.assert_array_equal(
            last.fractions, result.profile.fractions
        )

    def test_history_off_by_default(self, table1_small):
        result = compute_nash_equilibrium(table1_small)
        assert result.profile_history == ()

    def test_user_times_consistent(self, table1_medium):
        result = compute_nash_equilibrium(table1_medium)
        np.testing.assert_allclose(
            result.user_times,
            table1_medium.user_response_times(result.profile.fractions),
        )

    def test_single_user_converges_immediately(self, single_user):
        result = compute_nash_equilibrium(single_user, init="zero")
        # Sweep 1 finds the optimum; sweep 2 confirms (zero norm).
        assert result.converged
        assert result.iterations <= 2

    def test_two_user_game(self, two_by_two):
        result = compute_nash_equilibrium(two_by_two, tolerance=1e-10)
        assert result.converged
        assert is_nash_equilibrium(two_by_two, result.profile, tol=1e-7)

    def test_warm_start_from_equilibrium_is_instant(self, table1_small):
        first = compute_nash_equilibrium(table1_small, tolerance=1e-9)
        again = compute_nash_equilibrium(
            table1_small, init=first.profile, tolerance=1e-6
        )
        assert again.converged
        assert again.iterations == 1

    def test_proportional_never_slower_than_zero(self):
        """NASH_P <= NASH_0 iterations — the claim of Figures 2-3."""
        for m in (4, 8, 16):
            system = paper_table1_system(utilization=0.6, n_users=m)
            zero = compute_nash_equilibrium(system, init="zero", tolerance=1e-4)
            prop = compute_nash_equilibrium(
                system, init="proportional", tolerance=1e-4
            )
            assert prop.iterations <= zero.iterations

    def test_converges_on_random_systems(self, rng):
        """The paper's open-problem hypothesis: convergence for m > 2."""
        for _ in range(5):
            system = random_system(rng, n_computers=8, n_users=5)
            result = compute_nash_equilibrium(system, tolerance=1e-7)
            assert result.converged
            cert = best_response_regrets(system, result.profile)
            assert cert.epsilon <= 1e-4

    def test_high_load_still_converges(self):
        system = paper_table1_system(utilization=0.9)
        result = compute_nash_equilibrium(system, max_sweeps=3000)
        assert result.converged
        result.profile.validate(system)

    def test_asymmetric_users(self):
        system = DistributedSystem(
            service_rates=[20.0, 10.0, 5.0],
            arrival_rates=[12.0, 6.0, 2.0],
        )
        result = compute_nash_equilibrium(system, tolerance=1e-10)
        assert result.converged
        # Heavier users cannot beat lighter users' times (they congest
        # themselves more): D_j nondecreasing in phi_j.
        times = result.user_times
        assert times[0] >= times[1] - 1e-9
        assert times[1] >= times[2] - 1e-9
