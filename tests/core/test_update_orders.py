"""Tests for best-reply update schedules (ABL3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash_equilibrium
from repro.core.nash import NashSolver
from repro.workloads.configs import paper_table1_system


@pytest.fixture(scope="module")
def system():
    return paper_table1_system(utilization=0.6, n_users=6)


class TestOrders:
    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            NashSolver(order="chaotic")  # type: ignore[arg-type]

    def test_roundrobin_is_default(self):
        assert NashSolver().order == "roundrobin"

    def test_random_order_converges_to_same_equilibrium(self, system):
        rr = NashSolver(tolerance=1e-9).solve(system)
        rand = NashSolver(tolerance=1e-9, order="random", seed=3).solve(system)
        assert rand.converged
        np.testing.assert_allclose(
            rr.user_times, rand.user_times, rtol=1e-5
        )
        assert is_nash_equilibrium(system, rand.profile, tol=1e-5)

    def test_random_order_seed_dependence(self, system):
        a = NashSolver(tolerance=1e-6, order="random", seed=1).solve(system)
        b = NashSolver(tolerance=1e-6, order="random", seed=2).solve(system)
        # Different schedules, same equilibrium.
        np.testing.assert_allclose(a.user_times, b.user_times, rtol=1e-4)

    def test_random_order_reproducible(self, system):
        a = NashSolver(tolerance=1e-6, order="random", seed=4).solve(system)
        b = NashSolver(tolerance=1e-6, order="random", seed=4).solve(system)
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(
            a.profile.fractions, b.profile.fractions
        )

    def test_simultaneous_oscillates_on_many_users(self):
        """Jacobi updates herd onto the fast computers and never settle —
        why the paper's algorithm serializes updates round-robin."""
        crowded = paper_table1_system(utilization=0.6, n_users=10)
        result = NashSolver(
            order="simultaneous", tolerance=1e-6, max_sweeps=200
        ).solve(crowded)
        assert not result.converged
        # The oscillation has a persistent norm floor.
        assert result.norm_history[-1] > 1e-3

    def test_simultaneous_fine_for_single_user(self, single_user):
        result = NashSolver(order="simultaneous", tolerance=1e-9).solve(
            single_user
        )
        assert result.converged

    def test_simultaneous_failure_reports_inf_times(self):
        crowded = paper_table1_system(utilization=0.9, n_users=10)
        result = NashSolver(
            order="simultaneous", tolerance=1e-9, max_sweeps=50
        ).solve(crowded)
        if not np.all(np.isfinite(result.user_times)):
            assert not result.converged
