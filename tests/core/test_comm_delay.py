"""Tests for the communication-delay game extension (EXT4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import optimal_fractions
from repro.core.comm_delay import (
    DelayedGame,
    DelayedNashSolver,
    delayed_best_response,
)
from repro.core.nash import compute_nash_equilibrium
from repro.core.strategy import StrategyProfile
from repro.workloads.configs import paper_table1_system


def delayed_cost(available, delays, fractions, job_rate):
    x = np.asarray(fractions) * job_rate
    used = x > 0
    # reprolint: allow=R003 independent oracle, deliberately not via repro.queueing
    queueing = (np.asarray(fractions)[used] / (available[used] - x[used])).sum()
    shipping = float((np.asarray(fractions) * delays).sum())
    return float(queueing) + shipping


class TestDelayedBestResponse:
    def test_zero_delay_reduces_to_optimal(self):
        a = np.array([20.0, 10.0, 5.0])
        with_delay = delayed_best_response(a, np.zeros(3), 12.0)
        plain = optimal_fractions(a, 12.0).fractions
        np.testing.assert_allclose(with_delay, plain, atol=1e-10)

    def test_fractions_form_distribution(self):
        a = np.array([15.0, 8.0, 4.0])
        t = np.array([0.0, 0.1, 0.3])
        f = delayed_best_response(a, t, 10.0)
        assert f.sum() == pytest.approx(1.0)
        assert np.all(f >= 0.0)

    def test_result_stable(self):
        a = np.array([15.0, 8.0, 4.0])
        t = np.array([0.05, 0.0, 0.2])
        f = delayed_best_response(a, t, 12.0)
        assert np.all(f * 12.0 < a)

    def test_delay_repels_traffic(self):
        a = np.array([10.0, 10.0])
        no_delay = delayed_best_response(a, np.zeros(2), 8.0)
        assert no_delay[0] == pytest.approx(0.5)
        penalized = delayed_best_response(a, np.array([0.5, 0.0]), 8.0)
        assert penalized[0] < 0.5

    def test_huge_delay_excludes_computer(self):
        a = np.array([10.0, 10.0])
        f = delayed_best_response(a, np.array([1e6, 0.0]), 4.0)
        assert f[0] == 0.0
        assert f[1] == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy import optimize

        a = np.array([14.0, 9.0, 5.0])
        t = np.array([0.02, 0.08, 0.0])
        rate = 10.0

        def objective(s):
            s = np.clip(s, 1e-15, None)
            return delayed_cost(a, t, s, rate)

        solution = optimize.minimize(
            objective,
            x0=np.full(3, 1.0 / 3.0),
            bounds=[(0.0, min(1.0, ai / rate * (1 - 1e-9))) for ai in a],
            constraints=[{"type": "eq", "fun": lambda s: s.sum() - 1.0}],
            method="SLSQP",
            options={"ftol": 1e-14, "maxiter": 500},
        )
        mine = delayed_best_response(a, t, rate)
        assert delayed_cost(a, t, mine, rate) <= solution.fun + 1e-8

    def test_validation(self):
        with pytest.raises(ValueError):
            delayed_best_response([10.0], [0.0, 0.0], 1.0)
        with pytest.raises(ValueError):
            delayed_best_response([10.0], [0.0], 0.0)
        with pytest.raises(ValueError):
            delayed_best_response([1.0], [0.0], 2.0)

    @given(
        st.lists(st.floats(1.0, 50.0), min_size=2, max_size=6),
        st.lists(st.floats(0.0, 0.5), min_size=2, max_size=6),
        st.floats(0.1, 0.8),
    )
    @settings(max_examples=60, deadline=None)
    def test_beats_uniform_generically(self, rates, delays, frac):
        n = min(len(rates), len(delays))
        a = np.asarray(rates[:n])
        t = np.asarray(delays[:n])
        job_rate = frac * a.sum()
        best = delayed_best_response(a, t, job_rate)
        uniform = np.full(n, 1.0 / n)
        if np.all(uniform * job_rate < a):
            assert delayed_cost(a, t, best, job_rate) <= (
                delayed_cost(a, t, uniform, job_rate) + 1e-9
            )


class TestDelayedGame:
    @pytest.fixture(scope="class")
    def system(self):
        return paper_table1_system(utilization=0.6, n_users=4)

    def test_delay_broadcasting(self, system):
        game = DelayedGame(system, np.full(system.n_computers, 0.1))
        assert game.delays.shape == (4, 16)

    def test_delay_validation(self, system):
        with pytest.raises(ValueError):
            DelayedGame(system, np.full((2, 16), 0.1))
        with pytest.raises(ValueError):
            DelayedGame(system, np.full((4, 16), -0.1))

    def test_zero_delay_game_matches_plain_nash(self, system):
        game = DelayedGame(system, np.zeros((4, 16)))
        delayed = DelayedNashSolver(tolerance=1e-9).solve(game)
        plain = compute_nash_equilibrium(system, tolerance=1e-9)
        np.testing.assert_allclose(
            delayed.user_costs, plain.user_times, rtol=1e-6
        )

    def test_converges_with_random_delays(self, system, rng):
        delays = rng.uniform(0.0, 0.05, size=(4, 16))
        game = DelayedGame(system, delays)
        result = DelayedNashSolver().solve(game)
        assert result.converged
        result.profile.validate(system)

    def test_equilibrium_no_profitable_deviation(self, system, rng):
        delays = rng.uniform(0.0, 0.03, size=(4, 16))
        game = DelayedGame(system, delays)
        result = DelayedNashSolver(tolerance=1e-10).solve(game)
        for j in range(4):
            available = system.available_rates(result.profile.fractions, j)
            reply = delayed_best_response(
                available, delays[j], float(system.arrival_rates[j])
            )
            cost_now = result.user_costs[j]
            cost_reply = delayed_cost(
                available, delays[j], reply, float(system.arrival_rates[j])
            )
            assert cost_now <= cost_reply + 1e-6

    def test_uniform_delay_shifts_costs_uniformly(self, system):
        """A constant delay added everywhere cannot change the equilibrium
        routing — only everyone's cost, by exactly that delay."""
        base = DelayedNashSolver(tolerance=1e-9).solve(
            DelayedGame(system, np.zeros((4, 16)))
        )
        shifted = DelayedNashSolver(tolerance=1e-9).solve(
            DelayedGame(system, np.full((4, 16), 0.25))
        )
        np.testing.assert_allclose(
            shifted.user_costs, base.user_costs + 0.25, rtol=1e-6
        )
        np.testing.assert_allclose(
            shifted.profile.fractions, base.profile.fractions, atol=1e-6
        )

    def test_overall_cost_weighted(self, system):
        game = DelayedGame(system, np.full((4, 16), 0.1))
        profile = StrategyProfile.proportional(system)
        expected = float(
            game.user_costs(profile) @ system.arrival_rates
            / system.total_arrival_rate
        )
        assert game.overall_cost(profile) == pytest.approx(expected)

    def test_solver_validation(self):
        with pytest.raises(ValueError):
            DelayedNashSolver(tolerance=0.0)
        with pytest.raises(ValueError):
            DelayedNashSolver(max_sweeps=0)
