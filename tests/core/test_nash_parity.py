"""Parity between the vectorized solver and the frozen reference driver.

The production :class:`~repro.core.nash.NashSolver` maintains the
aggregate load incrementally and batches the Jacobi sweep; the frozen
:func:`~repro.core.reference.reference_solve` recomputes everything from
scratch.  On the paper's configurations (and randomized systems) the two
must agree on norm histories, iteration counts and final profiles for
every update order — the guarantee that the optimization changed the
cost, not the algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import best_response_regrets
from repro.core.best_response import best_response
from repro.core.model import DistributedSystem
from repro.core.nash import NashSolver
from repro.core.reference import reference_solve
from repro.workloads import paper_table1_system

ORDERS = ("roundrobin", "random", "simultaneous")


def assert_parity(system, *, order, init="proportional", max_sweeps=500):
    solver = NashSolver(order=order, max_sweeps=max_sweeps, record_history=True)
    fast = solver.solve(system, init)
    slow = reference_solve(
        system, init, order=order, max_sweeps=max_sweeps, record_history=True
    )
    assert fast.iterations == slow.iterations
    assert fast.converged == slow.converged
    np.testing.assert_allclose(
        fast.norm_history, slow.norm_history, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(
        fast.profile.fractions, slow.profile.fractions, atol=1e-10
    )
    for fast_p, slow_p in zip(fast.profile_history, slow.profile_history):
        np.testing.assert_allclose(
            fast_p.fractions, slow_p.fractions, atol=1e-10
        )


class TestSolverParityTable1:
    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("utilization", [0.3, 0.6, 0.9])
    def test_table1_parity(self, order, utilization):
        system = paper_table1_system(utilization=utilization)
        # The Jacobi order can oscillate at high load; cap its budget so
        # both solvers walk the same fixed number of sweeps.
        max_sweeps = 40 if order == "simultaneous" else 500
        assert_parity(system, order=order, max_sweeps=max_sweeps)

    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("init", ["zero", "proportional"])
    def test_initializations(self, table1_small, order, init):
        max_sweeps = 40 if order == "simultaneous" else 500
        assert_parity(table1_small, order=order, init=init, max_sweeps=max_sweeps)

    def test_randomized_heterogeneous_system(self, rng):
        mu = rng.uniform(5.0, 120.0, size=11)
        phi = rng.uniform(0.2, 2.0, size=23)
        phi *= 0.7 * mu.sum() / phi.sum()
        system = DistributedSystem(service_rates=mu, arrival_rates=phi)
        for order in ORDERS:
            max_sweeps = 25 if order == "simultaneous" else 500
            assert_parity(system, order=order, max_sweeps=max_sweeps)


class TestRegretsVectorizationParity:
    def test_certificate_matches_per_user_loop(self, table1_medium):
        result = NashSolver().solve(table1_medium)
        cert = best_response_regrets(table1_medium, result.profile)
        looped = np.array(
            [
                best_response(
                    table1_medium, result.profile, j
                ).expected_response_time
                for j in range(table1_medium.n_users)
            ]
        )
        np.testing.assert_allclose(
            cert.best_response_times, looped, rtol=1e-12
        )
        assert cert.epsilon <= 1e-5
