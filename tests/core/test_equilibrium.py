"""Tests for equilibrium verification (paper Def. 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import (
    best_response_regrets,
    is_nash_equilibrium,
    verify_equilibrium,
)
from repro.core.nash import compute_nash_equilibrium
from repro.core.strategy import StrategyProfile


class TestCertificates:
    def test_equilibrium_has_tiny_regret(self, table1_small):
        result = compute_nash_equilibrium(table1_small, tolerance=1e-10)
        cert = best_response_regrets(table1_small, result.profile)
        assert cert.epsilon <= 1e-7
        assert np.all(cert.regrets >= -1e-12)

    def test_proportional_profile_has_positive_regret(self, table1_small):
        profile = StrategyProfile.proportional(table1_small)
        cert = best_response_regrets(table1_small, profile)
        assert cert.epsilon > 1e-3

    def test_regret_components_consistent(self, table1_small):
        profile = StrategyProfile.proportional(table1_small)
        cert = best_response_regrets(table1_small, profile)
        np.testing.assert_allclose(
            cert.regrets, cert.user_times - cert.best_response_times
        )

    def test_best_response_times_are_lower_bounds(self, table1_small):
        profile = StrategyProfile.proportional(table1_small)
        cert = best_response_regrets(table1_small, profile)
        assert np.all(cert.best_response_times <= cert.user_times + 1e-12)

    def test_is_equilibrium_threshold(self, table1_small):
        profile = StrategyProfile.proportional(table1_small)
        cert = best_response_regrets(table1_small, profile)
        assert cert.is_equilibrium(cert.epsilon + 1e-12)
        assert not cert.is_equilibrium(cert.epsilon / 2.0)

    def test_requires_feasible_profile(self, table1_small):
        with pytest.raises(ValueError):
            best_response_regrets(
                table1_small,
                StrategyProfile.zeros(
                    table1_small.n_users, table1_small.n_computers
                ),
            )


class TestVerifyHelpers:
    def test_verify_passes_on_equilibrium(self, table1_small):
        result = compute_nash_equilibrium(table1_small, tolerance=1e-10)
        cert = verify_equilibrium(table1_small, result.profile, tol=1e-6)
        assert cert.epsilon <= 1e-6

    def test_verify_raises_with_user_index(self, table1_small):
        profile = StrategyProfile.proportional(table1_small)
        with pytest.raises(ValueError, match="user"):
            verify_equilibrium(table1_small, profile, tol=1e-9)

    def test_predicate_forms(self, table1_small):
        result = compute_nash_equilibrium(table1_small, tolerance=1e-10)
        assert is_nash_equilibrium(table1_small, result.profile, tol=1e-6)
        proportional = StrategyProfile.proportional(table1_small)
        assert not is_nash_equilibrium(table1_small, proportional, tol=1e-9)

    def test_single_user_optimum_is_equilibrium(self, single_user):
        result = compute_nash_equilibrium(single_user)
        assert is_nash_equilibrium(single_user, result.profile, tol=1e-9)
