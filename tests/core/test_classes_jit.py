"""Tests for the optional JIT water-fill kernel and its numpy fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classes import ClassNashSolver, aggregate_users
from repro.core.jit import (
    class_sweep_inplace,
    jit_available,
    jit_requested,
    resolve_backend,
    sweep_kernel,
)
from repro.workloads.configs import paper_table1_system


class TestEnvFlag:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JIT", value)
        assert jit_requested()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "banana"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JIT", value)
        assert not jit_requested()

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert not jit_requested()


class TestResolveBackend:
    def test_explicit_false_is_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        assert resolve_backend(False) == "numpy"

    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert resolve_backend(None) == "numpy"

    def test_requesting_jit_without_numba_degrades(self, monkeypatch):
        if jit_available():
            pytest.skip("numba installed; fallback path not reachable")
        assert resolve_backend(True) == "numpy"

    def test_env_request_without_numba_degrades(self, monkeypatch):
        if jit_available():
            pytest.skip("numba installed; fallback path not reachable")
        monkeypatch.setenv("REPRO_JIT", "1")
        assert resolve_backend(None) == "numpy"

    def test_numpy_backend_has_no_kernel(self):
        assert sweep_kernel("numpy") is None


class TestFallbackBitIdentity:
    def test_use_jit_true_matches_false_without_numba(self):
        # With numba absent, use_jit=True must be *bit-identical* to the
        # plain numpy path — same backend resolution, same kernel.
        if jit_available():
            pytest.skip("numba installed; exercising the absent-numba path")
        agg = aggregate_users(paper_table1_system(n_users=16))
        plain = ClassNashSolver(use_jit=False).solve(agg, "proportional")
        fallback = ClassNashSolver(use_jit=True).solve(agg, "proportional")
        assert fallback.backend == "numpy"
        assert fallback.iterations == plain.iterations
        np.testing.assert_array_equal(
            fallback.class_fractions, plain.class_fractions
        )
        np.testing.assert_array_equal(
            np.asarray(fallback.norm_history), np.asarray(plain.norm_history)
        )


class TestPythonModeKernel:
    """class_sweep_inplace run as plain Python (no numba required)."""

    def _solve_with_kernel(self, agg, max_sweeps=500, tolerance=1e-9):
        c, n = agg.n_classes, agg.n_computers
        mu = agg.service_rates
        rates = agg.class_rates
        counts = agg.counts.astype(float)
        demands = agg.demands
        flows = agg.proportional_fractions() * agg.demands[:, None]
        lam = flows.sum(axis=0)
        last = np.zeros(c)
        schedule = np.arange(c, dtype=np.intp)
        for sweep in range(max_sweeps):
            norm = class_sweep_inplace(
                mu, rates, counts, demands, flows, lam, last, schedule
            )
            assert norm >= 0.0
            if norm <= tolerance:
                return flows / agg.demands[:, None], sweep + 1
        raise AssertionError("kernel iteration did not converge")

    def test_matches_solver_at_tolerance(self):
        agg = aggregate_users(paper_table1_system(n_users=12))
        fractions, iters = self._solve_with_kernel(agg)
        reference = ClassNashSolver(tolerance=1e-9).solve(
            agg, "proportional"
        )
        np.testing.assert_allclose(
            fractions, reference.class_fractions, atol=1e-7
        )

    def test_multi_class_system(self):
        rng = np.random.default_rng(31)
        mu = rng.uniform(20.0, 50.0, size=6)
        rates = np.array([0.5, 1.0, 2.0])
        counts = np.array([4, 3, 2])
        phi = np.repeat(rates, counts)
        phi *= 0.65 * mu.sum() / phi.sum()
        from repro.core.model import DistributedSystem

        system = DistributedSystem(service_rates=mu, arrival_rates=phi)
        agg = aggregate_users(system)
        fractions, _ = self._solve_with_kernel(agg)
        from repro.core.classes import class_best_response_regrets

        cert = class_best_response_regrets(agg, fractions)
        assert cert.epsilon <= 1e-6

    def test_infeasible_returns_sentinel(self):
        mu = np.array([2.0, 1.0])
        rates = np.array([5.0])
        counts = np.array([1.0])
        demands = np.array([5.0])
        flows = np.zeros((1, 2))
        lam = np.zeros(2)
        last = np.zeros(1)
        schedule = np.zeros(1, dtype=np.intp)
        norm = class_sweep_inplace(
            mu, rates, counts, demands, flows, lam, last, schedule
        )
        assert norm == -1.0


@pytest.mark.skipif(not jit_available(), reason="numba not installed")
class TestCompiledKernel:
    def test_compiled_matches_python_mode(self):
        kernel = sweep_kernel("numba")
        assert kernel is not None
        agg = aggregate_users(paper_table1_system(n_users=12))
        args_py = self._fresh_state(agg)
        args_nb = self._fresh_state(agg)
        norm_py = class_sweep_inplace(*args_py)
        norm_nb = kernel(*args_nb)
        assert norm_py == norm_nb
        np.testing.assert_array_equal(args_py[3], args_nb[3])

    @staticmethod
    def _fresh_state(agg):
        flows = agg.proportional_fractions() * agg.demands[:, None]
        return (
            agg.service_rates,
            agg.class_rates,
            agg.counts.astype(float),
            agg.demands,
            flows,
            flows.sum(axis=0),
            np.zeros(agg.n_classes),
            np.arange(agg.n_classes, dtype=np.intp),
        )
