"""Tests for the truthful load allocation mechanism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanism import (
    agent_utility,
    allocate_for_bids,
    run_mechanism,
    truthful_payment,
    work_curve,
    work_curve_cutoff,
)

MU = np.array([100.0, 50.0, 20.0, 10.0])
COSTS = 1.0 / MU
DEMAND = 60.0  # below sum(mu) - max(mu): nobody is indispensable


class TestAllocation:
    def test_matches_gos_waterfill(self):
        from repro.core.waterfill import sqrt_waterfill

        loads = allocate_for_bids(COSTS, DEMAND)
        expected = sqrt_waterfill(MU, DEMAND).loads
        np.testing.assert_allclose(loads, expected, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_for_bids([-1.0, 0.1], 1.0)
        with pytest.raises(ValueError):
            allocate_for_bids([1.0, 1.0], 3.0)
        with pytest.raises(ValueError):
            allocate_for_bids([1.0], -1.0)

    def test_work_curve_monotone_in_bid(self):
        """The Archer-Tardos prerequisite: claiming slower never earns
        more work."""
        bids = np.linspace(0.5 * COSTS[0], 20 * COSTS[0], 40)
        works = [work_curve(0, b, COSTS, DEMAND) for b in bids]
        assert all(a >= b - 1e-9 for a, b in zip(works, works[1:]))

    def test_cutoff_brackets_support_exit(self):
        cutoff = work_curve_cutoff(0, COSTS, DEMAND)
        assert work_curve(0, cutoff * 1.01, COSTS, DEMAND) <= 1e-9
        assert work_curve(0, cutoff * 0.99, COSTS, DEMAND) > 0.0

    def test_cutoff_infinite_for_monopolist(self):
        # Demand that the others cannot absorb without computer 0.
        assert work_curve_cutoff(0, COSTS, 100.0) == float("inf")

    def test_monopolist_payment_rejected(self):
        with pytest.raises(ValueError, match="indispensable"):
            truthful_payment(0, COSTS, 100.0)


class TestTruthfulness:
    def test_truth_dominates_fixed_deviations(self):
        for index in range(MU.size):
            truth = agent_utility(index, COSTS[index], COSTS, DEMAND)
            for factor in (0.5, 0.8, 1.25, 2.0, 5.0):
                bids = COSTS.copy()
                bids[index] *= factor
                lie = agent_utility(index, COSTS[index], bids, DEMAND)
                assert lie <= truth + 1e-7

    @given(
        st.integers(0, 3),
        st.floats(0.3, 6.0),
        st.floats(0.1, 0.9),
    )
    @settings(max_examples=30, deadline=None)
    def test_truth_dominates_generically(self, index, factor, load_frac):
        demand = load_frac * (MU.sum() - MU.max()) * 0.95
        truth = agent_utility(index, COSTS[index], COSTS, demand)
        bids = COSTS.copy()
        bids[index] *= factor
        lie = agent_utility(index, COSTS[index], bids, demand)
        assert lie <= truth + 1e-6

    def test_voluntary_participation(self):
        outcome = run_mechanism(COSTS, DEMAND)
        assert np.all(outcome.utilities >= -1e-9)

    def test_truth_dominates_under_others_lies(self):
        """Dominant strategy: truth is best even when others lie.

        Lies are kept moderate (x0.7..x1.5) and the demand low enough
        that no computer becomes indispensable under the *claimed* rates
        (otherwise the payment is unbounded by construction).
        """
        rng = np.random.default_rng(5)
        demand = 30.0
        for _ in range(5):
            others = COSTS * rng.uniform(0.7, 1.5, size=COSTS.size)
            for index in range(COSTS.size):
                base = others.copy()
                base[index] = COSTS[index]
                truth = agent_utility(index, COSTS[index], base, demand)
                lie_bids = base.copy()
                lie_bids[index] *= rng.uniform(0.7, 1.5)
                lie = agent_utility(index, COSTS[index], lie_bids, demand)
                assert lie <= truth + 1e-6


class TestMechanismOutcome:
    def test_loads_conserve_demand(self):
        outcome = run_mechanism(COSTS, DEMAND)
        assert outcome.loads.sum() == pytest.approx(DEMAND)

    def test_unallocated_computers_unpaid(self):
        outcome = run_mechanism(COSTS, DEMAND)
        idle = outcome.loads == 0.0  # reprolint: allow=R002 exact-sentinel mask
        np.testing.assert_array_equal(outcome.payments[idle], 0.0)

    def test_payments_cover_costs(self):
        outcome = run_mechanism(COSTS, DEMAND)
        busy = outcome.loads > 0.0
        assert np.all(
            outcome.payments[busy] >= COSTS[busy] * outcome.loads[busy] - 1e-9
        )

    def test_overpayment_ratio_above_one(self):
        outcome = run_mechanism(COSTS, DEMAND)
        assert outcome.overpayment_ratio >= 1.0

    def test_lying_changes_allocation(self):
        bids = COSTS.copy()
        bids[0] *= 3.0  # fastest machine claims to be slow
        lied = run_mechanism(COSTS, DEMAND, bids=bids)
        honest = run_mechanism(COSTS, DEMAND)
        assert lied.loads[0] < honest.loads[0]

    def test_bid_shape_validated(self):
        with pytest.raises(ValueError):
            run_mechanism(COSTS, DEMAND, bids=COSTS[:2])
