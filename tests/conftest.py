"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import DistributedSystem
from repro.workloads.configs import paper_table1_system


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need random inputs."""
    return np.random.default_rng(20020415)  # the paper's publication date


@pytest.fixture
def two_by_two() -> DistributedSystem:
    """Minimal heterogeneous system: 2 computers, 2 users, 40% load."""
    return DistributedSystem(service_rates=[10.0, 5.0], arrival_rates=[4.0, 2.0])


@pytest.fixture
def single_user() -> DistributedSystem:
    """One user over three heterogeneous computers."""
    return DistributedSystem(
        service_rates=[8.0, 4.0, 2.0], arrival_rates=[5.0]
    )


@pytest.fixture
def table1_medium() -> DistributedSystem:
    """The paper's Table-1 system at the 60% medium load."""
    return paper_table1_system(utilization=0.6)


@pytest.fixture
def table1_small() -> DistributedSystem:
    """Table-1 computers with a small user population for fast solves."""
    return paper_table1_system(utilization=0.5, n_users=4)
