"""Run the docstring examples of the public modules as tests."""

from __future__ import annotations

import doctest

import pytest

import repro.core.continuation
import repro.core.degradation
import repro.core.model
import repro.core.nash
import repro.distributed.failure_detector
import repro.experiments.ascii_plot
import repro.queueing.mg1
import repro.simengine.events

MODULES = [
    repro.core.continuation,
    repro.core.degradation,
    repro.core.model,
    repro.core.nash,
    repro.distributed.failure_detector,
    repro.experiments.ascii_plot,
    repro.queueing.mg1,
    repro.simengine.events,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module has no doctest examples"
