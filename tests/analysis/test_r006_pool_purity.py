"""R006: callables crossing a pool boundary are module-level and pure."""

from __future__ import annotations

PARALLEL_IMPORT = "from repro.experiments.parallel import parallel_map\n"


def test_flags_lambda_submitted_to_parallel_map(lint):
    findings = lint(
        {
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "def run(items):\n"
            "    return parallel_map(lambda x: x + 1, items)\n"
        },
        select=["R006"],
    )
    assert [f.rule for f in findings] == ["R006"]
    assert "lambda" in findings[0].message


def test_flags_nested_function(lint):
    findings = lint(
        {
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "def run(items, factor):\n"
            "    def scale(x):\n"
            "        return x * factor\n"
            "    return parallel_map(scale, items)\n"
        },
        select=["R006"],
    )
    assert [f.rule for f in findings] == ["R006"]
    assert "nested" in findings[0].message
    assert "pickle" in findings[0].message


def test_flags_direct_global_write(lint):
    findings = lint(
        {
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "RESULTS = {}\n"
            "def work(x):\n"
            "    RESULTS[x] = x * 2\n"
            "    return x\n"
            "def run(items):\n"
            "    return parallel_map(work, items)\n"
        },
        select=["R006"],
    )
    assert [f.rule for f in findings] == ["R006"]
    assert "RESULTS" in findings[0].message


def test_flags_transitive_global_write_across_files(lint):
    # The write happens two calls deep, in a *different module* — only
    # the call-graph fixed point can see it from the submission site.
    findings = lint(
        {
            "src/repro/experiments/state.py": (
                "SEEN = []\n"
                "def record(x):\n"
                "    SEEN.append(x)\n"
            ),
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "from repro.experiments.state import record\n"
            "def work(x):\n"
            "    record(x)\n"
            "    return x\n"
            "def run(items):\n"
            "    return parallel_map(work, items)\n",
        },
        select=["R006"],
    )
    assert [f.rule for f in findings] == ["R006"]
    assert "repro.experiments.state.SEEN" in findings[0].message


def test_flags_executor_submit_and_map(lint):
    text = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        futures = [pool.submit(lambda x: x, i) for i in items]\n"
        "    return futures\n"
    )
    findings = lint({"src/repro/experiments/raw.py": text}, select=["R006"])
    assert [f.rule for f in findings] == ["R006"]


def test_module_level_pure_function_is_clean(lint):
    findings = lint(
        {
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "def work(x):\n"
            "    local = {}\n"
            "    local[x] = x * 2\n"
            "    return local[x]\n"
            "def run(items):\n"
            "    return parallel_map(work, items)\n"
        },
        select=["R006"],
    )
    assert findings == []


def test_audited_state_modules_are_exempt(lint):
    # The pool layer's own executor cache is process-local by design.
    findings = lint(
        {
            "src/repro/experiments/parallel.py": (
                "_POOLS = {}\n"
                "def _shared_pool(n):\n"
                "    pool = _POOLS.get(n)\n"
                "    if pool is None:\n"
                "        _POOLS[n] = pool = object()\n"
                "    return pool\n"
                "def parallel_map(fn, items):\n"
                "    return [fn(item) for item in items]\n"
            ),
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "from repro.experiments.parallel import _shared_pool\n"
            "def work(x):\n"
            "    _shared_pool(2)\n"
            "    return x\n"
            "def run(items):\n"
            "    return parallel_map(work, items)\n",
        },
        select=["R006"],
    )
    assert findings == []


def test_test_files_are_skipped(lint):
    findings = lint(
        {
            "tests/experiments/test_sweep.py": PARALLEL_IMPORT
            + "def test_it():\n"
            "    assert parallel_map(lambda x: x, [1]) == [1]\n"
        },
        select=["R006"],
    )
    assert findings == []
