"""R001 — no unseeded or module-level randomness."""

from __future__ import annotations

import textwrap


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


def test_stdlib_random_import_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            import random

            value = random.random()
        """)},
        select=["R001"],
    )
    assert [f.rule for f in findings] == ["R001", "R001"]
    assert "stdlib" in findings[0].message


def test_stdlib_random_from_import_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            from random import choice
        """)},
        select=["R001"],
    )
    assert [f.rule for f in findings] == ["R001"]


def test_module_level_numpy_random_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            import numpy as np

            np.random.seed(42)
            x = np.random.rand(3)
        """)},
        select=["R001"],
    )
    assert [f.rule for f in findings] == ["R001", "R001"]
    assert all("hidden global state" in f.message for f in findings)


def test_unseeded_default_rng_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            import numpy as np

            a = np.random.default_rng()
            b = np.random.default_rng(None)
        """)},
        select=["R001"],
    )
    assert [f.rule for f in findings] == ["R001", "R001"]
    assert all("unseeded" in f.message for f in findings)


def test_seeded_construction_is_clean(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            import numpy as np

            rng = np.random.default_rng(42)
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(7)))
        """)},
        select=["R001"],
    )
    assert findings == []


def test_audited_rng_module_is_exempt(lint):
    findings = lint(
        {"src/repro/simengine/rng.py": _src("""
            import numpy as np

            rng = np.random.default_rng()
        """)},
        select=["R001"],
    )
    assert findings == []


def test_suppression_comment_silences_r001(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            import numpy as np

            rng = np.random.default_rng()  # reprolint: allow=R001 demo only
        """)},
        select=["R001"],
    )
    assert findings == []
