"""R003 — no ad-hoc M/M/1 arithmetic outside ``repro.queueing``."""

from __future__ import annotations

import textwrap


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


def test_inline_rate_gap_division_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def response_time(mu, lam):
                return 1.0 / (mu - lam)
        """)},
        select=["R003"],
    )
    assert [f.rule for f in findings] == ["R003"]
    assert "repro.queueing" in findings[0].message


def test_conventional_gap_name_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def marginal(mu, gap):
                return mu / gap
        """)},
        select=["R003"],
    )
    assert [f.rule for f in findings] == ["R003"]


def test_gap_alias_assigned_in_file_fires(lint):
    # ``slack`` is not a conventional gap name, but it was assigned from a
    # rate subtraction in the same file, so dividing by it is still R003.
    findings = lint(
        {"pkg/feature.py": _src("""
            def response_time(mu, loads):
                slack = mu - loads
                return 1.0 / slack
        """)},
        select=["R003"],
    )
    assert [f.rule for f in findings] == ["R003"]


def test_negated_gap_denominator_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def negative_time(mu, lam):
                return -1.0 / -(lam - mu)
        """)},
        select=["R003"],
    )
    assert [f.rule for f in findings] == ["R003"]


def test_division_by_plain_rate_is_clean(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def mean_service_time(rate):
                return 1.0 / rate
        """)},
        select=["R003"],
    )
    assert findings == []


def test_non_rate_subtraction_is_clean(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def slope(y1, y0, x1, x0):
                return (y1 - y0) / (x1 - x0)
        """)},
        select=["R003"],
    )
    assert findings == []


def test_queueing_package_is_exempt(lint):
    findings = lint(
        {"src/repro/queueing/mm1.py": _src("""
            def expected_response_time(mu, lam):
                return 1.0 / (mu - lam)
        """)},
        select=["R003"],
    )
    assert findings == []


def test_suppression_comment_silences_r003(lint):
    findings = lint(
        {"pkg/test_feature.py": _src("""
            def test_oracle(mu, lam, observed):
                # reprolint: allow=R003 independent oracle recomputation
                expected = 1.0 / (mu - lam)
                assert observed == expected
        """)},
        select=["R003"],
    )
    assert findings == []
