"""SARIF output: structure validates against the 2.1.0 schema.

The full OASIS schema is not vendored; this test validates against a
faithful subset covering every object repro-lint emits — the required
properties, types and enums GitHub code scanning actually checks
(sarif-2.1.0.json: sarifLog, run, tool, reportingDescriptor, result,
physicalLocation, region).  Unknown properties are rejected at every
level we emit, so drift in the reporter fails here first.
"""

from __future__ import annotations

import json

import jsonschema
import pytest

from repro.analysis.engine import lint_sources
from repro.analysis.reporters import render_sarif
from repro.analysis.source import SourceFile

# Subset of https://json.schemastore.org/sarif-2.1.0.json restricted to
# what the reporter emits.
SARIF_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "additionalProperties": False,
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "additionalProperties": False,
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "additionalProperties": False,
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "additionalProperties": False,
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "$ref": "#/definitions/message"
                                                },
                                                "fullDescription": {
                                                    "$ref": "#/definitions/message"
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "additionalProperties": False,
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {"$ref": "#/definitions/message"},
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "additionalProperties": False,
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "additionalProperties": False,
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "additionalProperties": False,
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            },
                                                            "uriBaseId": {
                                                                "type": "string"
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "additionalProperties": False,
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
    "definitions": {
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        }
    },
}


def _sarif_for(snippets: dict[str, str]) -> dict:
    sources = [
        SourceFile.from_text(text, path) for path, text in snippets.items()
    ]
    return json.loads(render_sarif(lint_sources(sources)))


def test_sarif_with_findings_validates():
    doc = _sarif_for(
        {
            "src/repro/workloads/gen.py": (
                "import random\nflag = 1.0 == 2.0\n"
            )
        }
    )
    jsonschema.validate(doc, SARIF_SCHEMA)
    results = doc["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"R001", "R002"}


def test_sarif_clean_run_validates_with_empty_results():
    doc = _sarif_for({"src/repro/workloads/gen.py": "x = 1\n"})
    jsonschema.validate(doc, SARIF_SCHEMA)
    assert doc["runs"][0]["results"] == []
    rule_ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert rule_ids == [f"R{i:03d}" for i in range(1, 12)]


def test_sarif_columns_are_one_based():
    doc = _sarif_for({"src/repro/workloads/gen.py": "import random\n"})
    region = doc["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"
    ]["region"]
    assert region["startLine"] == 1
    assert region["startColumn"] == 1  # engine col 0 -> SARIF col 1


def test_sarif_rule_index_points_at_metadata():
    doc = _sarif_for({"src/repro/workloads/gen.py": "import random\n"})
    run = doc["runs"][0]
    for result in run["results"]:
        meta = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert meta["id"] == result["ruleId"]


def test_invalid_sarif_is_rejected_by_the_schema():
    # Control: the schema has teeth.
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate({"version": "2.1.0"}, SARIF_SCHEMA)
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(
            {
                "version": "2.1.0",
                "runs": [{"tool": {"driver": {}}, "results": []}],
            },
            SARIF_SCHEMA,
        )
