"""R004 — message handlers must dispatch every ``MessageKind`` member."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DISTRIBUTED = REPO_ROOT / "src" / "repro" / "distributed"


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


ENUM_SRC = _src("""
    from enum import Enum, auto


    class MessageKind(Enum):
        TOKEN = auto()
        TERMINATE = auto()
        PING = auto()
""")


def test_exhaustive_handler_is_clean(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                def handle(self, message):
                    if message.kind is MessageKind.TOKEN:
                        self.on_token(message)
                    elif message.kind is MessageKind.TERMINATE:
                        self.stop()
                    elif message.kind is MessageKind.PING:
                        self.pong()
                    else:
                        raise ValueError(message.kind)
            """),
        },
        select=["R004"],
    )
    assert findings == []


def test_missing_member_fires_and_is_named(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                def handle(self, message):
                    if message.kind is MessageKind.TOKEN:
                        self.on_token(message)
                    elif message.kind is MessageKind.TERMINATE:
                        self.stop()
            """),
        },
        select=["R004"],
    )
    assert [f.rule for f in findings] == ["R004"]
    assert "PING" in findings[0].message
    assert "handle" in findings[0].message


def test_constructing_a_kind_does_not_count_as_dispatch(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                def handle_token(self, message):
                    if message.kind is MessageKind.TOKEN:
                        self.send(kind=MessageKind.TERMINATE)
                    elif message.kind is MessageKind.PING:
                        self.pong()
            """),
        },
        select=["R004"],
    )
    assert [f.rule for f in findings] == ["R004"]
    assert "TERMINATE" in findings[0].message
    assert "PING" not in findings[0].message


def test_match_statement_and_membership_dispatch_count(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                def handle(self, message):
                    match message.kind:
                        case MessageKind.TOKEN:
                            self.on_token(message)
                        case MessageKind.TERMINATE:
                            self.stop()
                        case _:
                            raise ValueError(message.kind)
                    if message.kind in (MessageKind.PING,):
                        self.pong()
            """),
        },
        select=["R004"],
    )
    assert findings == []


def test_non_handler_functions_are_ignored(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                def dispatch(self, message):
                    if message.kind is MessageKind.TOKEN:
                        self.on_token(message)
            """),
        },
        select=["R004"],
    )
    assert findings == []


def test_handler_not_mentioning_the_enum_is_skipped(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                def handle(self, message):
                    self.queue.append(message)
            """),
        },
        select=["R004"],
    )
    assert findings == []


def test_rule_is_silent_when_enum_not_in_scope(lint):
    findings = lint(
        {
            "proto/handlers.py": _src("""
                def handle(self, message):
                    if message.kind is MessageKind.TOKEN:
                        self.on_token(message)
            """)
        },
        select=["R004"],
    )
    assert findings == []


def test_suppression_comment_silences_r004(lint):
    findings = lint(
        {
            "proto/messages_def.py": ENUM_SRC,
            "proto/handlers.py": _src("""
                # reprolint: allow=R004 legacy handler, migration tracked
                def handle(self, message):
                    if message.kind is MessageKind.TOKEN:
                        self.on_token(message)
            """),
        },
        select=["R004"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# The acceptance demonstration: removing any dispatch branch from the
# real protocol handler makes R004 fire on the mutated source.
# ----------------------------------------------------------------------

def _lint_real_node(lint, mutate=None):
    messages_text = (DISTRIBUTED / "messages.py").read_text(encoding="utf-8")
    node_text = (DISTRIBUTED / "node.py").read_text(encoding="utf-8")
    if mutate is not None:
        node_text = mutate(node_text)
    return lint(
        {
            "src/repro/distributed/messages.py": messages_text,
            "src/repro/distributed/node.py": node_text,
        },
        select=["R004"],
    )


def test_real_protocol_handler_is_exhaustive(lint):
    assert _lint_real_node(lint) == []


@pytest.mark.parametrize(
    ("dropped", "old", "new"),
    [
        (
            "TOKEN",
            "elif message.kind is MessageKind.TOKEN:",
            "elif message.kind is MessageKind.TERMINATE:",
        ),
        (
            "TERMINATE",
            "if message.kind is MessageKind.TERMINATE:",
            "if message.kind is MessageKind.TOKEN:",
        ),
    ],
)
def test_removing_any_dispatch_branch_fails_r004(lint, dropped, old, new):
    def mutate(text: str) -> str:
        assert old in text, "node.py dispatch changed; update this test"
        return text.replace(old, new, 1)

    findings = _lint_real_node(lint, mutate)
    assert [f.rule for f in findings] == ["R004"]
    assert dropped in findings[0].message
