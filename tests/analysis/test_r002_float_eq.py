"""R002 — no exact equality against float literals."""

from __future__ import annotations

import textwrap


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


def test_float_equality_fires(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def converged(norm):
                return norm == 0.0
        """)},
        select=["R002"],
    )
    assert [f.rule for f in findings] == ["R002"]
    assert "repro.tolerances" in findings[0].message


def test_float_inequality_and_negative_literal_fire(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def check(x, y):
                return x != 0.5 or y == -1.0
        """)},
        select=["R002"],
    )
    assert len(findings) == 2


def test_integer_literal_comparison_is_clean(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def check(count):
                return count == 0
        """)},
        select=["R002"],
    )
    assert findings == []


def test_assert_statements_are_exempt(lint):
    # Tests pin deterministic golden values on purpose.
    findings = lint(
        {"pkg/test_feature.py": _src("""
            def test_waterfill(result):
                assert result.threshold == 0.25
        """)},
        select=["R002"],
    )
    assert findings == []


def test_same_line_suppression(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def split(demand):
                if demand == 0.0:  # reprolint: allow=R002 exact-sentinel
                    return None
                return demand
        """)},
        select=["R002"],
    )
    assert findings == []


def test_standalone_suppression_covers_next_line(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def split(demand):
                # reprolint: allow=R002 exact-sentinel, assigned not computed
                if demand == 0.0:
                    return None
                return demand
        """)},
        select=["R002"],
    )
    assert findings == []


def test_suppressing_a_different_code_does_not_silence(lint):
    findings = lint(
        {"pkg/feature.py": _src("""
            def split(demand):
                if demand == 0.0:  # reprolint: allow=R001 wrong code
                    return None
                return demand
        """)},
        select=["R002"],
    )
    assert [f.rule for f in findings] == ["R002"]
