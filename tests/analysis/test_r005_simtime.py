"""R005 — sim-clock discipline in ``simengine``/``distributed``."""

from __future__ import annotations

import textwrap


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


def test_wall_clock_read_fires_in_simengine(lint):
    findings = lint(
        {"src/repro/simengine/engine.py": _src("""
            import time

            def stamp():
                return time.time()
        """)},
        select=["R005"],
    )
    assert [f.rule for f in findings] == ["R005"]
    assert "time.time" in findings[0].message


def test_from_import_wall_clock_fires_in_distributed(lint):
    findings = lint(
        {"src/repro/distributed/node.py": _src("""
            from time import perf_counter

            def elapsed():
                return perf_counter()
        """)},
        select=["R005"],
    )
    assert [f.rule for f in findings] == ["R005"]


def test_datetime_now_fires(lint):
    findings = lint(
        {"src/repro/distributed/log.py": _src("""
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)},
        select=["R005"],
    )
    assert [f.rule for f in findings] == ["R005"]


def test_bare_except_fires(lint):
    findings = lint(
        {"src/repro/simengine/loop.py": _src("""
            def step(queue):
                try:
                    queue.pop()
                except:
                    pass
        """)},
        select=["R005"],
    )
    assert [f.rule for f in findings] == ["R005"]
    assert "bare" in findings[0].message


def test_typed_except_is_clean(lint):
    findings = lint(
        {"src/repro/simengine/loop.py": _src("""
            def step(queue):
                try:
                    queue.pop()
                except IndexError:
                    pass
        """)},
        select=["R005"],
    )
    assert findings == []


def test_rule_silent_outside_scoped_packages(lint):
    # Identical code outside simengine/distributed/experiments is not
    # R005's business.
    findings = lint(
        {"src/repro/core/timing.py": _src("""
            import time

            def stamp():
                try:
                    return time.time()
                except:
                    return 0.0
        """)},
        select=["R005"],
    )
    assert findings == []


def test_clock_of_day_fires_in_experiments(lint):
    # Historically experiments/ escaped R005 entirely, which is how a
    # time.time() duration shipped in report.py; the narrower
    # experiments scope now bans the non-monotonic clock-of-day readers.
    findings = lint(
        {"src/repro/experiments/timing.py": _src("""
            import time

            def elapsed(run):
                started = time.time()
                run()
                return time.time() - started
        """)},
        select=["R005"],
    )
    assert [f.rule for f in findings] == ["R005", "R005"]
    assert "perf_counter" in findings[0].message


def test_perf_counter_allowed_in_experiments(lint):
    # Experiments legitimately measure real runtime — only the
    # monotonic readers are the right tool, so they stay allowed.
    findings = lint(
        {"src/repro/experiments/timing.py": _src("""
            from time import perf_counter

            def elapsed(run):
                started = perf_counter()
                run()
                return perf_counter() - started
        """)},
        select=["R005"],
    )
    assert findings == []


def test_bare_except_not_flagged_in_experiments(lint):
    # The bare-except half of R005 protects typed *protocol* errors;
    # it stays scoped to simengine/distributed.
    findings = lint(
        {"src/repro/experiments/timing.py": _src("""
            def guarded(run):
                try:
                    return run()
                except:
                    return None
        """)},
        select=["R005"],
    )
    assert findings == []


def test_suppression_comment_silences_r005(lint):
    findings = lint(
        {"src/repro/simengine/profile.py": _src("""
            import time

            def wall_runtime():
                return time.perf_counter()  # reprolint: allow=R005 profiling
        """)},
        select=["R005"],
    )
    assert findings == []
