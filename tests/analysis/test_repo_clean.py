"""Meta-test: the repository's own code passes its own linter.

This is the dogfooding gate in test form — if a change introduces an
unseeded RNG, a float ``==``, an inline ``1/(mu - lambda)``, a
non-exhaustive message handler or a wall-clock read, this test fails
with the same report the CI lint job would print.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import lint_paths
from repro.analysis.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_lints_clean():
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert findings == [], "\n" + render_text(findings)
