"""Meta-test: the repository's own code passes its own linter.

This is the dogfooding gate in test form — if a change introduces an
unseeded RNG, a float ``==``, an inline ``1/(mu - lambda)``, a
non-exhaustive message handler, a wall-clock read, an impure pool
callable, an ambient generator, an aliasing kernel, a swallowed typed
error or an undeclared trace event, this test fails with the same
report the CI lint job would print.

All ten rules run with an **empty baseline**: every real violation the
cross-module rules surfaced was fixed at the source, not suppressed.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import lint_paths
from repro.analysis.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_lints_clean():
    findings = lint_paths(
        [
            REPO_ROOT / "src",
            REPO_ROOT / "tests",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ]
    )
    assert findings == [], "\n" + render_text(findings)


def test_shipped_code_lints_clean_under_every_rule_explicitly():
    # Belt and braces for the acceptance bar: name all ten rules so a
    # registry regression (a rule silently dropping out) cannot let a
    # violation through unnoticed.
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
        select=[f"R{number:03d}" for number in range(1, 11)],
    )
    assert findings == [], "\n" + render_text(findings)