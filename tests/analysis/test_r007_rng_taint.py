"""R007: explicit seed provenance for every stochastic call."""

from __future__ import annotations

NP = "import numpy as np\n"
PARALLEL_IMPORT = "from repro.experiments.parallel import parallel_map\n"


def test_flags_draw_from_ambient_module_generator(lint):
    findings = lint(
        {
            "src/repro/workloads/gen.py": NP
            + "GEN = np.random.default_rng(42)\n"
            "def sample(n):\n"
            "    return GEN.normal(size=n)\n"
        },
        select=["R007"],
    )
    assert [f.rule for f in findings] == ["R007"]
    assert "'GEN'" in findings[0].message


def test_parameter_generator_is_clean(lint):
    findings = lint(
        {
            "src/repro/workloads/gen.py": NP
            + "def sample(rng, n):\n"
            "    return rng.normal(size=n)\n"
        },
        select=["R007"],
    )
    assert findings == []


def test_locally_seeded_generator_is_clean(lint):
    findings = lint(
        {
            "src/repro/workloads/gen.py": NP
            + "def sample(seed, n):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.normal(size=n)\n"
        },
        select=["R007"],
    )
    assert findings == []


def test_spawned_generator_keeps_derived_provenance(lint):
    findings = lint(
        {
            "src/repro/workloads/gen.py": NP
            + "def sample(rng, n):\n"
            "    child = rng.spawn(1)[0]\n"
            "    return rng.uniform(size=n)\n"
        },
        select=["R007"],
    )
    assert findings == []


def test_flags_ambient_generator_crossing_pool_boundary(lint):
    # The hazard the rule exists for: fork shares the generator state,
    # so every worker replays the identical "random" stream.
    findings = lint(
        {
            "src/repro/workloads/gen.py": NP
            + "GEN = np.random.default_rng(7)\n"
            "def draw(n):\n"
            "    return GEN.uniform(size=n)\n",
            "src/repro/experiments/sweep.py": PARALLEL_IMPORT
            + "from repro.workloads.gen import draw\n"
            "def run(sizes):\n"
            "    return parallel_map(draw, sizes)\n",
        },
        select=["R007"],
    )
    emit_rules = sorted((f.rule, f.path.rsplit("/", 1)[-1]) for f in findings)
    # Definition-site finding (gen.py) plus boundary finding (sweep.py).
    assert emit_rules == [("R007", "gen.py"), ("R007", "sweep.py")]
    boundary = [f for f in findings if f.path.endswith("sweep.py")][0]
    assert "identical streams" in boundary.message


def test_test_files_are_skipped(lint):
    findings = lint(
        {
            "tests/workloads/test_gen.py": NP
            + "GEN = np.random.default_rng(1)\n"
            "def test_draw():\n"
            "    assert GEN.normal() is not None\n"
        },
        select=["R007"],
    )
    assert findings == []
