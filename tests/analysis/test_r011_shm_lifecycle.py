"""Meta-tests for R011 (shm-lifecycle)."""

from __future__ import annotations

import textwrap


def _src(body: str) -> str:
    return textwrap.dedent(body).lstrip()


class TestR011Fires:
    def test_unreleased_create_fires(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def publish(payload):
                        block = shared_memory.SharedMemory(
                            create=True, size=len(payload)
                        )
                        block.buf[: len(payload)] = payload
                        return block.name
                    """
                )
            },
            select=["R011"],
        )
        assert len(findings) == 2  # no close, no unlink
        assert all(f.rule == "R011" for f in findings)
        assert any("close" in f.message for f in findings)
        assert any("unlink" in f.message for f in findings)

    def test_close_without_unlink_fires_for_creator(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing.shared_memory import SharedMemory

                    def publish(payload):
                        block = SharedMemory(create=True, size=len(payload))
                        try:
                            block.buf[: len(payload)] = payload
                        finally:
                            block.close()
                        return block.name
                    """
                )
            },
            select=["R011"],
        )
        assert [f.rule for f in findings] == ["R011"]
        assert "unlink" in findings[0].message

    def test_unbound_call_fires(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def peek(token):
                        return bytes(
                            shared_memory.SharedMemory(name=token).buf
                        )
                    """
                )
            },
            select=["R011"],
        )
        assert [f.rule for f in findings] == ["R011"]
        assert "not bound" in findings[0].message

    def test_attach_without_close_fires(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def attach(token):
                        block = shared_memory.SharedMemory(name=token)
                        return bytes(block.buf)
                    """
                )
            },
            select=["R011"],
        )
        assert [f.rule for f in findings] == ["R011"]
        assert "close" in findings[0].message

    def test_dynamic_create_flag_is_conservatively_owning(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def open_block(token, fresh):
                        block = shared_memory.SharedMemory(
                            name=token, create=fresh, size=64
                        )
                        try:
                            return bytes(block.buf)
                        finally:
                            block.close()
                    """
                )
            },
            select=["R011"],
        )
        assert [f.rule for f in findings] == ["R011"]
        assert "unlink" in findings[0].message

    def test_outer_finally_does_not_cover_inner_function(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def outer(payload):
                        block = None

                        def inner():
                            block = shared_memory.SharedMemory(
                                create=True, size=len(payload)
                            )
                            return block

                        try:
                            return inner()
                        finally:
                            if block is not None:
                                block.close()
                                block.unlink()
                    """
                )
            },
            select=["R011"],
        )
        # The creation lives in inner(), whose own scope has no finally.
        assert len(findings) == 2
        assert all(f.rule == "R011" for f in findings)


class TestR011Clean:
    def test_paired_close_and_unlink_in_finally_is_clean(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def publish(payload):
                        block = shared_memory.SharedMemory(
                            create=True, size=len(payload)
                        )
                        try:
                            block.buf[: len(payload)] = payload
                            return block.name
                        finally:
                            block.close()
                            block.unlink()
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []

    def test_attach_only_needs_close(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def attach(token):
                        block = shared_memory.SharedMemory(name=token)
                        try:
                            return bytes(block.buf)
                        finally:
                            block.close()
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []

    def test_explicit_create_false_positional_is_attach(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def attach(token):
                        block = shared_memory.SharedMemory(token, False)
                        try:
                            return bytes(block.buf)
                        finally:
                            block.close()
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []

    def test_plane_module_is_exempt(self, lint):
        findings = lint(
            {
                "src/repro/experiments/shm.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def publish(payload):
                        block = shared_memory.SharedMemory(
                            create=True, size=len(payload)
                        )
                        return block
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []

    def test_test_files_are_exempt(self, lint):
        findings = lint(
            {
                "tests/experiments/test_leaks.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def test_leak_detection():
                        shared_memory.SharedMemory(create=True, size=8)
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []

    def test_unrelated_constructor_is_ignored(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    class SharedMemory:
                        pass

                    def build():
                        return SharedMemory()
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []

    def test_suppression_comment_honoured(self, lint):
        findings = lint(
            {
                "src/repro/experiments/plane2.py": _src(
                    """
                    from multiprocessing import shared_memory

                    def probe(token):
                        # reprolint: allow=R011 probe closes via caller
                        block = shared_memory.SharedMemory(name=token)
                        return block
                    """
                )
            },
            select=["R011"],
        )
        assert findings == []
