"""R009: typed capacity/feasibility errors are never silently dropped."""

from __future__ import annotations

WATERFILL = (
    "class InfeasibleDemand(ValueError):\n"
    "    pass\n"
    "class CapacityExhausted(RuntimeError):\n"
    "    pass\n"
    "def sqrt_waterfill(a):\n"
    "    if not a:\n"
    "        raise InfeasibleDemand('empty')\n"
    "    return a\n"
)


def test_flags_caught_and_dropped_typed_error(lint):
    findings = lint(
        {
            "src/repro/schemes/solver.py": (
                "from repro.core.waterfill import InfeasibleDemand, sqrt_waterfill\n"
                "def solve(a):\n"
                "    try:\n"
                "        return sqrt_waterfill(a)\n"
                "    except InfeasibleDemand:\n"
                "        pass\n"
            ),
            "src/repro/core/waterfill.py": WATERFILL,
        },
        select=["R009"],
    )
    assert [f.rule for f in findings] == ["R009"]
    assert "caught and dropped" in findings[0].message


def test_flags_widened_exception_handler_over_raising_call(lint):
    # The raise is in another module; only the call graph reveals that
    # ``except Exception`` here absorbs a typed signal.
    findings = lint(
        {
            "src/repro/schemes/solver.py": (
                "from repro.core.waterfill import sqrt_waterfill\n"
                "def solve(a):\n"
                "    try:\n"
                "        return sqrt_waterfill(a)\n"
                "    except Exception:\n"
                "        return None\n"
            ),
            "src/repro/core/waterfill.py": WATERFILL,
        },
        select=["R009"],
    )
    assert [f.rule for f in findings] == ["R009"]
    assert "InfeasibleDemand" in findings[0].message


def test_explicit_recovery_with_body_is_clean(lint):
    findings = lint(
        {
            "src/repro/schemes/solver.py": (
                "from repro.core.waterfill import InfeasibleDemand, sqrt_waterfill\n"
                "def solve(a, fallback):\n"
                "    try:\n"
                "        return sqrt_waterfill(a)\n"
                "    except InfeasibleDemand:\n"
                "        return fallback\n"
            ),
            "src/repro/core/waterfill.py": WATERFILL,
        },
        select=["R009"],
    )
    assert findings == []


def test_except_valueerror_is_deliberately_allowed(lint):
    # InfeasibleDemand subclasses ValueError *so that* existing
    # except ValueError recovery sites keep working.
    findings = lint(
        {
            "src/repro/schemes/solver.py": (
                "from repro.core.waterfill import sqrt_waterfill\n"
                "def solve(a):\n"
                "    try:\n"
                "        return sqrt_waterfill(a)\n"
                "    except ValueError:\n"
                "        return None\n"
            ),
            "src/repro/core/waterfill.py": WATERFILL,
        },
        select=["R009"],
    )
    assert findings == []


def test_wide_handler_that_reraises_is_clean(lint):
    findings = lint(
        {
            "src/repro/schemes/solver.py": (
                "from repro.core.waterfill import sqrt_waterfill\n"
                "def solve(a, log):\n"
                "    try:\n"
                "        return sqrt_waterfill(a)\n"
                "    except Exception:\n"
                "        log.warning('solve failed')\n"
                "        raise\n"
            ),
            "src/repro/core/waterfill.py": WATERFILL,
        },
        select=["R009"],
    )
    assert findings == []


def test_wide_handler_over_nonraising_body_is_clean(lint):
    findings = lint(
        {
            "src/repro/schemes/solver.py": (
                "def parse(text):\n"
                "    try:\n"
                "        return int(text)\n"
                "    except Exception:\n"
                "        return None\n"
            ),
        },
        select=["R009"],
    )
    assert findings == []


def test_recovery_points_are_exempt(lint):
    dropped = (
        "from repro.core.waterfill import InfeasibleDemand, sqrt_waterfill\n"
        "def entry(a):\n"
        "    try:\n"
        "        return sqrt_waterfill(a)\n"
        "    except InfeasibleDemand:\n"
        "        pass\n"
    )
    findings = lint(
        {
            "src/repro/experiments/runner.py": dropped,
            "src/repro/engine/service.py": dropped,
            "src/repro/analysis/cli.py": dropped,
            "src/repro/core/waterfill.py": WATERFILL,
        },
        select=["R009"],
    )
    assert findings == []
