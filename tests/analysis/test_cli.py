"""The ``repro-lint`` CLI: exit codes, formats, rule listing."""

from __future__ import annotations

import json

from repro.analysis.cli import main


def _write(tmp_path, name, text):
    target = tmp_path / name
    target.write_text(text)
    return str(target)


def test_clean_run_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert main([path]) == 0
    assert capsys.readouterr().out.strip() == "repro-lint: clean"


def test_findings_exit_one(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "R001" in out
    assert "1 finding" in out


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    assert main([path, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "R001"


def test_select_and_ignore(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\nflag = 1.0 == 2.0\n")
    assert main([path, "--select", "R002"]) == 1
    assert "R001" not in capsys.readouterr().out
    assert main([path, "--ignore", "R001,R002"]) == 0


def test_unknown_rule_code_exits_two(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert main([path, "--select", "R999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "repro-lint:" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R001", "R002", "R003", "R004", "R005"):
        assert code in out
