"""The ``repro-lint`` CLI: exit codes, formats, rule listing."""

from __future__ import annotations

import json

from repro.analysis.cli import main


def _write(tmp_path, name, text):
    target = tmp_path / name
    target.write_text(text)
    return str(target)


def test_clean_run_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert main([path]) == 0
    assert capsys.readouterr().out.strip() == "repro-lint: clean"


def test_findings_exit_one(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "R001" in out
    assert "1 finding" in out


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    assert main([path, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "R001"


def test_select_and_ignore(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\nflag = 1.0 == 2.0\n")
    assert main([path, "--select", "R002"]) == 1
    assert "R001" not in capsys.readouterr().out
    assert main([path, "--ignore", "R001,R002"]) == 0


def test_unknown_rule_code_is_a_hard_error_listing_known_rules(
    tmp_path, capsys
):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert main([path, "--select", "R999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err
    assert "R999" in err
    # The error message enumerates the valid codes (the satellite fix).
    for code in ("R001", "R005", "R006", "R010"):
        assert code in err
    assert main([path, "--ignore", "R001,R777"]) == 2
    assert "R777" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "repro-lint:" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for number in range(1, 11):
        assert f"R{number:03d}" in out


def test_sarif_format_and_output_file(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    report = tmp_path / "report.sarif"
    assert main([path, "--format", "sarif", "--output", str(report)]) == 1
    assert capsys.readouterr().out == ""
    doc = json.loads(report.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "R001"


def test_write_baseline_then_gate_against_it(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    baseline = tmp_path / "baseline.json"
    assert main([path, "--write-baseline", str(baseline)]) == 0
    assert "1 finding" in capsys.readouterr().out
    # Baselined: the run gates clean.
    assert main([path, "--baseline", str(baseline)]) == 0
    # A new violation on top of the baseline still fails.
    path2 = _write(tmp_path, "dirty.py", "import random\nimport random\n")
    assert main([path2, "--baseline", str(baseline)]) == 1


def test_corrupt_baseline_exits_two(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    baseline = _write(tmp_path, "baseline.json", "{broken")
    assert main([path, "--baseline", baseline]) == 2
    assert "baseline" in capsys.readouterr().err


def test_cache_flag_round_trips(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import random\n")
    cache = tmp_path / "cache.json"
    assert main([path, "--cache", str(cache)]) == 1
    first = capsys.readouterr().out
    assert cache.is_file()
    assert main([path, "--cache", str(cache)]) == 1
    assert capsys.readouterr().out == first
