"""The dataflow engine: facts, resolution, fixed point, serialization."""

from __future__ import annotations

from repro.analysis.project import (
    ModuleFacts,
    ProjectModel,
    collect_facts,
    module_name_for,
)
from repro.analysis.source import SourceFile


def _facts(path: str, text: str) -> ModuleFacts:
    return collect_facts(SourceFile.from_text(text, path))


def test_module_name_strips_to_last_src_segment():
    assert module_name_for(("src", "repro", "core", "nash.py")) == "repro.core.nash"
    assert (
        module_name_for(("home", "x", "src", "repro", "core", "nash.py"))
        == "repro.core.nash"
    )
    assert module_name_for(("repro", "core", "__init__.py")) == "repro.core"
    assert module_name_for(("script.py",)) == "script"


def test_import_table_resolves_absolute_and_relative():
    facts = _facts(
        "src/repro/experiments/common.py",
        "import numpy as np\n"
        "from repro.core.nash import NashSolver\n"
        "from .parallel import parallel_map\n"
        "from ..core import waterfill\n",
    )
    assert facts.imports["np"] == "numpy"
    assert facts.imports["NashSolver"] == "repro.core.nash.NashSolver"
    assert facts.imports["parallel_map"] == (
        "repro.experiments.parallel.parallel_map"
    )
    assert facts.imports["waterfill"] == "repro.core.waterfill"
    assert "repro.core.nash" in facts.dep_modules
    assert "repro.experiments.parallel" in facts.dep_modules


def test_summaries_record_kinds_and_raises():
    facts = _facts(
        "src/repro/core/mod.py",
        "class Solver:\n"
        "    def solve(self, a):\n"
        "        raise InfeasibleDemand('x')\n"
        "def outer():\n"
        "    def inner():\n"
        "        pass\n"
        "    return inner\n"
        "f = lambda x: x\n",
    )
    kinds = {s.qualname: s.kind for s in facts.summaries}
    assert kinds["Solver.solve"] == "method"
    assert kinds["outer"] == "function"
    assert kinds["outer.<locals>.inner"] == "nested"
    assert kinds["f"] == "lambda"  # module-level lambda renamed to binding
    solve = next(s for s in facts.summaries if s.qualname == "Solver.solve")
    assert "InfeasibleDemand" in solve.raises


def test_fixed_point_propagates_global_writes_across_modules():
    model = ProjectModel(
        {
            "src/repro/a.py": _facts(
                "src/repro/a.py",
                "STATE = []\n"
                "def leaf(x):\n"
                "    STATE.append(x)\n",
            ),
            "src/repro/b.py": _facts(
                "src/repro/b.py",
                "from repro.a import leaf\n"
                "def mid(x):\n"
                "    leaf(x)\n",
            ),
            "src/repro/c.py": _facts(
                "src/repro/c.py",
                "from repro.b import mid\n"
                "def top(x):\n"
                "    mid(x)\n",
            ),
        }
    )
    assert ("repro.a", "STATE") in model.transitive("repro.c::top").global_writes


def test_fixed_point_terminates_on_recursion():
    model = ProjectModel(
        {
            "src/repro/r.py": _facts(
                "src/repro/r.py",
                "COUNT = [0]\n"
                "def ping(n):\n"
                "    COUNT.append(n)\n"
                "    return pong(n - 1) if n else n\n"
                "def pong(n):\n"
                "    return ping(n)\n",
            )
        }
    )
    assert ("repro.r", "COUNT") in model.transitive("repro.r::pong").global_writes


def test_param_mutation_composes_with_argument_mapping():
    model = ProjectModel(
        {
            "src/repro/core/k.py": _facts(
                "src/repro/core/k.py",
                "def bump_inplace(buf, x):\n"
                "    buf += x\n"
                "def caller(a, b):\n"
                "    bump_inplace(b, 1.0)\n",
            )
        }
    )
    mutated = model.transitive("repro.core.k::caller").mutated_params
    assert set(mutated) == {"b"}  # positional mapping: slot 0 -> b, not a


def test_facts_round_trip_through_json():
    facts = _facts(
        "src/repro/core/k.py",
        "import numpy as np\n"
        "GEN = np.random.default_rng(3)\n"
        "DECLARED_EVENTS = {'a.b': 'summary'}\n"
        "def f(a):\n"
        "    a += 1\n"
        "    return GEN.normal()\n",
    )
    rebuilt = ModuleFacts.from_json(facts.to_json())
    assert rebuilt == facts
    assert rebuilt.is_vocabulary
    assert rebuilt.ambient_generators == frozenset({"GEN"})
