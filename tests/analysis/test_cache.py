"""Incremental cache: correctness of invalidation and warm speed."""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

HELPER_PURE = "def record(x):\n    return x\n"
HELPER_IMPURE = "SEEN = []\ndef record(x):\n    SEEN.append(x)\n"
SUBMITTER = (
    "from repro.experiments.parallel import parallel_map\n"
    "from repro.experiments.state import record\n"
    "def work(x):\n"
    "    record(x)\n"
    "    return x\n"
    "def run(items):\n"
    "    return parallel_map(work, items)\n"
)


def _tree(tmp_path, files):
    for relative, text in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return tmp_path


def test_cached_run_matches_uncached_run(tmp_path):
    root = _tree(
        tmp_path,
        {
            "src/repro/experiments/state.py": HELPER_IMPURE,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
    )
    cache = tmp_path / "cache.json"
    uncached = lint_paths([root / "src"], select=["R006"])
    cold = lint_paths([root / "src"], select=["R006"], cache_path=cache)
    warm = lint_paths([root / "src"], select=["R006"], cache_path=cache)
    assert cold == uncached
    assert warm == uncached
    assert len(uncached) == 1  # the transitive global-write finding


def test_dependency_hash_change_invalidates_dependents(tmp_path):
    # sweep.py never changes, but its findings depend on state.py's
    # summaries: flipping the helper's purity must flip the finding.
    root = _tree(
        tmp_path,
        {
            "src/repro/experiments/state.py": HELPER_PURE,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
    )
    cache = tmp_path / "cache.json"
    assert lint_paths([root / "src"], select=["R006"], cache_path=cache) == []

    (root / "src/repro/experiments/state.py").write_text(HELPER_IMPURE)
    dirty = lint_paths([root / "src"], select=["R006"], cache_path=cache)
    assert len(dirty) == 1
    assert dirty[0].path.endswith("sweep.py")
    assert "SEEN" in dirty[0].message

    (root / "src/repro/experiments/state.py").write_text(HELPER_PURE)
    assert lint_paths([root / "src"], select=["R006"], cache_path=cache) == []


def test_vocabulary_change_invalidates_everything(tmp_path):
    # events.py (DECLARED_EVENTS) and solver.py share no import edge;
    # only the vocabulary layer can propagate this invalidation.
    root = _tree(
        tmp_path,
        {
            "src/repro/telemetry/events.py": (
                'DECLARED_EVENTS = {"solver.sweep": "convergence"}\n'
            ),
            "src/repro/core/solver.py": (
                "def run(tracer, x):\n"
                '    tracer.emit("solver.sweep", norm=x)\n'
                '    tracer.emit("solver.extra", x=x)\n'
            ),
        },
    )
    cache = tmp_path / "cache.json"
    first = lint_paths([root / "src"], select=["R010"], cache_path=cache)
    assert len(first) == 1  # solver.extra undeclared

    (root / "src/repro/telemetry/events.py").write_text(
        'DECLARED_EVENTS = {\n'
        '    "solver.sweep": "convergence",\n'
        '    "solver.extra": "summary",\n'
        "}\n"
    )
    assert lint_paths([root / "src"], select=["R010"], cache_path=cache) == []


def test_rule_set_change_misses_the_cache(tmp_path):
    root = _tree(
        tmp_path, {"src/repro/workloads/gen.py": "import random\n"}
    )
    cache = tmp_path / "cache.json"
    assert lint_paths([root / "src"], select=["R006"], cache_path=cache) == []
    # Same cache file, different rules: must not reuse R006's findings.
    findings = lint_paths([root / "src"], select=["R001"], cache_path=cache)
    assert [f.rule for f in findings] == ["R001"]


def test_file_removal_invalidates_cleanly(tmp_path):
    root = _tree(
        tmp_path,
        {
            "src/repro/experiments/state.py": HELPER_IMPURE,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
    )
    cache = tmp_path / "cache.json"
    assert len(lint_paths([root / "src"], select=["R006"], cache_path=cache)) == 1
    (root / "src/repro/experiments/state.py").unlink()
    # record() no longer resolves anywhere: the transitive write is gone.
    assert lint_paths([root / "src"], select=["R006"], cache_path=cache) == []


def test_warm_full_repo_lint_is_at_least_3x_faster(tmp_path):
    """The acceptance bar: warm >= 3x faster than cold on the real repo."""
    cache = tmp_path / "cache.json"
    src = REPO_ROOT / "src"

    start = time.perf_counter()
    cold = lint_paths([src], cache_path=cache)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = lint_paths([src], cache_path=cache)
    warm_seconds = time.perf_counter() - start

    assert warm == cold
    assert warm_seconds * 3 <= cold_seconds, (
        f"warm lint {warm_seconds:.3f}s is not 3x faster than "
        f"cold {cold_seconds:.3f}s"
    )
