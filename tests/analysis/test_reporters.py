"""Text and JSON rendering of lint findings."""

from __future__ import annotations

import json

from repro.analysis.finding import Finding
from repro.analysis.reporters import render_json, render_text

_FINDINGS = [
    Finding(rule="R001", path="a.py", line=3, col=0, message="unseeded rng"),
    Finding(rule="R002", path="b.py", line=8, col=4, message="float equality"),
    Finding(rule="R002", path="b.py", line=9, col=4, message="float equality"),
]


def test_render_text_clean():
    assert render_text([]) == "repro-lint: clean"


def test_render_text_report():
    report = render_text(_FINDINGS)
    lines = report.splitlines()
    assert lines[0] == "a.py:3:0: R001 unseeded rng"
    assert lines[-1] == "repro-lint: 3 findings (R001: 1, R002: 2)"


def test_render_text_singular():
    report = render_text(_FINDINGS[:1])
    assert report.splitlines()[-1] == "repro-lint: 1 finding (R001: 1)"


def test_render_json_schema():
    payload = json.loads(render_json(_FINDINGS))
    assert payload["tool"] == "repro-lint"
    assert payload["version"] == 1
    assert payload["count"] == 3
    assert payload["findings"][0] == {
        "rule": "R001",
        "path": "a.py",
        "line": 3,
        "col": 0,
        "message": "unseeded rng",
    }


def test_render_json_clean_is_valid():
    payload = json.loads(render_json([]))
    assert payload["count"] == 0
    assert payload["findings"] == []
