"""R008: core/queueing kernels never mutate caller arrays in place."""

from __future__ import annotations

NP = "import numpy as np\n"


def test_flags_augmented_assignment_on_parameter(lint):
    findings = lint(
        {
            "src/repro/core/kernels.py": NP
            + "def scale(a, factor):\n"
            "    a *= factor\n"
            "    return a\n"
        },
        select=["R008"],
    )
    assert [f.rule for f in findings] == ["R008"]
    assert "'a'" in findings[0].message
    assert "scale_inplace" in findings[0].message


def test_flags_out_argument_targeting_parameter(lint):
    findings = lint(
        {
            "src/repro/core/kernels.py": NP
            + "def clamp(a):\n"
            "    np.maximum(a, 0.0, out=a)\n"
            "    return a\n"
        },
        select=["R008"],
    )
    assert [f.rule for f in findings] == ["R008"]
    assert "out=" in findings[0].message


def test_flags_write_through_view_alias(lint):
    # b = np.asarray(a) may alias a; writing b writes the caller's array.
    findings = lint(
        {
            "src/repro/queueing/kernels.py": NP
            + "def zero_head(a):\n"
            "    b = np.asarray(a)\n"
            "    b[0] = 0.0\n"
            "    return b\n"
        },
        select=["R008"],
    )
    assert [f.rule for f in findings] == ["R008"]


def test_flags_transitive_mutation_through_helper(lint):
    findings = lint(
        {
            "src/repro/core/kernels.py": NP
            + "def _accumulate_inplace(buf, x):\n"
            "    buf += x\n"
            "    return buf\n"
            "def total(values):\n"
            "    return _accumulate_inplace(values, 1.0)\n"
        },
        select=["R008"],
    )
    assert [f.rule for f in findings] == ["R008"]
    assert "total" in findings[0].message
    assert "_accumulate_inplace" in findings[0].message


def test_inplace_suffix_is_the_contract(lint):
    findings = lint(
        {
            "src/repro/core/kernels.py": NP
            + "def scale_inplace(a, factor):\n"
            "    a *= factor\n"
            "    return a\n"
        },
        select=["R008"],
    )
    assert findings == []


def test_fresh_array_mutation_is_clean(lint):
    findings = lint(
        {
            "src/repro/core/kernels.py": NP
            + "def waterfill(a):\n"
            "    loads = np.zeros_like(a)\n"
            "    loads += a\n"
            "    np.maximum(loads, 0.0, out=loads)\n"
            "    loads[0] = 1.0\n"
            "    return loads\n"
        },
        select=["R008"],
    )
    assert findings == []


def test_copy_breaks_the_alias(lint):
    findings = lint(
        {
            "src/repro/core/kernels.py": NP
            + "def scale(a, factor):\n"
            "    b = a.copy()\n"
            "    b *= factor\n"
            "    return b\n"
        },
        select=["R008"],
    )
    assert findings == []


def test_rule_is_scoped_to_kernel_packages(lint):
    findings = lint(
        {
            "src/repro/experiments/helpers.py": NP
            + "def scale(a, factor):\n"
            "    a *= factor\n"
            "    return a\n"
        },
        select=["R008"],
    )
    assert findings == []


def test_method_self_mutation_is_clean(lint):
    # Methods own their instance state; only array parameters count.
    findings = lint(
        {
            "src/repro/core/board.py": NP
            + "class Board:\n"
            "    def bump(self, delta):\n"
            "        self.totals += delta\n"
            "        return self.totals\n"
        },
        select=["R008"],
    )
    assert findings == []
