"""Shared helpers for the repro-lint test suite.

Rule tests lint small synthetic sources under synthetic paths; the
``lint`` fixture turns a ``{path: source_text}`` mapping into one lint
run (so cross-file context such as R004's enum collection works) and
returns the surviving findings.
"""

from __future__ import annotations

from typing import Iterable

import pytest

from repro.analysis.engine import lint_sources
from repro.analysis.finding import Finding
from repro.analysis.source import SourceFile


@pytest.fixture
def lint():
    """Lint a ``{path: text}`` mapping as one run, returning findings."""

    def _lint(
        snippets: dict[str, str],
        *,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> list[Finding]:
        sources = [
            SourceFile.from_text(text, path)
            for path, text in sorted(snippets.items())
        ]
        return lint_sources(sources, select=select, ignore=ignore)

    return _lint
