"""Engine behavior: discovery, suppression plumbing, rule selection."""

from __future__ import annotations

import pytest

from repro.analysis.engine import discover_files, lint_paths, lint_sources
from repro.analysis.finding import PARSE_ERROR
from repro.analysis.registry import all_rules, get_rule, selected_rules
from repro.analysis.source import SourceFile, parse_suppressions


def test_registry_exposes_the_eleven_rules():
    codes = [rule.code for rule in all_rules()]
    assert codes == [
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
        "R007",
        "R008",
        "R009",
        "R010",
        "R011",
    ]
    for rule in all_rules():
        assert rule.name
        assert rule.rationale


def test_get_rule_rejects_unknown_codes():
    with pytest.raises(KeyError):
        get_rule("R999")


def test_selected_rules_select_and_ignore():
    codes = [rule.code for rule in selected_rules(["R003", "R001"])]
    assert codes == ["R001", "R003"]
    codes = [rule.code for rule in selected_rules(None, ["R002", "R004"])]
    assert codes == [
        "R001",
        "R003",
        "R005",
        "R006",
        "R007",
        "R008",
        "R009",
        "R010",
        "R011",
    ]
    with pytest.raises(KeyError):
        selected_rules(["R001", "R999"])


def test_discover_files_skips_caches_and_non_python(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "b.py").write_text("y = 2\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-310.py").write_text("z = 3\n")

    found = discover_files([tmp_path])
    assert found == [tmp_path / "a.py", sub / "b.py"]


def test_discover_files_deduplicates_and_rejects_missing(tmp_path):
    target = tmp_path / "a.py"
    target.write_text("x = 1\n")
    assert discover_files([target, tmp_path]) == [target]
    with pytest.raises(FileNotFoundError):
        discover_files([tmp_path / "missing"])


def test_lint_paths_reports_unparseable_files(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def incomplete(:\n")
    findings = lint_paths([tmp_path])
    assert [f.rule for f in findings] == [PARSE_ERROR]
    assert "cannot parse" in findings[0].message


def test_parse_suppressions_grammar():
    table = parse_suppressions(
        [
            "x = 1  # reprolint: allow=R002 exact-sentinel",
            "# reprolint: allow=R001,R003 free-text reason",
            "y = 2",
            "z = 3  # plain comment",
        ]
    )
    assert table[1] == frozenset({"R002"})
    # A standalone comment covers itself and the following line.
    assert table[2] == frozenset({"R001", "R003"})
    assert table[3] == frozenset({"R001", "R003"})
    assert 4 not in table


def test_findings_are_sorted_by_location():
    source = SourceFile.from_text(
        "import random\nimport time\nflag = 1.0 == 2.0\n",
        "pkg/feature.py",
    )
    findings = lint_sources([source])
    assert [f.rule for f in findings] == ["R001", "R002"]
    assert [f.line for f in findings] == [1, 3]
    assert findings[0].render().startswith("pkg/feature.py:1:")
