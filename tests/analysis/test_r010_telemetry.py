"""R010: every emitted Tracer event kind is declared vocabulary."""

from __future__ import annotations

VOCAB = (
    'DECLARED_EVENTS = {\n'
    '    "solver.sweep": "convergence",\n'
    '    "solver.start": "summary",\n'
    '    "orphan.kind": "",\n'
    "}\n"
)


def test_flags_undeclared_event_kind(lint):
    findings = lint(
        {
            "src/repro/telemetry/events.py": VOCAB,
            "src/repro/core/solver.py": (
                "def run(tracer, x):\n"
                '    tracer.emit("solver.sweep", norm=x)\n'
                '    tracer.emit("solver.mystery", x=x)\n'
            ),
        },
        select=["R010"],
    )
    assert [f.rule for f in findings] == ["R010"]
    assert "solver.mystery" in findings[0].message
    assert "DECLARED_EVENTS" in findings[0].message


def test_flags_declared_event_with_no_covering_view(lint):
    findings = lint(
        {
            "src/repro/telemetry/events.py": VOCAB,
            "src/repro/core/solver.py": (
                "def run(tracer, x):\n"
                '    tracer.emit("orphan.kind", x=x)\n'
            ),
        },
        select=["R010"],
    )
    assert [f.rule for f in findings] == ["R010"]
    assert "no repro-trace view" in findings[0].message


def test_declared_and_covered_emit_is_clean(lint):
    findings = lint(
        {
            "src/repro/telemetry/events.py": VOCAB,
            "src/repro/core/solver.py": (
                "def run(tracer, x):\n"
                '    tracer.emit("solver.sweep", norm=x)\n'
            ),
        },
        select=["R010"],
    )
    assert findings == []


def test_forwarding_an_event_object_is_not_an_emission_site(lint):
    findings = lint(
        {
            "src/repro/telemetry/events.py": VOCAB,
            "src/repro/telemetry/sinks.py": (
                "def forward(sink, event):\n"
                "    sink.emit(event)\n"
            ),
        },
        select=["R010"],
    )
    assert findings == []


def test_rule_is_inert_without_vocabulary_in_the_run(lint):
    # Linting one file in isolation must not flag every emit.
    findings = lint(
        {
            "src/repro/core/solver.py": (
                "def run(tracer, x):\n"
                '    tracer.emit("solver.sweep", norm=x)\n'
            ),
        },
        select=["R010"],
    )
    assert findings == []


def test_test_files_are_skipped(lint):
    findings = lint(
        {
            "src/repro/telemetry/events.py": VOCAB,
            "tests/telemetry/test_tracer.py": (
                "def test_emit(tracer):\n"
                '    tracer.emit("made.up.event", x=1)\n'
            ),
        },
        select=["R010"],
    )
    assert findings == []
