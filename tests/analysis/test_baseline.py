"""Baselines and suppressions interacting with cross-file rules."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import lint_paths, lint_sources
from repro.analysis.source import SourceFile

GEN_DEF = (
    "import numpy as np\n"
    "GEN = np.random.default_rng(7)\n"
    "def draw(n):\n"
    "    return GEN.uniform(size=n)\n"
)
SUBMITTER = (
    "from repro.experiments.parallel import parallel_map\n"
    "from repro.workloads.gen import draw\n"
    "def run(sizes):\n"
    "    return parallel_map(draw, sizes)\n"
)


def _tree(tmp_path, files):
    for relative, text in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return tmp_path


# ----------------------------------------------------------------------
# Suppression placement for cross-file rules
# ----------------------------------------------------------------------


def test_suppression_at_emit_site_silences_cross_file_finding(lint):
    # R007's boundary finding is *emitted* in the submitting file even
    # though the ambient generator is *defined* elsewhere; the
    # suppression belongs at the emit site.
    suppressed_submitter = SUBMITTER.replace(
        "    return parallel_map(draw, sizes)\n",
        "    # reprolint: allow=R007 legacy-sweep, replay not needed\n"
        "    return parallel_map(draw, sizes)\n",
    )
    findings = lint(
        {
            "src/repro/workloads/gen.py": GEN_DEF,
            "src/repro/experiments/sweep.py": suppressed_submitter,
        },
        select=["R007"],
    )
    # The emit-site (boundary) finding is gone; the definition-site
    # finding in gen.py still stands on its own line.
    assert [f.path.rsplit("/", 1)[-1] for f in findings] == ["gen.py"]


def test_suppression_at_definition_site_does_not_cover_emit_site(lint):
    suppressed_def = GEN_DEF.replace(
        "    return GEN.uniform(size=n)\n",
        "    # reprolint: allow=R007 audited ambient stream\n"
        "    return GEN.uniform(size=n)\n",
    )
    findings = lint(
        {
            "src/repro/workloads/gen.py": suppressed_def,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
        select=["R007"],
    )
    # gen.py's direct finding is suppressed, but the boundary finding
    # reported in sweep.py survives: each site owns its own waiver.
    assert [f.path.rsplit("/", 1)[-1] for f in findings] == ["sweep.py"]


# ----------------------------------------------------------------------
# Baseline fingerprints
# ----------------------------------------------------------------------


def test_baseline_round_trip_suppresses_recorded_findings(tmp_path):
    root = _tree(
        tmp_path,
        {
            "src/repro/workloads/gen.py": GEN_DEF,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
    )
    findings = lint_paths([root / "src"], select=["R007"])
    assert len(findings) == 2

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)
    surviving = apply_baseline(findings, load_baseline(baseline_file))
    assert surviving == []


def test_baseline_survives_line_number_drift(tmp_path):
    root = _tree(tmp_path, {"src/repro/workloads/gen.py": GEN_DEF})
    findings = lint_paths([root / "src"], select=["R007"])
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)

    # Insert lines above the finding: the fingerprint (rule, path,
    # stripped line text) is unchanged, so the baseline still covers it.
    target = root / "src/repro/workloads/gen.py"
    target.write_text("# header comment\n\n" + GEN_DEF)
    drifted = lint_paths([root / "src"], select=["R007"])
    assert len(drifted) == 1
    assert drifted[0].line != findings[0].line
    assert apply_baseline(drifted, load_baseline(baseline_file)) == []


def test_duplicated_violation_exceeds_baseline_count(tmp_path):
    root = _tree(tmp_path, {"src/repro/workloads/gen.py": GEN_DEF})
    findings = lint_paths([root / "src"], select=["R007"])
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)

    # A second identical draw adds a second identical fingerprint; the
    # count in the baseline covers only the first.
    target = root / "src/repro/workloads/gen.py"
    target.write_text(
        GEN_DEF + "def draw_more(n):\n    return GEN.uniform(size=n)\n"
    )
    doubled = lint_paths([root / "src"], select=["R007"])
    assert len(doubled) == 2
    surviving = apply_baseline(doubled, load_baseline(baseline_file))
    assert len(surviving) == 1


def test_corrupt_baseline_fails_loudly(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError):
        load_baseline(bad)
    bad.write_text(json.dumps({"tool": "other"}))
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_lint_sources_cross_file_findings_present_without_baseline(lint):
    # Control for the suppression tests: both findings fire unsuppressed.
    findings = lint(
        {
            "src/repro/workloads/gen.py": GEN_DEF,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
        select=["R007"],
    )
    assert sorted(f.path.rsplit("/", 1)[-1] for f in findings) == [
        "gen.py",
        "sweep.py",
    ]


def test_sources_helper_matches_paths_helper(tmp_path):
    # lint_sources and lint_paths agree on the same tree.
    root = _tree(
        tmp_path,
        {
            "src/repro/workloads/gen.py": GEN_DEF,
            "src/repro/experiments/sweep.py": SUBMITTER,
        },
    )
    by_path = lint_paths([root / "src"], select=["R007"])
    by_source = lint_sources(
        [
            SourceFile.from_path(root / "src/repro/workloads/gen.py"),
            SourceFile.from_path(root / "src/repro/experiments/sweep.py"),
        ],
        select=["R007"],
    )
    assert [(f.rule, f.line, f.col) for f in by_path] == [
        (f.rule, f.line, f.col) for f in by_source
    ]
