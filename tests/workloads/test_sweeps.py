"""Tests for the experiment sweep generators."""

from __future__ import annotations

import pytest

from repro.workloads.sweeps import (
    DEFAULT_SKEWNESSES,
    DEFAULT_USER_COUNTS,
    DEFAULT_UTILIZATIONS,
    skewness_sweep,
    user_count_sweep,
    utilization_sweep,
)


class TestDefaults:
    def test_utilization_range(self):
        assert DEFAULT_UTILIZATIONS[0] == pytest.approx(0.1)
        assert DEFAULT_UTILIZATIONS[-1] == pytest.approx(0.9)
        assert len(DEFAULT_UTILIZATIONS) == 9

    def test_user_counts_four_to_thirty_two(self):
        assert DEFAULT_USER_COUNTS[0] == 4
        assert DEFAULT_USER_COUNTS[-1] == 32

    def test_skewness_one_to_twenty(self):
        assert DEFAULT_SKEWNESSES[0] == 1.0
        assert DEFAULT_SKEWNESSES[-1] == 20.0


class TestUtilizationSweep:
    def test_yields_parameter_and_system(self):
        points = list(utilization_sweep([0.2, 0.7]))
        assert [rho for rho, _ in points] == [0.2, 0.7]
        for rho, system in points:
            assert system.system_utilization == pytest.approx(rho)

    def test_user_count_forwarded(self):
        _, system = next(iter(utilization_sweep([0.3], n_users=6)))
        assert system.n_users == 6


class TestUserCountSweep:
    def test_total_rate_constant(self):
        systems = [s for _, s in user_count_sweep([4, 16], utilization=0.6)]
        assert systems[0].total_arrival_rate == pytest.approx(
            systems[1].total_arrival_rate
        )

    def test_counts_honoured(self):
        for m, system in user_count_sweep([3, 9]):
            assert system.n_users == m


class TestSkewnessSweep:
    def test_skewness_honoured(self):
        for skew, system in skewness_sweep([2.0, 8.0]):
            assert system.speed_skewness == pytest.approx(skew)

    def test_utilization_held_constant(self):
        for _, system in skewness_sweep([1.0, 10.0, 20.0], utilization=0.6):
            assert system.system_utilization == pytest.approx(0.6)
