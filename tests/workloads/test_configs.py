"""Tests for system configuration generators (Table 1, skewness family)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.configs import (
    TABLE1_BASE_RATE,
    TABLE1_COUNTS,
    TABLE1_RELATIVE_RATES,
    homogeneous_system,
    paper_table1_system,
    random_system,
    skewed_system,
    table1_service_rates,
    user_arrival_rates,
)


class TestTable1:
    def test_sixteen_computers(self):
        assert table1_service_rates().size == 16

    def test_four_types_with_counts(self):
        rates = table1_service_rates()
        for relative, count in zip(TABLE1_RELATIVE_RATES, TABLE1_COUNTS):
            assert np.sum(rates == relative * TABLE1_BASE_RATE) == count

    def test_aggregate_rate(self):
        assert table1_service_rates().sum() == pytest.approx(510.0)

    def test_max_ten_times_slowest(self):
        rates = table1_service_rates()
        assert rates.max() / rates.min() == pytest.approx(10.0)

    def test_sorted_fastest_first(self):
        rates = table1_service_rates()
        assert np.all(np.diff(rates) <= 0.0)

    def test_system_utilization_honoured(self):
        for rho in (0.1, 0.6, 0.9):
            system = paper_table1_system(utilization=rho)
            assert system.system_utilization == pytest.approx(rho)

    def test_default_ten_users_uniform(self):
        system = paper_table1_system()
        assert system.n_users == 10
        np.testing.assert_allclose(
            system.arrival_rates, system.arrival_rates[0]
        )

    def test_linear_pattern(self):
        system = paper_table1_system(n_users=4, pattern="linear")
        phi = system.arrival_rates
        np.testing.assert_allclose(phi / phi[0], [1.0, 2.0, 3.0, 4.0])


class TestUserArrivalRates:
    def test_uniform_sums(self):
        phi = user_arrival_rates(8, 100.0)
        assert phi.sum() == pytest.approx(100.0)
        np.testing.assert_allclose(phi, 12.5)

    def test_linear_sums(self):
        phi = user_arrival_rates(5, 30.0, pattern="linear")
        assert phi.sum() == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            user_arrival_rates(0, 1.0)
        with pytest.raises(ValueError):
            user_arrival_rates(3, 0.0)
        with pytest.raises(ValueError):
            user_arrival_rates(3, 1.0, pattern="exotic")


class TestSkewedSystems:
    def test_counts(self):
        system = skewed_system(4.0)
        assert system.n_computers == 16
        mu = system.service_rates
        assert np.sum(mu == 40.0) == 2
        assert np.sum(mu == 10.0) == 14

    def test_skewness_reported(self):
        system = skewed_system(12.0)
        assert system.speed_skewness == pytest.approx(12.0)

    def test_homogeneous_limit(self):
        system = skewed_system(1.0)
        assert system.speed_skewness == 1.0

    def test_constant_utilization(self):
        for skew in (1.0, 5.0, 20.0):
            system = skewed_system(skew, utilization=0.6)
            assert system.system_utilization == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            skewed_system(0.5)
        with pytest.raises(ValueError):
            skewed_system(2.0, n_fast=0)


class TestOtherGenerators:
    def test_homogeneous_system(self):
        system = homogeneous_system(n_computers=4, rate=7.0, utilization=0.5)
        np.testing.assert_allclose(system.service_rates, 7.0)
        assert system.system_utilization == pytest.approx(0.5)

    def test_random_system_valid(self, rng):
        for _ in range(10):
            system = random_system(rng)
            assert system.n_computers == 16
            assert system.n_users == 10
            assert 0.0 < system.system_utilization < 1.0

    def test_random_system_utilization(self, rng):
        system = random_system(rng, utilization=0.35)
        assert system.system_utilization == pytest.approx(0.35, rel=1e-6)

    def test_random_system_range_validated(self, rng):
        with pytest.raises(ValueError):
            random_system(rng, rate_range=(0.0, 1.0))
