"""Tests for the synthetic workload trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamics import run_dynamic_balancing
from repro.workloads.configs import paper_table1_system
from repro.workloads.traces import (
    diurnal_utilizations,
    flash_crowd_utilizations,
    random_walk_utilizations,
    systems_from_utilizations,
)


class TestDiurnal:
    def test_band_respected(self):
        trace = diurnal_utilizations(48, low=0.3, high=0.85)
        assert trace.min() >= 0.3 - 1e-12
        assert trace.max() <= 0.85 + 1e-12

    def test_hits_both_extremes(self):
        trace = diurnal_utilizations(360, low=0.2, high=0.8)
        assert trace.max() == pytest.approx(0.8, abs=1e-3)
        assert trace.min() == pytest.approx(0.2, abs=1e-3)

    def test_length(self):
        assert diurnal_utilizations(7).size == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_utilizations(0)
        with pytest.raises(ValueError):
            diurnal_utilizations(5, low=0.9, high=0.5)
        with pytest.raises(ValueError):
            diurnal_utilizations(5, low=0.2, high=1.0)


class TestFlashCrowd:
    def test_default_spike_in_middle_third(self):
        trace = flash_crowd_utilizations(24, baseline=0.4, peak=0.9)
        assert trace[0] == 0.4
        assert trace[8] == 0.9
        assert trace[-1] == 0.4

    def test_custom_spike(self):
        trace = flash_crowd_utilizations(
            10, baseline=0.3, peak=0.8, start=7, duration=5
        )
        # Spike truncated at the trace end.
        np.testing.assert_array_equal(trace[7:], 0.8)
        np.testing.assert_array_equal(trace[:7], 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_utilizations(5, start=9)
        with pytest.raises(ValueError):
            flash_crowd_utilizations(5, duration=0)


class TestRandomWalk:
    def test_band_and_determinism(self):
        a = random_walk_utilizations(50, seed=3)
        b = random_walk_utilizations(50, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0.05 and a.max() <= 0.95

    def test_mean_reversion(self):
        trace = random_walk_utilizations(
            2000, mean=0.6, volatility=0.05, reversion=0.5, seed=1
        )
        assert trace.mean() == pytest.approx(0.6, abs=0.02)

    def test_different_seeds_differ(self):
        a = random_walk_utilizations(20, seed=1)
        b = random_walk_utilizations(20, seed=2)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walk_utilizations(5, mean=0.99)
        with pytest.raises(ValueError):
            random_walk_utilizations(5, volatility=-0.1)


class TestMaterialization:
    def test_table1_default(self):
        systems = systems_from_utilizations([0.3, 0.7])
        assert len(systems) == 2
        assert systems[0].system_utilization == pytest.approx(0.3)
        assert systems[1].system_utilization == pytest.approx(0.7)

    def test_custom_base(self):
        base = paper_table1_system(utilization=0.5, n_users=4)
        systems = systems_from_utilizations([0.2], base=base)
        assert systems[0].n_users == 4
        assert systems[0].system_utilization == pytest.approx(0.2)

    def test_rejects_out_of_band(self):
        with pytest.raises(ValueError):
            systems_from_utilizations([1.2])

    def test_end_to_end_with_dynamics(self):
        """Trace -> snapshots -> converged dynamic re-balancing."""
        trace = flash_crowd_utilizations(4, baseline=0.4, peak=0.8)
        systems = systems_from_utilizations(trace, n_users=4)
        outcome = run_dynamic_balancing(systems)
        assert outcome.all_converged
        times = outcome.user_time_trajectory.mean(axis=1)
        # The flash crowd epochs are visibly slower.
        assert times[1] > 2.0 * times[0]
