"""Tests for the synthetic workload trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamics import run_dynamic_balancing
from repro.engine.events import (
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetUtilization,
    UserArrival,
    UserDeparture,
)
from repro.workloads.configs import paper_table1_system
from repro.workloads.traces import (
    day_in_production_trace,
    diurnal_utilizations,
    failure_reopen_churn_trace,
    flash_crowd_churn_trace,
    flash_crowd_utilizations,
    merge_churn_traces,
    phi_drift_churn_trace,
    random_walk_utilizations,
    systems_from_utilizations,
    utilization_churn_trace,
)


class TestDiurnal:
    def test_band_respected(self):
        trace = diurnal_utilizations(48, low=0.3, high=0.85)
        assert trace.min() >= 0.3 - 1e-12
        assert trace.max() <= 0.85 + 1e-12

    def test_hits_both_extremes(self):
        trace = diurnal_utilizations(360, low=0.2, high=0.8)
        assert trace.max() == pytest.approx(0.8, abs=1e-3)
        assert trace.min() == pytest.approx(0.2, abs=1e-3)

    def test_length(self):
        assert diurnal_utilizations(7).size == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_utilizations(0)
        with pytest.raises(ValueError):
            diurnal_utilizations(5, low=0.9, high=0.5)
        with pytest.raises(ValueError):
            diurnal_utilizations(5, low=0.2, high=1.0)


class TestFlashCrowd:
    def test_default_spike_in_middle_third(self):
        trace = flash_crowd_utilizations(24, baseline=0.4, peak=0.9)
        assert trace[0] == 0.4
        assert trace[8] == 0.9
        assert trace[-1] == 0.4

    def test_custom_spike(self):
        trace = flash_crowd_utilizations(
            10, baseline=0.3, peak=0.8, start=7, duration=5
        )
        # Spike truncated at the trace end.
        np.testing.assert_array_equal(trace[7:], 0.8)
        np.testing.assert_array_equal(trace[:7], 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_utilizations(5, start=9)
        with pytest.raises(ValueError):
            flash_crowd_utilizations(5, duration=0)


class TestRandomWalk:
    def test_band_and_determinism(self):
        a = random_walk_utilizations(50, seed=3)
        b = random_walk_utilizations(50, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0.05 and a.max() <= 0.95

    def test_mean_reversion(self):
        trace = random_walk_utilizations(
            2000, mean=0.6, volatility=0.05, reversion=0.5, seed=1
        )
        assert trace.mean() == pytest.approx(0.6, abs=0.02)

    def test_different_seeds_differ(self):
        a = random_walk_utilizations(20, seed=1)
        b = random_walk_utilizations(20, seed=2)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walk_utilizations(5, mean=0.99)
        with pytest.raises(ValueError):
            random_walk_utilizations(5, volatility=-0.1)


class TestMaterialization:
    def test_table1_default(self):
        systems = systems_from_utilizations([0.3, 0.7])
        assert len(systems) == 2
        assert systems[0].system_utilization == pytest.approx(0.3)
        assert systems[1].system_utilization == pytest.approx(0.7)

    def test_custom_base(self):
        base = paper_table1_system(utilization=0.5, n_users=4)
        systems = systems_from_utilizations([0.2], base=base)
        assert systems[0].n_users == 4
        assert systems[0].system_utilization == pytest.approx(0.2)

    def test_rejects_out_of_band(self):
        with pytest.raises(ValueError):
            systems_from_utilizations([1.2])

    def test_end_to_end_with_dynamics(self):
        """Trace -> snapshots -> converged dynamic re-balancing."""
        trace = flash_crowd_utilizations(4, baseline=0.4, peak=0.8)
        systems = systems_from_utilizations(trace, n_users=4)
        outcome = run_dynamic_balancing(systems)
        assert outcome.all_converged
        times = outcome.user_time_trajectory.mean(axis=1)
        # The flash crowd epochs are visibly slower.
        assert times[1] > 2.0 * times[0]


class TestChurnTraceGenerators:
    def test_utilization_trace_wraps_each_epoch(self):
        trace = utilization_churn_trace([0.3, 0.7])
        assert trace == [(SetUtilization(0.3),), (SetUtilization(0.7),)]

    def test_utilization_trace_rejects_out_of_band(self):
        with pytest.raises(ValueError):
            utilization_churn_trace([0.5, 1.0])

    def test_phi_drift_is_seeded_and_positive(self):
        a = phi_drift_churn_trace(30, seed=5)
        b = phi_drift_churn_trace(30, seed=5)
        assert a == b
        assert len(a) == 30
        assert all(
            len(epoch) == 1 and epoch[0].factor > 0.0 for epoch in a
        )

    def test_phi_drift_cumulative_level_is_bounded(self):
        # OU on the log keeps the cumulative drift near 1 — it must not
        # walk the demand out of the stable region on its own.
        trace = phi_drift_churn_trace(500, volatility=0.03, seed=2)
        level = 1.0
        levels = []
        for (event,) in trace:
            level *= event.factor
            levels.append(level)
        assert 0.5 < min(levels) and max(levels) < 2.0

    def test_phi_drift_validation(self):
        with pytest.raises(ValueError):
            phi_drift_churn_trace(0)
        with pytest.raises(ValueError):
            phi_drift_churn_trace(5, volatility=-0.1)

    def test_failure_reopen_windows(self):
        trace = failure_reopen_churn_trace(6, [(3, 1, 4), (0, 2, None)])
        assert trace[1] == (ComputerFailure(3),)
        assert trace[2] == (ComputerFailure(0),)
        assert trace[4] == (ComputerReopen(3),)
        assert trace[0] == () and trace[5] == ()

    def test_failure_reopen_validation(self):
        with pytest.raises(ValueError, match="inside the trace"):
            failure_reopen_churn_trace(4, [(0, 9, None)])
        with pytest.raises(ValueError, match="after fail_epoch"):
            failure_reopen_churn_trace(4, [(0, 2, 2)])

    def test_flash_crowd_arrives_and_departs(self):
        trace = flash_crowd_churn_trace(
            9, arrival_rates=(5.0, 3.0), start=2, duration=4
        )
        assert trace[2] == (
            UserArrival((5.0, 3.0), ("flash-0", "flash-1")),
        )
        assert trace[6] == (UserDeparture(names=("flash-0", "flash-1")),)
        assert sum(len(epoch) for epoch in trace) == 2

    def test_flash_crowd_past_end_never_departs(self):
        trace = flash_crowd_churn_trace(
            5, arrival_rates=(1.0,), start=3, duration=10
        )
        kinds = [type(e) for epoch in trace for e in epoch]
        assert kinds == [UserArrival]

    def test_merge_overlays_and_pads(self):
        a = [(ComputerFailure(0),), ()]
        b = [(PhiDrift(factor=1.1),), (ComputerReopen(0),), (PhiDrift(factor=0.9),)]
        merged = merge_churn_traces(a, b)
        assert merged == [
            (ComputerFailure(0), PhiDrift(factor=1.1)),
            (ComputerReopen(0),),
            (PhiDrift(factor=0.9),),
        ]
        assert merge_churn_traces() == []


class TestDayInProduction:
    def test_composition_and_determinism(self):
        a = day_in_production_trace(60, seed=4)
        b = day_in_production_trace(60, seed=4)
        assert a == b
        assert len(a) == 60
        # Every epoch leads with the diurnal utilization then the drift.
        for epoch in a:
            assert isinstance(epoch[0], SetUtilization)
            assert isinstance(epoch[1], PhiDrift)

    def test_default_failure_window_and_flash_crowd(self):
        trace = day_in_production_trace(60)
        kinds = [
            type(event) for epoch in trace for event in epoch
        ]
        assert kinds.count(ComputerFailure) == 1
        assert kinds.count(ComputerReopen) == 1
        assert kinds.count(UserArrival) == 1
        assert kinds.count(UserDeparture) == 1
        failure = next(
            e for epoch in trace for e in epoch
            if isinstance(e, ComputerFailure)
        )
        assert failure.computer == 15  # the slowest: peak stays feasible

    def test_failure_precedes_reopen(self):
        trace = day_in_production_trace(40)
        order = [
            type(e) for epoch in trace for e in epoch
            if isinstance(e, (ComputerFailure, ComputerReopen))
        ]
        assert order == [ComputerFailure, ComputerReopen]

    def test_validation(self):
        with pytest.raises(ValueError):
            day_in_production_trace(0)
        with pytest.raises(ValueError):
            day_in_production_trace(10, period=0)
