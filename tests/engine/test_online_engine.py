"""The online engine loop: epochs, statuses, SLA accounting, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.degradation import CapacityExhausted
from repro.core.equilibrium import best_response_regrets
from repro.engine.events import (
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetUtilization,
    UserArrival,
    UserDeparture,
)
from repro.engine.service import EngineConfig, OnlineEquilibriumEngine
from repro.engine.sla import SLAPolicy
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import InMemorySink
from repro.telemetry.trace import Tracer
from repro.workloads import day_in_production_trace, paper_table1_system

TOL = 1e-6


def make_engine(**config_kwargs) -> OnlineEquilibriumEngine:
    system = paper_table1_system(utilization=0.6, n_users=8)
    return OnlineEquilibriumEngine(system, config=EngineConfig(**config_kwargs))


class TestBootstrap:
    def test_bootstrap_is_a_certified_cold_solve(self):
        engine = make_engine()
        report = engine.bootstrap
        assert report.index == 0
        assert report.status == "ok"
        assert not report.warm_started
        assert report.certified
        assert report.epsilon <= TOL

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            EngineConfig(sweep_budget=0)
        with pytest.raises(ValueError):
            EngineConfig(certify_every=0)
        with pytest.raises(ValueError):
            EngineConfig(warm_mode="tepid")  # type: ignore[arg-type]


class TestEngineCoreLoop:
    def test_epoch_reports_accumulate(self):
        engine = make_engine()
        engine.process_epoch(PhiDrift(factor=1.1))
        engine.process_epoch(SetUtilization(0.7))
        assert engine.epoch == 3
        assert [r.index for r in engine.reports] == [0, 1, 2]

    def test_run_returns_full_rollup(self):
        engine = make_engine()
        run = engine.run([PhiDrift(factor=1.05), (SetUtilization(0.5),)])
        assert run.n_epochs == 3
        assert run.all_certified
        assert run.statuses == ("ok", "ok", "ok")

    def test_profile_is_nominal_width(self):
        engine = make_engine()
        engine.process_epoch(ComputerFailure(15))
        profile = engine.profile
        assert profile is not None
        assert profile.n_computers == 16
        assert profile.fractions[:, 15] == pytest.approx(0.0)


class TestAdversarialChurn:
    """The robustness scenarios the engine exists for.

    Every solvable epoch must carry the same ``best_response_regrets``
    certificate epsilon a cold solve would: re-certified below against
    a from-scratch solve on the same effective system.
    """

    def assert_epoch_matches_cold_solve(self, report):
        assert report.certified
        assert report.epsilon <= TOL
        # Independent re-certification on the epoch's effective system.
        assert report.system is not None and report.result is not None
        cert = best_response_regrets(report.system, report.result.profile)
        assert cert.epsilon <= TOL

    def test_failure_mid_epoch_degrades_and_recertifies(self):
        engine = make_engine()
        report = engine.process_epoch(ComputerFailure(15))
        assert report.status == "degraded"
        assert report.warm_started
        assert report.system is not None
        assert report.system.n_computers == 15
        self.assert_epoch_matches_cold_solve(report)

    def test_reopen_recovers_to_full_fleet(self):
        engine = make_engine()
        engine.process_epoch(ComputerFailure(15))
        report = engine.process_epoch(ComputerReopen(15))
        assert report.status == "ok"
        assert report.warm_started
        assert report.system is not None
        assert report.system.n_computers == 16
        self.assert_epoch_matches_cold_solve(report)

    def test_simultaneous_failure_and_flash_crowd(self):
        engine = make_engine()
        report = engine.process_epoch(
            (ComputerFailure(15), UserArrival((8.0, 6.0, 4.0)))
        )
        assert report.status == "degraded"
        assert report.n_users == 11
        self.assert_epoch_matches_cold_solve(report)

    def test_all_down_window_holds_and_surfaces_typed_error(self):
        engine = make_engine()
        held = engine.profile
        report = engine.process_epoch(
            tuple(ComputerFailure(i) for i in range(16))
        )
        assert report.status == "exhausted"
        assert isinstance(report.error, CapacityExhausted)
        assert not report.certified
        # Degraded hold: the last good profile is retained, not dropped.
        assert engine.profile is not None
        assert np.array_equal(engine.profile.fractions, held.fractions)

    def test_recovery_after_all_down_warm_starts_from_held_profile(self):
        engine = make_engine()
        engine.process_epoch(tuple(ComputerFailure(i) for i in range(16)))
        report = engine.process_epoch(
            tuple(ComputerReopen(i) for i in range(16))
        )
        assert report.status == "ok"
        assert report.warm_started
        self.assert_epoch_matches_cold_solve(report)

    def test_partial_capacity_exhaustion_is_degraded_hold(self):
        engine = make_engine()
        # 0.6 * 510 = 306 offered; fail both fast computers (capacity
        # drops to 310... fail one more to go under).
        report = engine.process_epoch(
            (ComputerFailure(0), ComputerFailure(1), ComputerFailure(2))
        )
        assert report.status == "exhausted"
        assert isinstance(report.error, CapacityExhausted)
        recovery = engine.process_epoch(ComputerReopen(0))
        assert recovery.status == "degraded"
        self.assert_epoch_matches_cold_solve(recovery)

    def test_zero_user_epoch_idles_without_crashing(self):
        engine = make_engine()
        report = engine.process_epoch(UserDeparture(count=8))
        assert report.status == "idle"
        assert report.result is None
        assert engine.profile is None
        back = engine.process_epoch(UserArrival((10.0, 5.0)))
        assert back.status == "ok"
        assert not back.warm_started  # idle dropped the profile
        self.assert_epoch_matches_cold_solve(back)

    def test_pathological_trace_never_raises(self):
        engine = make_engine()
        trace = [
            tuple(ComputerFailure(i) for i in range(16)),
            (PhiDrift(factor=1.2),),
            (UserArrival((3.0,)),),
            tuple(ComputerReopen(i) for i in range(16)),
            (UserDeparture(count=9),),
            (UserArrival((7.0, 2.0)),),
        ]
        run = engine.run(trace)
        assert run.exhausted_epochs == 3
        assert run.idle_epochs == 1
        assert run.all_certified  # solvable epochs only


class TestCertificateParityWithColdSolves:
    def test_every_epoch_epsilon_matches_cold_solve_target(self):
        """Warm-started epochs certify at the same epsilon a cold solve
        would — incremental re-equilibration trades no accuracy."""
        system = paper_table1_system(utilization=0.5, n_users=8)
        trace = day_in_production_trace(24, seed=11)
        warm = OnlineEquilibriumEngine(
            system, config=EngineConfig(warm_mode="repair")
        ).run(trace)
        cold = OnlineEquilibriumEngine(
            system, config=EngineConfig(warm_mode="off")
        ).run(trace)
        assert warm.all_certified and cold.all_certified
        for w, c in zip(warm.reports, cold.reports):
            assert w.status == c.status
            if w.status not in ("ok", "degraded"):
                continue
            assert w.epsilon <= TOL and c.epsilon <= TOL
            # Same (unique) equilibrium either way — an epsilon-certificate
            # bounds regret, not profile distance, so compare loosely.
            assert w.result is not None and c.result is not None
            assert w.result.user_times == pytest.approx(
                c.result.user_times, rel=1e-2
            )


class TestSLAAccounting:
    def test_violations_counted_against_target(self):
        engine = make_engine(sla=SLAPolicy(target_response_time=1e-4))
        run = engine.run([(PhiDrift(factor=1.01),)])
        assert run.sla is not None
        # Impossible target: every user violates every epoch.
        assert run.sla.violations == 2 * 8
        assert run.total_sla_violations == run.sla.violations

    def test_exhausted_epoch_counts_all_users_unserved(self):
        engine = make_engine(sla=SLAPolicy(target_response_time=10.0))
        engine.process_epoch(tuple(ComputerFailure(i) for i in range(16)))
        report = engine.sla_report()
        assert report is not None
        assert report.unserved_epochs == 1
        assert report.violations == 8

    def test_no_policy_no_report(self):
        engine = make_engine()
        assert engine.sla_report() is None
        assert engine.run([]).sla is None


class TestEngineTelemetry:
    def test_epoch_events_and_counters_emitted(self):
        sink = InMemorySink()
        tracer = Tracer(sink, registry=MetricsRegistry())
        system = paper_table1_system(utilization=0.6, n_users=4)
        engine = OnlineEquilibriumEngine(
            system,
            config=EngineConfig(sla=SLAPolicy(target_response_time=1.0)),
            tracer=tracer,
        )
        engine.process_epoch(ComputerFailure(15))
        engine.process_epoch(ComputerReopen(15))
        names = [event.name for event in sink.events]
        assert names.count("engine.epoch") == 3
        assert "engine.start" in names
        assert "engine.event" in names
        epochs = [e for e in sink.events if e.name == "engine.epoch"]
        assert [e.fields["status"] for e in epochs] == [
            "ok",
            "degraded",
            "ok",
        ]
        snapshot = tracer.registry.snapshot()
        assert snapshot["counters"]["engine.epochs"] == 3
        assert snapshot["counters"]["engine.degraded_epochs"] == 1

    def test_bounded_effort_per_event(self):
        engine = make_engine(sweep_budget=5, certify_every=2)
        report = engine.process_epoch(SetUtilization(0.85))
        assert report.sweeps <= 5
