"""Churn-event vocabulary: validation, normalization, labels."""

from __future__ import annotations

import pytest

from repro.engine.events import (
    CapacityChange,
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetDemand,
    SetUtilization,
    UserArrival,
    UserDeparture,
    as_epoch,
    event_kind,
)


class TestValidation:
    def test_arrival_requires_positive_rates(self):
        with pytest.raises(ValueError):
            UserArrival(())
        with pytest.raises(ValueError):
            UserArrival((1.0, -2.0))

    def test_arrival_names_must_match_length(self):
        with pytest.raises(ValueError):
            UserArrival((1.0, 2.0), names=("a",))

    def test_departure_requires_exactly_one_selector(self):
        with pytest.raises(ValueError):
            UserDeparture()
        with pytest.raises(ValueError):
            UserDeparture(names=("a",), count=1)
        UserDeparture(names=("a",))
        UserDeparture(count=2)

    def test_drift_factors_positive(self):
        with pytest.raises(ValueError):
            PhiDrift(factor=0.0)
        with pytest.raises(ValueError):
            PhiDrift(per_user=(("a", -1.0),))

    def test_utilization_strictly_inside_unit_interval(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                SetUtilization(bad)

    def test_computer_indices_nonnegative(self):
        with pytest.raises(ValueError):
            ComputerFailure(-1)
        with pytest.raises(ValueError):
            ComputerReopen(-2)
        with pytest.raises(ValueError):
            CapacityChange(-1, 10.0)

    def test_capacity_change_rate_positive(self):
        with pytest.raises(ValueError):
            CapacityChange(0, 0.0)


class TestEpochNormalization:
    def test_single_event_becomes_one_epoch(self):
        event = ComputerFailure(3)
        assert as_epoch(event) == (event,)

    def test_tuple_passes_through(self):
        epoch = (ComputerFailure(1), UserArrival((2.0,)))
        assert as_epoch(epoch) is epoch

    def test_empty_epoch_allowed(self):
        assert as_epoch(()) == ()

    def test_non_events_rejected(self):
        with pytest.raises(TypeError):
            as_epoch("failure")
        with pytest.raises(TypeError):
            as_epoch((ComputerFailure(0), "reopen"))

    def test_event_kinds_are_stable_labels(self):
        assert event_kind(ComputerFailure(0)) == "computer_failure"
        assert event_kind(UserArrival((1.0,))) == "user_arrival"
        assert event_kind(SetDemand((1.0,))) == "set_demand"
        assert event_kind(PhiDrift(factor=1.1)) == "phi_drift"
