"""Bounded re-equilibration: sweep budgets and certificate early stops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import best_response_regrets
from repro.core.nash import NashSolver
from repro.engine.reequilibrate import converge_bounded
from repro.workloads import paper_table1_system

SYSTEM = paper_table1_system(utilization=0.7, n_users=8)
TOL = 1e-6


class TestBoundedConvergence:
    def test_certifies_at_target_epsilon(self):
        outcome = converge_bounded(
            SYSTEM,
            "proportional",
            tolerance=TOL,
            epsilon=TOL,
            sweep_budget=500,
            certify_every=16,
        )
        assert outcome.certified
        assert outcome.certificate is not None
        assert outcome.epsilon <= TOL
        assert outcome.result.converged

    def test_sweep_budget_is_a_hard_cap(self):
        outcome = converge_bounded(
            SYSTEM,
            "proportional",
            tolerance=1e-14,
            epsilon=1e-14,
            sweep_budget=7,
            certify_every=3,
        )
        assert outcome.sweeps <= 7
        assert not outcome.certified

    def test_early_stop_beats_sweep_norm_criterion(self):
        # A loose epsilon certifies long before the tight sweep norm.
        outcome = converge_bounded(
            SYSTEM,
            "proportional",
            tolerance=1e-12,
            epsilon=1e-3,
            sweep_budget=500,
            certify_every=4,
        )
        assert outcome.certified
        assert outcome.early_stopped
        full = NashSolver(tolerance=1e-12).solve(SYSTEM, "proportional")
        assert outcome.sweeps < full.iterations

    def test_unchunked_path_matches_plain_solver_exactly(self):
        outcome = converge_bounded(
            SYSTEM,
            "proportional",
            tolerance=TOL,
            epsilon=TOL,
            sweep_budget=500,
            certify_every=None,
        )
        plain = NashSolver(tolerance=TOL, max_sweeps=500).solve(
            SYSTEM, "proportional"
        )
        assert outcome.result.iterations == plain.iterations
        assert np.array_equal(
            outcome.result.profile.fractions, plain.profile.fractions
        )
        assert np.array_equal(
            outcome.result.norm_history, plain.norm_history
        )

    def test_chunked_profile_is_a_true_equilibrium(self):
        outcome = converge_bounded(
            SYSTEM,
            "uniform",
            tolerance=TOL,
            epsilon=TOL,
            sweep_budget=500,
            certify_every=8,
        )
        cert = best_response_regrets(SYSTEM, outcome.result.profile)
        assert cert.epsilon <= TOL

    def test_norm_history_accumulates_across_chunks(self):
        outcome = converge_bounded(
            SYSTEM,
            "proportional",
            tolerance=TOL,
            epsilon=TOL,
            sweep_budget=500,
            certify_every=8,
        )
        assert len(outcome.result.norm_history) == outcome.sweeps
        assert outcome.sweeps > 8  # needed more than one chunk

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            converge_bounded(
                SYSTEM, "proportional", tolerance=TOL, epsilon=TOL,
                sweep_budget=0, certify_every=None,
            )
        with pytest.raises(ValueError):
            converge_bounded(
                SYSTEM, "proportional", tolerance=TOL, epsilon=TOL,
                sweep_budget=10, certify_every=0,
            )
