"""FleetState: event application and derived systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.degradation import CapacityExhausted
from repro.engine.events import (
    CapacityChange,
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetDemand,
    SetUtilization,
    UserArrival,
    UserDeparture,
)
from repro.engine.state import FleetState
from repro.workloads import paper_table1_system


@pytest.fixture()
def state() -> FleetState:
    return FleetState(paper_table1_system(utilization=0.6, n_users=4))


class TestPopulationChurn:
    def test_arrival_appends_users_with_auto_names(self, state):
        state.apply(UserArrival((5.0, 3.0)))
        assert state.n_users == 6
        assert state.user_names[-2:] == ("user-4", "user-5")
        assert state.user_rates[-2:] == pytest.approx([5.0, 3.0])

    def test_arrival_rejects_name_clash(self, state):
        with pytest.raises(ValueError, match="already present"):
            state.apply(UserArrival((1.0,), names=("user-0",)))

    def test_departure_by_name(self, state):
        state.apply(UserDeparture(names=("user-1", "user-3")))
        assert state.user_names == ("user-0", "user-2")

    def test_departure_of_missing_user_rejected(self, state):
        with pytest.raises(ValueError, match="not present"):
            state.apply(UserDeparture(names=("ghost",)))

    def test_departure_by_count_removes_most_recent(self, state):
        state.apply(UserArrival((5.0,), names=("late",)))
        state.apply(UserDeparture(count=2))
        assert state.user_names == ("user-0", "user-1", "user-2")

    def test_departure_count_clamps_to_population(self, state):
        state.apply(UserDeparture(count=99))
        assert state.n_users == 0

    def test_auto_names_do_not_recycle_after_departure(self, state):
        state.apply(UserDeparture(count=4))
        state.apply(UserArrival((1.0,)))
        assert state.user_names == ("user-4",)

    def test_drift_scales_rates(self, state):
        before = state.user_rates.copy()
        state.apply(PhiDrift(factor=1.5, per_user=(("user-0", 2.0),)))
        assert state.user_rates[0] == pytest.approx(before[0] * 3.0)
        assert state.user_rates[1:] == pytest.approx(before[1:] * 1.5)

    def test_set_demand_replaces_population(self, state):
        state.apply(SetDemand((10.0, 20.0), names=("a", "b")))
        assert state.user_names == ("a", "b")
        assert state.total_demand == pytest.approx(30.0)


class TestFleetChurn:
    def test_failure_and_reopen_are_idempotent(self, state):
        state.apply(ComputerFailure(15))
        state.apply(ComputerFailure(15))
        assert state.n_online == 15
        state.apply(ComputerReopen(15))
        state.apply(ComputerReopen(15))
        assert state.n_online == 16

    def test_capacity_change_updates_rate(self, state):
        state.apply(CapacityChange(0, 150.0))
        assert state.service_rates[0] == pytest.approx(150.0)

    def test_out_of_fleet_index_rejected(self, state):
        with pytest.raises(ValueError, match="nominal fleet"):
            state.apply(ComputerFailure(16))

    def test_set_utilization_targets_nominal_capacity(self, state):
        state.apply(ComputerFailure(15))
        state.apply(SetUtilization(0.5))
        # Nominal capacity (510) includes the offline computer.
        assert state.total_demand == pytest.approx(0.5 * 510.0)
        assert state.online_capacity == pytest.approx(500.0)


class TestDerivedSystems:
    def test_effective_system_masks_offline(self, state):
        state.apply(ComputerFailure(15))
        effective = state.effective_system()
        assert effective.n_computers == 15
        assert "computer-15" not in effective.computer_names

    def test_effective_system_raises_typed_error_when_overloaded(self, state):
        state.apply(SetUtilization(0.9))
        for computer in range(8):
            state.apply(ComputerFailure(computer))
        with pytest.raises(CapacityExhausted) as excinfo:
            state.effective_system()
        assert excinfo.value.offline == tuple(range(8))

    def test_all_down_window_is_capacity_exhausted(self, state):
        for computer in range(16):
            state.apply(ComputerFailure(computer))
        with pytest.raises(CapacityExhausted):
            state.effective_system()

    def test_zero_users_has_no_game(self, state):
        state.apply(UserDeparture(count=4))
        with pytest.raises(ValueError, match="no users"):
            state.effective_system()

    def test_full_system_keeps_nominal_width(self, state):
        state.apply(ComputerFailure(15))
        assert state.full_system().n_computers == 16

    def test_effective_matches_source_system_when_unchanged(self, state):
        base = paper_table1_system(utilization=0.6, n_users=4)
        effective = state.effective_system()
        assert np.array_equal(effective.service_rates, base.service_rates)
        assert np.array_equal(effective.arrival_rates, base.arrival_rates)
