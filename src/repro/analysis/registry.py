"""Rule interface and registry.

Rules are small classes registered with the :func:`register` decorator;
the engine instantiates the registry once and runs every selected rule
over every parsed file.  Each rule carries its code, a short name used
in ``--list-rules`` output, and the invariant it protects (surfaced in
documentation and error messages).
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Type

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.source import SourceFile

__all__ = ["Rule", "register", "all_rules", "get_rule", "selected_rules"]


class Rule(abc.ABC):
    """One enforceable invariant."""

    #: Stable identifier ("R001"); also the suppression token.
    code: str = "R000"
    #: Short kebab-case name for listings.
    name: str = "abstract"
    #: One-sentence statement of the invariant the rule protects.
    rationale: str = ""

    @abc.abstractmethod
    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield every violation of this rule in ``source``."""

    def finding(self, source: SourceFile, line: int, col: int, message: str) -> Finding:
        return Finding(
            rule=self.code, path=source.path, line=line, col=col, message=message
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(code={self.code!r})"


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package populates the registry exactly once.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None


def selected_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """The rule set for one run: ``select`` whitelist minus ``ignore``.

    Unknown codes raise ``KeyError`` so typos fail loudly instead of
    silently disabling a gate.
    """
    rules = all_rules()
    if select is not None:
        wanted = list(select)
        rules = [get_rule(code) for code in sorted(set(wanted))]
    if ignore is not None:
        dropped = {get_rule(code).code for code in ignore}
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules
