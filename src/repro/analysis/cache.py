"""Content-hash incremental caching for full-repo lint runs.

The cross-module rules made a lint run a whole-program analysis; this
module keeps the *warm* cost proportional to what actually changed.
Per file the cache stores the content hash, the serialized
:class:`~repro.analysis.project.ModuleFacts` and the surviving
findings; a warm run re-parses and re-checks only the invalidation
closure of the edited files and answers from the cache for the rest —
for a no-change run, nothing is parsed at all.

Invalidation is conservative in three layers:

* **content**: a file whose hash changed (or that is new) is re-checked;
* **dependencies**: any file importing a re-checked module — directly
  or transitively, resolved through the cached import tables — is
  re-checked, because cross-module rules may derive its findings from
  the changed file's summaries (definition-site facts move emit-site
  findings);
* **vocabulary**: a change to any file defining project-wide vocabulary
  (enums, ``DECLARED_EVENTS``) invalidates everything — R004/R010
  findings anywhere can depend on it.

The cache is also keyed by the selected rule set and the cache-format
version; a mismatch of either means a cold run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.context import ProjectContext
from repro.analysis.finding import PARSE_ERROR, Finding
from repro.analysis.project import ModuleFacts
from repro.analysis.registry import selected_rules
from repro.analysis.source import SourceFile

__all__ = ["CACHE_VERSION", "lint_paths_cached"]

CACHE_VERSION = 1


def _content_hash(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _load_cache(cache_path: Path, rules_key: str) -> dict[str, Any]:
    """The per-file entry table, or empty when stale/absent/corrupt."""
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CACHE_VERSION
        or payload.get("rules") != rules_key
        or not isinstance(payload.get("files"), dict)
    ):
        return {}
    return payload["files"]


def _save_cache(
    cache_path: Path, rules_key: str, entries: dict[str, Any]
) -> None:
    payload = {
        "tool": "repro-lint",
        "version": CACHE_VERSION,
        "rules": rules_key,
        "files": entries,
    }
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    cache_path.write_text(json.dumps(payload), encoding="utf-8")


def lint_paths_cached(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    cache_path: str | Path,
) -> list[Finding]:
    """Discover, lint and cache; behaviorally identical to ``lint_paths``."""
    from repro.analysis.engine import discover_files

    rules = selected_rules(select, ignore)
    rules_key = ",".join(rule.code for rule in rules)
    cache_file = Path(cache_path)
    entries = _load_cache(cache_file, rules_key)

    files = discover_files(paths)
    hashes = {str(path): _content_hash(path) for path in files}

    # Layer 1: content.
    changed: set[str] = {
        path
        for path, digest in hashes.items()
        if path not in entries or entries[path]["hash"] != digest
    }
    removed = set(entries) - set(hashes)

    # Facts for every file: from cache when unchanged, by parsing when
    # not.  Unparseable files become PARSE_ERROR findings, as in the
    # uncached path, and are never cached.
    facts_by_path: dict[str, ModuleFacts] = {}
    parsed: dict[str, SourceFile] = {}
    errors: list[Finding] = []
    unparseable: set[str] = set()
    for path in files:
        key = str(path)
        if key not in changed:
            facts_by_path[key] = ModuleFacts.from_json(entries[key]["facts"])
            continue
        try:
            source = SourceFile.from_path(path)
        except SyntaxError as exc:
            unparseable.add(key)
            errors.append(
                Finding(
                    rule=PARSE_ERROR,
                    path=key,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        parsed[key] = source

    context = ProjectContext()
    for key, facts in facts_by_path.items():
        context.add_facts(facts)
    for key, source in parsed.items():
        facts_by_path[key] = context.facts_for(source)

    # Layer 3: vocabulary.  Checked before the dependency walk because
    # it short-circuits to "re-check everything".
    vocabulary_changed = False
    for key in changed | removed:
        if key in facts_by_path and facts_by_path[key].is_vocabulary:
            vocabulary_changed = True
        if key in entries and entries[key].get("vocabulary"):
            vocabulary_changed = True

    checkable = [str(path) for path in files if str(path) not in unparseable]
    if vocabulary_changed:
        recheck = set(checkable)
    else:
        # Layer 2: reverse-dependency closure over dotted module names.
        recheck = set(changed) - unparseable
        dirty_modules: set[str] = set()
        for key in changed | removed:
            if key in facts_by_path:
                dirty_modules.add(facts_by_path[key].module)
            if key in entries:
                dirty_modules.add(entries[key]["facts"]["module"])
        grew = True
        while grew:
            grew = False
            for key in checkable:
                if key in recheck:
                    continue
                facts = facts_by_path[key]
                if facts.dep_modules & dirty_modules:
                    recheck.add(key)
                    dirty_modules.add(facts.module)
                    grew = True

    # Parse the cached-facts files that still need a rule pass.
    for key in sorted(recheck - set(parsed)):
        parsed[key] = SourceFile.from_path(key)

    findings: list[Finding] = list(errors)
    fresh_findings: dict[str, list[Finding]] = {}
    for key in checkable:
        if key not in recheck:
            findings.extend(
                Finding(**record) for record in entries[key]["findings"]
            )
            continue
        source = parsed[key]
        file_findings = [
            finding
            for rule in rules
            for finding in rule.check(source, context)
            if not source.is_suppressed(finding.rule, finding.line)
        ]
        fresh_findings[key] = sorted(
            file_findings, key=lambda finding: finding.sort_key
        )
        findings.extend(file_findings)

    new_entries: dict[str, Any] = {}
    for key in checkable:
        facts = facts_by_path[key]
        new_entries[key] = {
            "hash": hashes[key],
            "vocabulary": facts.is_vocabulary,
            "facts": (
                facts.to_json() if key in changed else entries[key]["facts"]
            ),
            "findings": (
                [finding.to_dict() for finding in fresh_findings[key]]
                if key in fresh_findings
                else entries[key]["findings"]
            ),
        }
    _save_cache(cache_file, rules_key, new_entries)
    return sorted(findings, key=lambda finding: finding.sort_key)
