"""Parsed source files and per-line suppression comments.

A :class:`SourceFile` bundles everything a rule needs to inspect one
file: the AST, the raw lines, the path decomposed into parts (rules
scope themselves by path component — e.g. R005 only applies inside
``simengine``/``distributed``), and the suppression table parsed from
``# reprolint: allow=R00X`` comments.

Suppression grammar::

    # reprolint: allow=R002 exact-sentinel
    # reprolint: allow=R001,R003 any free-text reason

A suppression comment covers the line it sits on; a comment that is
alone on its line additionally covers the next line, so multi-line
statements can be suppressed from above.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SourceFile", "parse_suppressions"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*allow=([A-Za-z0-9,]+)")


def parse_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule codes suppressed there."""
    table: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        table.setdefault(number, set()).update(codes)
        if line.lstrip().startswith("#"):
            # Standalone comment: also covers the statement below it.
            table.setdefault(number + 1, set()).update(codes)
    return {number: frozenset(codes) for number, codes in table.items()}


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file, ready for rule checks."""

    path: str
    text: str
    tree: ast.Module
    lines: tuple[str, ...]
    parts: tuple[str, ...]
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, path: str | Path) -> "SourceFile":
        """Parse ``text`` as the contents of ``path``.

        Raises
        ------
        SyntaxError
            If the text is not valid Python; the engine converts this
            into a :data:`~repro.analysis.finding.PARSE_ERROR` finding.
        """
        path = Path(path)
        tree = ast.parse(text, filename=str(path))
        lines = text.splitlines()
        return cls(
            path=str(path),
            text=text,
            tree=tree,
            lines=tuple(lines),
            parts=path.parts,
            suppressions=parse_suppressions(lines),
        )

    @classmethod
    def from_path(cls, path: str | Path) -> "SourceFile":
        return cls.from_text(Path(path).read_text(encoding="utf-8"), path)

    # ------------------------------------------------------------------
    def is_suppressed(self, code: str, line: int) -> bool:
        """Is rule ``code`` suppressed on (or just above) ``line``?"""
        return code in self.suppressions.get(line, frozenset())

    def in_package(self, *names: str) -> bool:
        """Does any path component match one of ``names``?

        Rules use path components rather than importable module names so
        they behave identically on the installed package, the ``src``
        tree, and synthetic fixture paths in tests.
        """
        return any(part in names for part in self.parts)

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    @property
    def is_test_file(self) -> bool:
        """Is this a pytest file (``test_*.py`` / ``conftest.py``)?

        The cross-module rules (R006–R010) police *shipped* code: tests
        deliberately construct violations (seeded lambdas, synthetic
        trace events), so system-invariant rules skip them.
        """
        return (
            self.filename.startswith("test_")
            or self.filename == "conftest.py"
        )
