"""Project-wide dataflow facts: symbols, function summaries, call graph.

PR 2's rules were per-file pattern matchers; the invariants the sharded
solving plan leans on (pool purity, RNG provenance, kernel aliasing,
typed-error flow, telemetry vocabulary) are properties of *paths through
the call graph*, not of single files.  This module is the engine that
makes those checkable:

* :func:`module_name_for` — a stable dotted module name for every file
  in a lint run (``src/repro/core/nash.py`` -> ``repro.core.nash``), so
  imports written in source resolve to files in the same run.
* :func:`collect_facts` — one :class:`ModuleFacts` per parsed file:
  the import table (absolute, relative imports resolved), top-level
  defs, enum vocabularies, module-level generator globals, declared
  telemetry events, and a :class:`FunctionSummary` for every function,
  method, nested def and lambda.
* :class:`ProjectModel` — the cross-module layer: an index of all
  facts, name resolution from any call expression back to the defining
  summary, and a fixed-point propagation pass that composes summaries
  across calls (a function that calls a global-writing helper *is* a
  global-writing function; a kernel that hands a parameter to an
  in-place helper *does* mutate that parameter).

Everything here is purely syntactic and flow-insensitive (assignments
are tracked in source order within a function, which is the usual lint
approximation); the propagation is a monotone set union, so the fixed
point exists and the worklist terminates.

Facts serialize to JSON (:meth:`ModuleFacts.to_json`) so the
incremental cache (:mod:`repro.analysis.cache`) can rebuild the model
for unchanged files without re-parsing them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.analysis.source import SourceFile

__all__ = [
    "AUDITED_STATE_MODULES",
    "CallSite",
    "FunctionSummary",
    "GlobalWrite",
    "ModuleFacts",
    "MutationSite",
    "ProjectModel",
    "RngUse",
    "Transitive",
    "collect_facts",
    "module_name_for",
]

#: Modules whose module-level state management is audited infrastructure:
#: the process-pool layer's executor cache and the ambient tracer stack
#: are deliberately process-local (workers keep their own copies and the
#: coordinator never reads results out of them), so their global writes
#: are not pool-purity hazards.  R006 skips writes defined in these
#: modules the same way R001 skips the audited seed helper.
AUDITED_STATE_MODULES = frozenset(
    {
        "repro.experiments.parallel",
        "repro.experiments.shm",
        "repro.telemetry.trace",
    }
)

#: Calls that construct a ``numpy.random`` generator (seededness is
#: R001's concern; R007 only tracks *provenance*).
_GENERATOR_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

#: ``Generator`` methods that consume random state.
_STOCHASTIC_METHODS = frozenset(
    {
        "random",
        "normal",
        "uniform",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "exponential",
        "poisson",
        "standard_normal",
        "standard_exponential",
        "standard_gamma",
        "binomial",
        "gamma",
        "beta",
        "lognormal",
        "geometric",
        "laplace",
        "logistic",
        "gumbel",
        "pareto",
        "rayleigh",
        "triangular",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
        "dirichlet",
        "multinomial",
        "multivariate_normal",
        "negative_binomial",
        "hypergeometric",
        "bytes",
    }
)

#: numpy calls whose result may alias their first argument (views or
#: conditional no-copy conversions).
_ALIASING_NP_CALLS = frozenset(
    {
        "numpy.asarray",
        "numpy.asanyarray",
        "numpy.ascontiguousarray",
        "numpy.asfortranarray",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
        "numpy.atleast_3d",
        "numpy.ravel",
        "numpy.reshape",
        "numpy.transpose",
        "numpy.squeeze",
        "numpy.broadcast_to",
        "numpy.swapaxes",
        "numpy.moveaxis",
    }
)

#: Array methods returning views of the receiver.
_ALIASING_METHODS = frozenset(
    {"reshape", "ravel", "view", "squeeze", "transpose", "swapaxes"}
)

#: Array attributes that alias the underlying buffer.
_ALIASING_ATTRS = frozenset({"T", "real", "imag", "flat"})

#: Array methods that mutate the receiver in place.
_MUTATOR_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "setflags", "byteswap"}
)

#: numpy functions that mutate their first argument.
_NP_FIRSTARG_MUTATORS = frozenset(
    {
        "numpy.copyto",
        "numpy.put",
        "numpy.place",
        "numpy.putmask",
        "numpy.put_along_axis",
        "numpy.fill_diagonal",
    }
)

#: Container methods that mutate the receiver (module-global hazard).
_CONTAINER_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
        "extendleft",
    }
)


def module_name_for(path_parts: tuple[str, ...]) -> str:
    """Dotted module name of a file path within a lint run.

    Strips everything up to (and including) the last ``src`` component,
    drops the ``.py`` suffix and a trailing ``__init__``, so the
    installed package, the ``src`` tree and synthetic fixture paths all
    produce the same import-resolvable names.
    """
    parts = list(path_parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "__main__"


def _dotted_parts(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` expression -> ``("a", "b", "c")``; ``None`` otherwise."""
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        base = _dotted_parts(node.value)
        if base is not None:
            return base + (node.attr,)
    return None


@dataclass(frozen=True)
class GlobalWrite:
    """One write (or in-place mutation) of a module-level name."""

    name: str
    lineno: int
    col: int

    def to_json(self) -> list[Any]:
        return [self.name, self.lineno, self.col]


@dataclass(frozen=True)
class RngUse:
    """One stochastic draw from an ambient (module-level) generator."""

    generator: str
    lineno: int
    col: int

    def to_json(self) -> list[Any]:
        return [self.generator, self.lineno, self.col]


@dataclass(frozen=True)
class MutationSite:
    """One in-place mutation of a function parameter."""

    param: str
    lineno: int
    col: int
    reason: str

    def to_json(self) -> list[Any]:
        return [self.param, self.lineno, self.col, self.reason]


@dataclass(frozen=True)
class CallSite:
    """One call with enough static context to compose summaries.

    ``target`` is the raw dotted path of the callee expression
    (resolution happens in the model, where the import tables live);
    ``param_args`` records which *caller parameters* flow into which
    callee argument slots — ``(position | keyword, caller_param)``
    pairs — so parameter-mutation summaries compose across the call.
    ``arg_offset`` is 1 for ``self.method(...)`` calls (the bound
    receiver occupies the callee's first slot).
    """

    target: tuple[str, ...]
    lineno: int
    col: int
    param_args: tuple[tuple[int | str, str], ...] = ()
    arg_offset: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "target": list(self.target),
            "lineno": self.lineno,
            "col": self.col,
            "param_args": [list(pair) for pair in self.param_args],
            "arg_offset": self.arg_offset,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(
            target=tuple(data["target"]),
            lineno=int(data["lineno"]),
            col=int(data["col"]),
            param_args=tuple(
                (pos if isinstance(pos, str) else int(pos), str(name))
                for pos, name in data.get("param_args", ())
            ),
            arg_offset=int(data.get("arg_offset", 0)),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Per-function facts, composable across calls by the model.

    ``kind`` is ``"function"`` (module-level def), ``"method"`` (def
    directly inside a module-level class), ``"nested"`` (def inside
    another function — unpicklable, hence pool-hostile) or
    ``"lambda"``.
    """

    module: str
    qualname: str
    name: str
    lineno: int
    end_lineno: int
    col: int
    kind: str
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    global_writes: tuple[GlobalWrite, ...]
    ambient_rng: tuple[RngUse, ...]
    raises: frozenset[str]
    calls: tuple[CallSite, ...]
    mutations: tuple[MutationSite, ...]
    local_defs: Mapping[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"

    def to_json(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "end_lineno": self.end_lineno,
            "col": self.col,
            "kind": self.kind,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
            "global_writes": [w.to_json() for w in self.global_writes],
            "ambient_rng": [u.to_json() for u in self.ambient_rng],
            "raises": sorted(self.raises),
            "calls": [c.to_json() for c in self.calls],
            "mutations": [m.to_json() for m in self.mutations],
            "local_defs": dict(self.local_defs),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            module=str(data["module"]),
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            lineno=int(data["lineno"]),
            end_lineno=int(data.get("end_lineno", data["lineno"])),
            col=int(data["col"]),
            kind=str(data["kind"]),
            params=tuple(data["params"]),
            kwonly=tuple(data["kwonly"]),
            global_writes=tuple(
                GlobalWrite(str(n), int(l), int(c))
                for n, l, c in data["global_writes"]
            ),
            ambient_rng=tuple(
                RngUse(str(g), int(l), int(c))
                for g, l, c in data["ambient_rng"]
            ),
            raises=frozenset(data["raises"]),
            calls=tuple(CallSite.from_json(c) for c in data["calls"]),
            mutations=tuple(
                MutationSite(str(p), int(l), int(c), str(r))
                for p, l, c, r in data["mutations"]
            ),
            local_defs=dict(data.get("local_defs", {})),
        )


@dataclass(frozen=True)
class ModuleFacts:
    """Everything the cross-file layer knows about one parsed file."""

    module: str
    path: str
    imports: Mapping[str, str]
    defs: Mapping[str, str]
    module_globals: frozenset[str]
    ambient_generators: frozenset[str]
    declared_events: Mapping[str, str] | None
    enums: Mapping[str, tuple[str, ...]]
    dep_modules: frozenset[str]
    summaries: tuple[FunctionSummary, ...]

    @property
    def is_vocabulary(self) -> bool:
        """Does this file define project-wide vocabulary (enums/events)?

        Vocabulary files are universal dependencies for the incremental
        cache: a change to them can alter findings in any file.
        """
        return bool(self.enums) or self.declared_events is not None

    def to_json(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(self.imports),
            "defs": dict(self.defs),
            "module_globals": sorted(self.module_globals),
            "ambient_generators": sorted(self.ambient_generators),
            "declared_events": (
                None
                if self.declared_events is None
                else dict(self.declared_events)
            ),
            "enums": {name: list(members) for name, members in self.enums.items()},
            "dep_modules": sorted(self.dep_modules),
            "summaries": [s.to_json() for s in self.summaries],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ModuleFacts":
        declared = data.get("declared_events")
        return cls(
            module=str(data["module"]),
            path=str(data["path"]),
            imports=dict(data["imports"]),
            defs=dict(data["defs"]),
            module_globals=frozenset(data["module_globals"]),
            ambient_generators=frozenset(data["ambient_generators"]),
            declared_events=None if declared is None else dict(declared),
            enums={
                name: tuple(members)
                for name, members in data["enums"].items()
            },
            dep_modules=frozenset(data["dep_modules"]),
            summaries=tuple(
                FunctionSummary.from_json(s) for s in data["summaries"]
            ),
        )


# ----------------------------------------------------------------------
# Fact collection
# ----------------------------------------------------------------------


def _import_table(
    tree: ast.Module, module: str
) -> tuple[dict[str, str], set[str]]:
    """Local-name -> absolute dotted target, plus dotted dep modules.

    Relative imports are resolved against ``module``'s package so that
    ``from .parallel import parallel_map`` inside
    ``repro.experiments.common`` binds to
    ``repro.experiments.parallel.parallel_map``.
    """
    package = module.rsplit(".", 1)[0] if "." in module else ""
    table: dict[str, str] = {}
    deps: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                deps.add(alias.name)
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    table.setdefault(top, top)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package.split(".") if package else []
                up = node.level - 1
                if up:
                    base_parts = base_parts[:-up] if up <= len(base_parts) else []
                base = ".".join(base_parts)
                target = (
                    f"{base}.{node.module}"
                    if base and node.module
                    else (node.module or base)
                )
            else:
                target = node.module or ""
            if not target:
                continue
            deps.add(target)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{target}.{alias.name}"
                # ``from pkg import mod`` may bind a submodule.
                deps.add(f"{target}.{alias.name}")
    return table, deps


def _resolve_external(
    parts: tuple[str, ...], imports: Mapping[str, str]
) -> str | None:
    """Absolute dotted path of an expression via the import table."""
    if not parts:
        return None
    target = imports.get(parts[0])
    if target is None:
        return None
    return ".".join((target, *parts[1:]))


def _is_enum_base(base: ast.expr) -> bool:
    name = base.attr if isinstance(base, ast.Attribute) else None
    if isinstance(base, ast.Name):
        name = base.id
    return name in {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}


def _enum_member_names(node: ast.ClassDef) -> tuple[str, ...]:
    members: list[str] = []
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members.append(target.id)
    return tuple(members)


def _declared_events_in(tree: ast.Module) -> dict[str, str] | None:
    """The ``DECLARED_EVENTS`` mapping literal, if this module has one."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id == "DECLARED_EVENTS"):
                continue
            if isinstance(value, ast.Call) and value.args:
                # e.g. ``MappingProxyType({...})`` — unwrap one level.
                value = value.args[0]
            if not isinstance(value, ast.Dict):
                return {}
            declared: dict[str, str] = {}
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    view = (
                        val.value
                        if isinstance(val, ast.Constant)
                        and isinstance(val.value, str)
                        else ""
                    )
                    declared[key.value] = view
            return declared
    return None


class _Scope:
    """Mutable per-function state for the ordered body walk."""

    def __init__(self, params: tuple[str, ...], kwonly: tuple[str, ...], kind: str):
        self.locals: set[str] = set(params) | set(kwonly)
        self.global_decls: set[str] = set()
        # name -> root parameter it may alias (params alias themselves,
        # but ``self`` is excluded: methods own their instance state).
        skip_self = {"self", "cls"} if kind == "method" else set()
        self.aliases: dict[str, str] = {
            p: p for p in (*params, *kwonly) if p not in skip_self
        }
        # name -> "derived" (parameter/seeded) | "ambient" rng provenance.
        self.rng: dict[str, str] = {
            p: "derived" for p in (*params, *kwonly)
        }


class _SummaryCollector(ast.NodeVisitor):
    """Ordered walk of one function body (nested defs excluded)."""

    def __init__(
        self,
        imports: Mapping[str, str],
        module_globals: frozenset[str],
        ambient_generators: frozenset[str],
        scope: _Scope,
    ):
        self.imports = imports
        self.module_globals = module_globals
        self.ambient_generators = ambient_generators
        self.scope = scope
        self.global_writes: list[GlobalWrite] = []
        self.ambient_rng: list[RngUse] = []
        self.raises: set[str] = set()
        self.calls: list[CallSite] = []
        self.mutations: list[MutationSite] = []
        self.local_defs: dict[str, str] = {}
        self._qual_prefix = ""

    # -- helpers -------------------------------------------------------

    def _is_module_global(self, name: str) -> bool:
        if name in self.scope.global_decls:
            return True
        return name not in self.scope.locals and name in self.module_globals

    def _alias_root(self, node: ast.expr) -> str | None:
        """Root parameter a value expression may alias, if any."""
        if isinstance(node, ast.Name):
            return self.scope.aliases.get(node.id)
        if isinstance(node, ast.Subscript):
            return self._alias_root(node.value)
        if isinstance(node, ast.Attribute) and node.attr in _ALIASING_ATTRS:
            return self._alias_root(node.value)
        if isinstance(node, ast.Call):
            dotted = _dotted_parts(node.func)
            if dotted is not None:
                resolved = _resolve_external(dotted, self.imports)
                if resolved in _ALIASING_NP_CALLS and node.args:
                    return self._alias_root(node.args[0])
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ALIASING_METHODS
            ):
                return self._alias_root(node.func.value)
        return None

    def _rng_provenance(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            known = self.scope.rng.get(node.id)
            if known is not None and node.id in self.scope.locals:
                return known
            if node.id in self.ambient_generators and not (
                node.id in self.scope.locals
            ):
                return "ambient"
            return known
        if isinstance(node, ast.Call):
            dotted = _dotted_parts(node.func)
            if dotted is not None:
                resolved = _resolve_external(dotted, self.imports)
                if resolved in _GENERATOR_CONSTRUCTORS:
                    return "derived"
                if resolved is not None and ".rng." in f".{resolved}.":
                    # The audited seed-plumbing helpers.
                    return "derived"
            if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "spawn",
                "generators",
            }:
                return self._rng_provenance(node.func.value)
        return None

    def _record_mutation(self, root: str, node: ast.AST, reason: str) -> None:
        self.mutations.append(
            MutationSite(root, node.lineno, node.col_offset, reason)
        )

    def _record_global_write(self, name: str, node: ast.AST) -> None:
        self.global_writes.append(
            GlobalWrite(name, node.lineno, node.col_offset)
        )

    def _check_store_target(self, target: ast.expr, node: ast.AST) -> None:
        """A store through ``target`` (subscript/attribute chains)."""
        if isinstance(target, ast.Tuple) or isinstance(target, ast.List):
            for element in target.elts:
                self._check_store_target(element, node)
            return
        if isinstance(target, ast.Starred):
            self._check_store_target(target.value, node)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root_name = target
            while isinstance(root_name, (ast.Subscript, ast.Attribute)):
                root_name = root_name.value  # type: ignore[assignment]
            if isinstance(root_name, ast.Name):
                alias = self._alias_root(target.value if isinstance(target, ast.Subscript) else target)
                if isinstance(target, ast.Subscript):
                    alias = self._alias_root(target.value)
                    if alias is not None:
                        self._record_mutation(alias, node, "subscript store")
                        return
                if self._is_module_global(root_name.id):
                    self._record_global_write(root_name.id, node)

    # -- statements ----------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.scope.global_decls.update(node.names)
        self.scope.locals.difference_update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_module_global(target.id):
                    self._record_global_write(target.id, node)
                else:
                    self.scope.locals.add(target.id)
                    alias = self._alias_root(node.value)
                    if alias is not None:
                        self.scope.aliases[target.id] = alias
                    else:
                        self.scope.aliases.pop(target.id, None)
                    provenance = self._rng_provenance(node.value)
                    if provenance is not None:
                        self.scope.rng[target.id] = provenance
                    else:
                        self.scope.rng.pop(target.id, None)
            else:
                self._check_store_target(target, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self.visit_Assign(
                ast.copy_location(
                    ast.Assign(targets=[node.target], value=node.value), node
                )
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            root = self.scope.aliases.get(target.id)
            if root is not None:
                self._record_mutation(
                    root, node, f"augmented assignment to parameter alias {target.id!r}"
                )
            elif self._is_module_global(target.id):
                self._record_global_write(target.id, node)
        else:
            self._check_store_target(target, node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        parts = _dotted_parts(exc) if exc is not None else None
        if parts:
            self.raises.add(parts[-1])
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_parts(node.func)
        resolved = (
            _resolve_external(dotted, self.imports) if dotted else None
        )
        # In-place hazards carried by the call itself.
        for keyword in node.keywords:
            if keyword.arg == "out":
                root = self._alias_root(keyword.value)
                if root is not None:
                    self._record_mutation(root, node, "out= argument")
        if resolved in _NP_FIRSTARG_MUTATORS and node.args:
            root = self._alias_root(node.args[0])
            if root is not None:
                self._record_mutation(
                    root, node, f"call to {resolved.rsplit('.', 1)[1]}()"
                )
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            if attr in _MUTATOR_METHODS:
                root = self._alias_root(receiver)
                if root is not None:
                    self._record_mutation(
                        root, node, f"mutating method .{attr}()"
                    )
            if attr in _CONTAINER_MUTATORS and isinstance(receiver, ast.Name):
                if self._is_module_global(receiver.id):
                    self._record_global_write(receiver.id, node)
            if attr in _STOCHASTIC_METHODS:
                provenance = self._rng_provenance(receiver)
                if provenance == "ambient":
                    generator = (
                        receiver.id
                        if isinstance(receiver, ast.Name)
                        else ast.unparse(receiver)
                    )
                    self.ambient_rng.append(
                        RngUse(generator, node.lineno, node.col_offset)
                    )
        # Record the call for cross-function composition.
        if dotted is not None:
            param_args: list[tuple[int | str, str]] = []
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Name):
                    root = self.scope.aliases.get(arg.id)
                    if root is not None:
                        param_args.append((index, root))
            for keyword in node.keywords:
                if keyword.arg is not None and isinstance(
                    keyword.value, ast.Name
                ):
                    root = self.scope.aliases.get(keyword.value.id)
                    if root is not None:
                        param_args.append((keyword.arg, root))
            self.calls.append(
                CallSite(
                    target=dotted,
                    lineno=node.lineno,
                    col=node.col_offset,
                    param_args=tuple(param_args),
                    arg_offset=1 if dotted[0] in {"self", "cls"} and len(dotted) > 1 else 0,
                )
            )
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.scope.locals.add(node.target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.optional_vars, ast.Name):
                self.scope.locals.add(item.optional_vars.id)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        if isinstance(node.target, ast.Name):
            self.scope.locals.add(node.target.id)
        self.generic_visit(node)

    # Nested defs and lambdas are separate summaries; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_defs[node.name] = f"{self._qual_prefix}{node.name}"

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.local_defs[node.name] = f"{self._qual_prefix}{node.name}"

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return


def _param_names(
    args: ast.arguments,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    positional = tuple(a.arg for a in (*args.posonlyargs, *args.args))
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    return positional, kwonly


def _summarize_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    *,
    module: str,
    qualname: str,
    kind: str,
    imports: Mapping[str, str],
    module_globals: frozenset[str],
    ambient_generators: frozenset[str],
) -> FunctionSummary:
    params, kwonly = _param_names(node.args)
    scope = _Scope(params, kwonly, kind)
    collector = _SummaryCollector(
        imports, module_globals, ambient_generators, scope
    )
    collector._qual_prefix = f"{qualname}.<locals>."
    body = (
        [ast.Expr(value=node.body)]
        if isinstance(node, ast.Lambda)
        else node.body
    )
    # Prepass: simple assignment targets become locals so that reads of
    # a name assigned later in the body are not misread as globals.
    for statement in body:
        for child in ast.walk(statement):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.locals.add(child.name)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        scope.locals.add(target.id)
    for statement in body:
        collector.visit(statement)
    name = (
        "<lambda>" if isinstance(node, ast.Lambda) else node.name
    )
    return FunctionSummary(
        module=module,
        qualname=qualname,
        name=name,
        lineno=node.lineno,
        end_lineno=int(node.end_lineno or node.lineno),
        col=node.col_offset,
        kind=kind,
        params=params,
        kwonly=kwonly,
        global_writes=tuple(collector.global_writes),
        ambient_rng=tuple(collector.ambient_rng),
        raises=frozenset(collector.raises),
        calls=tuple(collector.calls),
        mutations=tuple(collector.mutations),
        local_defs=dict(collector.local_defs),
    )


def _walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda, str, str]]:
    """Yield every function node with its qualname and kind."""

    def visit(
        node: ast.AST, prefix: str, in_class: bool, in_function: bool
    ) -> Iterator[tuple[Any, str, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                if in_function:
                    kind = "nested"
                elif in_class:
                    kind = "method"
                else:
                    kind = "function"
                yield child, qualname, kind
                yield from visit(
                    child, f"{qualname}.<locals>.", False, True
                )
            elif isinstance(child, ast.ClassDef):
                if not in_function and not in_class:
                    yield from visit(
                        child, f"{child.name}.", True, False
                    )
                # Nested classes: skip (rare, not pool-relevant).
            elif isinstance(child, ast.Lambda):
                yield child, f"{prefix}<lambda>@{child.lineno}", "lambda"
                # Lambdas cannot contain defs; still walk for nested lambdas.
                yield from visit(child, f"{prefix}", in_class, True)
            else:
                yield from visit(child, prefix, in_class, in_function)

    yield from visit(tree, "", False, False)


def collect_facts(source: SourceFile) -> ModuleFacts:
    """Extract all cross-file facts from one parsed source."""
    module = module_name_for(source.parts)
    tree = source.tree
    imports, deps = _import_table(tree, module)

    defs: dict[str, str] = {}
    module_globals: set[str] = set(imports)
    ambient_generators: set[str] = set()
    enums: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[node.name] = "function"
            module_globals.add(node.name)
        elif isinstance(node, ast.ClassDef):
            defs[node.name] = "class"
            module_globals.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = node.value
            for target in targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)
                    if isinstance(value, ast.Lambda):
                        defs[target.id] = "lambda"
                    if isinstance(value, ast.Call):
                        dotted = _dotted_parts(value.func)
                        resolved = (
                            _resolve_external(dotted, imports)
                            if dotted
                            else None
                        )
                        if resolved in _GENERATOR_CONSTRUCTORS:
                            ambient_generators.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            module_globals.add(element.id)
    # Enums anywhere in the file (nesting is legal if unusual).
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            _is_enum_base(base) for base in node.bases
        ):
            enums[node.name] = _enum_member_names(node)

    frozen_globals = frozenset(module_globals)
    frozen_ambient = frozenset(ambient_generators)
    summaries: list[FunctionSummary] = []
    for node, qualname, kind in _walk_functions(tree):
        summaries.append(
            _summarize_function(
                node,
                module=module,
                qualname=qualname,
                kind=kind,
                imports=imports,
                module_globals=frozen_globals,
                ambient_generators=frozen_ambient,
            )
        )
    # Module-level ``NAME = lambda ...`` bindings: rename the summary to
    # the bound name so call sites resolve to it.
    lambda_names = {
        node.value.lineno: target.id
        for node in tree.body
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda)
        for target in node.targets
        if isinstance(target, ast.Name)
    }
    renamed: list[FunctionSummary] = []
    for summary in summaries:
        if summary.kind == "lambda" and summary.lineno in lambda_names:
            bound = lambda_names[summary.lineno]
            if "." not in summary.qualname.replace(f"<lambda>@{summary.lineno}", ""):
                summary = FunctionSummary(
                    **{**summary.__dict__, "qualname": bound, "name": bound}
                )
        renamed.append(summary)

    return ModuleFacts(
        module=module,
        path=source.path,
        imports=imports,
        defs=defs,
        module_globals=frozen_globals,
        ambient_generators=frozen_ambient,
        declared_events=_declared_events_in(tree),
        enums=enums,
        dep_modules=frozenset(deps),
        summaries=tuple(renamed),
    )


# ----------------------------------------------------------------------
# The project model: index + resolution + fixed-point propagation
# ----------------------------------------------------------------------


@dataclass
class Transitive:
    """Summary facts closed over the call graph."""

    global_writes: set[tuple[str, str]] = field(default_factory=set)
    ambient_rng: set[str] = field(default_factory=set)
    raises: set[str] = field(default_factory=set)
    mutated_params: dict[str, MutationSite] = field(default_factory=dict)


class ProjectModel:
    """All modules of one lint run, resolvable and composed."""

    def __init__(self, facts: Mapping[str, ModuleFacts]):
        # path -> facts, plus module-name index (first definition wins;
        # a colliding dotted name makes resolution conservative: the
        # first collected file keeps the name).
        self._by_path: dict[str, ModuleFacts] = dict(facts)
        self._modules: dict[str, ModuleFacts] = {}
        self._functions: dict[str, FunctionSummary] = {}
        for module_facts in self._by_path.values():
            self._modules.setdefault(module_facts.module, module_facts)
            for summary in module_facts.summaries:
                self._functions.setdefault(summary.key, summary)
        self._transitive: dict[str, Transitive] | None = None

    # -- lookup --------------------------------------------------------

    def facts_for(self, path: str) -> ModuleFacts | None:
        return self._by_path.get(path)

    def module(self, name: str) -> ModuleFacts | None:
        return self._modules.get(name)

    def function(self, key: str) -> FunctionSummary | None:
        return self._functions.get(key)

    @property
    def functions(self) -> Mapping[str, FunctionSummary]:
        return self._functions

    def declared_events(self) -> tuple[dict[str, str], str] | None:
        """Merged DECLARED_EVENTS mapping and its defining path."""
        merged: dict[str, str] = {}
        where = ""
        for module_facts in self._by_path.values():
            if module_facts.declared_events is not None:
                merged.update(module_facts.declared_events)
                where = where or module_facts.path
        return (merged, where) if where else None

    # -- name resolution ----------------------------------------------

    def resolve_callable(
        self,
        module: str,
        parts: tuple[str, ...],
        *,
        scope: FunctionSummary | None = None,
        _depth: int = 0,
    ) -> str | None:
        """Function key a call expression resolves to, or ``None``."""
        if not parts or _depth > 8:
            return None
        facts = self._modules.get(module)
        if facts is None:
            return None
        head = parts[0]
        if scope is not None:
            if head in {"self", "cls"} and len(parts) == 2:
                class_name = scope.qualname.split(".", 1)[0]
                key = f"{module}::{class_name}.{parts[1]}"
                return key if key in self._functions else None
            if head in scope.local_defs and len(parts) == 1:
                key = f"{module}::{scope.local_defs[head]}"
                if key in self._functions:
                    return key
        imported = facts.imports.get(head)
        if imported is not None:
            return self._resolve_dotted(
                (*imported.split("."), *parts[1:]), _depth + 1
            )
        if len(parts) <= 2:
            key = f"{module}::{'.'.join(parts)}"
            if key in self._functions:
                return key
        return None

    def _resolve_dotted(
        self, parts: tuple[str, ...], _depth: int
    ) -> str | None:
        if _depth > 8:
            return None
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            facts = self._modules.get(module)
            if facts is None:
                continue
            rest = parts[cut:]
            imported = facts.imports.get(rest[0])
            if imported is not None:
                return self._resolve_dotted(
                    (*imported.split("."), *rest[1:]), _depth + 1
                )
            key = f"{module}::{'.'.join(rest)}"
            return key if key in self._functions else None
        return None

    # -- fixed point ---------------------------------------------------

    def transitive(self, key: str) -> Transitive:
        """Call-graph-closed facts for one function."""
        if self._transitive is None:
            self._transitive = self._propagate()
        return self._transitive.get(key, Transitive())

    def _propagate(self) -> dict[str, Transitive]:
        closed: dict[str, Transitive] = {}
        for key, summary in self._functions.items():
            transitive = Transitive()
            if summary.module not in AUDITED_STATE_MODULES:
                transitive.global_writes = {
                    (summary.module, write.name)
                    for write in summary.global_writes
                }
            transitive.ambient_rng = {
                use.generator for use in summary.ambient_rng
            }
            transitive.raises = set(summary.raises)
            transitive.mutated_params = {
                site.param: site for site in summary.mutations
            }
            closed[key] = transitive

        changed = True
        passes = 0
        while changed and passes < 50:
            changed = False
            passes += 1
            for key, summary in self._functions.items():
                mine = closed[key]
                for call in summary.calls:
                    callee_key = self.resolve_callable(
                        summary.module, call.target, scope=summary
                    )
                    if callee_key is None or callee_key == key:
                        continue
                    theirs = closed[callee_key]
                    callee = self._functions[callee_key]
                    before = (
                        len(mine.global_writes),
                        len(mine.ambient_rng),
                        len(mine.raises),
                        len(mine.mutated_params),
                    )
                    mine.global_writes |= theirs.global_writes
                    mine.ambient_rng |= theirs.ambient_rng
                    mine.raises |= theirs.raises
                    for position, caller_param in call.param_args:
                        if isinstance(position, int):
                            slot = position + call.arg_offset
                            if slot >= len(callee.params):
                                continue
                            callee_param = callee.params[slot]
                        else:
                            if position not in (*callee.params, *callee.kwonly):
                                continue
                            callee_param = position
                        if (
                            callee_param in theirs.mutated_params
                            and caller_param not in mine.mutated_params
                        ):
                            mine.mutated_params[caller_param] = MutationSite(
                                caller_param,
                                call.lineno,
                                call.col,
                                f"passed to {callee.name}() which mutates "
                                f"its {callee_param!r} parameter in place",
                            )
                    after = (
                        len(mine.global_writes),
                        len(mine.ambient_rng),
                        len(mine.raises),
                        len(mine.mutated_params),
                    )
                    if after != before:
                        changed = True
        return closed
