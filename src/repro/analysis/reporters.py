"""Render lint findings for humans (text) and tooling (JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.finding import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding]) -> str:
    """Compiler-style report: one line per finding plus a summary."""
    if not findings:
        return "repro-lint: clean"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.rule for finding in findings)
    breakdown = ", ".join(
        f"{code}: {count}" for code, count in sorted(counts.items())
    )
    plural = "s" if len(findings) != 1 else ""
    lines.append(f"repro-lint: {len(findings)} finding{plural} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload = {
        "tool": "repro-lint",
        "version": 1,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
