"""Render lint findings for humans (text) and tooling (JSON, SARIF)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Sequence

from repro.analysis.finding import PARSE_ERROR, Finding

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(findings: Sequence[Finding]) -> str:
    """Compiler-style report: one line per finding plus a summary."""
    if not findings:
        return "repro-lint: clean"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.rule for finding in findings)
    breakdown = ", ".join(
        f"{code}: {count}" for code, count in sorted(counts.items())
    )
    plural = "s" if len(findings) != 1 else ""
    lines.append(f"repro-lint: {len(findings)} finding{plural} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload = {
        "tool": "repro-lint",
        "version": 1,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning annotations.

    Columns are converted from the engine's 0-based convention to
    SARIF's 1-based one; paths are emitted as repo-relative URIs under
    ``%SRCROOT%`` so annotations land on the right lines in pull
    requests.
    """
    from repro.analysis.registry import all_rules

    rule_metadata: list[dict[str, Any]] = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    if any(finding.rule == PARSE_ERROR for finding in findings):
        rule_metadata.append(
            {
                "id": PARSE_ERROR,
                "name": "parse-error",
                "shortDescription": {"text": "parse-error"},
                "fullDescription": {
                    "text": "the file could not be parsed as Python"
                },
                "defaultConfiguration": {"level": "error"},
            }
        )
    rule_index = {meta["id"]: i for i, meta in enumerate(rule_metadata)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": "2.0.0",
                        "rules": rule_metadata,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
