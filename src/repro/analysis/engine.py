"""The lint driver: discover, parse, collect context, run rules.

Two-pass architecture: every file is parsed first and offered to the
:class:`~repro.analysis.context.ProjectContext` (so cross-file rules
like R004 see the whole run), then every selected rule visits every
file.  Suppressed findings are filtered at the end, keeping rules free
of suppression logic.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ProjectContext
from repro.analysis.finding import PARSE_ERROR, Finding
from repro.analysis.registry import selected_rules
from repro.analysis.source import SourceFile

__all__ = ["discover_files", "lint_paths", "lint_sources"]

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = {
    ".git",
    ".hg",
    "__pycache__",
    ".mypy_cache",
    ".pytest_cache",
    ".ruff_cache",
    "build",
    "dist",
    ".venv",
    "venv",
    ".eggs",
}


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIPPED_DIRS for part in candidate.parts):
                    found.setdefault(candidate, None)
        elif path.suffix == ".py" or path.is_file():
            found.setdefault(path, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def lint_sources(
    sources: Iterable[SourceFile],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the selected rules over already-parsed sources.

    The entry point for fixture-style tests: build sources with
    :meth:`SourceFile.from_text` under any synthetic path and lint them
    as one run (cross-file context included).
    """
    sources = list(sources)
    rules = selected_rules(select, ignore)
    context = ProjectContext()
    for source in sources:
        context.collect(source)
    findings: list[Finding] = []
    for source in sources:
        for rule in rules:
            for finding in rule.check(source, context):
                if not source.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    return sorted(findings, key=lambda finding: finding.sort_key)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    cache_path: str | Path | None = None,
) -> list[Finding]:
    """Discover, parse and lint ``paths`` (files and/or directories).

    Unparseable files are reported as :data:`PARSE_ERROR` findings —
    a broken file must fail the gate, not silently skip every rule.

    With ``cache_path``, the run goes through the content-hash
    incremental cache (:mod:`repro.analysis.cache`): unchanged files
    outside the invalidation closure answer from cached facts and
    findings without being re-parsed.
    """
    if cache_path is not None:
        from repro.analysis.cache import lint_paths_cached

        return lint_paths_cached(
            paths, select=select, ignore=ignore, cache_path=cache_path
        )
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in discover_files(paths):
        try:
            sources.append(SourceFile.from_path(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule=PARSE_ERROR,
                    path=str(path),
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    message=f"cannot parse file: {exc.msg}",
                )
            )
    findings = lint_sources(sources, select=select, ignore=ignore)
    return sorted(findings + errors, key=lambda finding: finding.sort_key)
