"""R008 — kernel aliasing: core kernels do not mutate caller arrays.

The vectorized water-fill / Lindley kernels are composed freely by the
solver, the batch simulator, and the continuation layer; that
composition is only sound if a kernel call never mutates its argument
arrays.  An ``out=`` that targets a parameter, a ``+=`` on a parameter
alias, or a write through a view of a parameter silently corrupts the
caller's state — the classic aliasing bug that e.g. makes a warm-start
profile differ from a cold solve only when kernels are chained.

The rule checks every function defined in ``repro.core`` /
``repro.queueing`` (methods included) and flags any in-place mutation
reaching a parameter — directly, through a local alias
(``b = np.asarray(a)``; ``b[...] = 0``), or transitively by passing the
parameter to another function whose summary mutates it.  Functions
whose name ends in ``_inplace`` are exempt: the suffix *is* the
contract, visible at every call site.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

__all__ = ["KernelAliasing"]

_KERNEL_PACKAGES = ("repro.core", "repro.queueing")


@register
class KernelAliasing(Rule):
    code = "R008"
    name = "kernel-aliasing"
    rationale = (
        "kernels in repro.core/repro.queueing must not mutate parameter "
        "arrays in place (out=, += on a parameter, writes through "
        "views) unless their name ends in _inplace"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.is_test_file:
            return
        facts = context.facts_for(source)
        if not any(
            facts.module == pkg or facts.module.startswith(pkg + ".")
            for pkg in _KERNEL_PACKAGES
        ):
            return
        model = context.model
        for summary in facts.summaries:
            if summary.name.endswith("_inplace"):
                continue
            if summary.kind in {"lambda", "nested"}:
                continue  # helpers local to an already-checked function
            mutated = model.transitive(summary.key).mutated_params
            for param in sorted(mutated):
                site = mutated[param]
                yield self.finding(
                    source,
                    site.lineno,
                    site.col,
                    f"{summary.qualname}() mutates parameter {param!r} in "
                    f"place ({site.reason}): copy on entry, write to a "
                    "fresh array, or rename the kernel "
                    f"{summary.name}_inplace to make the contract "
                    "explicit",
                )
