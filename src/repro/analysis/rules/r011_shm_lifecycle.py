"""R011 — raw ``SharedMemory`` blocks need an owner and a finally.

A ``multiprocessing.shared_memory.SharedMemory`` block is an OS-level
resource: ``close()`` releases the mapping, and — for the process that
passed ``create=True`` — ``unlink()`` destroys the backing segment.
Miss either on an error path and the block outlives the process (the
resource tracker's "leaked shared_memory" warning in the best case, a
full ``/dev/shm`` in the worst).

The supported way to publish arrays is
:class:`repro.experiments.shm.SharedArrayPlane`, which refcounts blocks
and guarantees cleanup via its context manager plus an atexit sweep.
That module is therefore exempt here — it *is* the owner this rule
demands.  Anywhere else, a direct ``SharedMemory(...)`` call must be

* bound to a plain name (an unbound block cannot be cleaned up at all),
* ``close()``\\ d on that name inside a ``finally`` block of the same
  function, and
* ``unlink()``\\ ed likewise whenever the call creates the block
  (``create=True``, a truthy positional, or a value the rule cannot
  prove false — ownership is decided conservatively).

Tests are skipped: lifecycle tests legitimately create blocks to watch
them leak.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._imports import ImportMap
from repro.analysis.source import SourceFile

__all__ = ["ShmLifecycle"]

_TARGET = "multiprocessing.shared_memory.SharedMemory"

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope``'s own statements, not nested function bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPES):
            stack.extend(ast.iter_child_nodes(node))


def _creates_block(call: ast.Call) -> bool:
    """Does this ``SharedMemory(...)`` call own (create) the block?

    ``create`` is the second positional parameter.  Anything the rule
    cannot prove to be ``False`` counts as creating — a dynamic flag
    must be cleaned up as if it were the owner.
    """
    for keyword in call.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    if len(call.args) >= 2:
        value = call.args[1]
        return not (isinstance(value, ast.Constant) and value.value is False)
    return False


@register
class ShmLifecycle(Rule):
    code = "R011"
    name = "shm-lifecycle"
    rationale = (
        "a raw SharedMemory block is an OS resource that outlives the "
        "process when an error path skips close()/unlink(); blocks must "
        "be owned by SharedArrayPlane or bound and released in a finally"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.is_test_file:
            return
        if source.filename == "shm.py" and source.in_package("experiments"):
            # The plane module is the sanctioned owner.
            return
        imports = ImportMap(source.tree)
        scopes = [source.tree] + [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            yield from self._check_scope(source, imports, scope)

    # ------------------------------------------------------------------
    def _check_scope(
        self, source: SourceFile, imports: ImportMap, scope: ast.AST
    ) -> Iterator[Finding]:
        calls: list[ast.Call] = []
        bound_to: dict[int, str] = {}
        released: set[tuple[str, str]] = set()
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Call):
                if imports.resolve(node.func) == _TARGET:
                    calls.append(node)
            elif isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    bound_to[id(node.value)] = node.targets[0].id
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and isinstance(
                    node.target, ast.Name
                ):
                    bound_to[id(node.value)] = node.target.id
            elif isinstance(node, ast.Try):
                for statement in node.finalbody:
                    for sub in ast.walk(statement):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and isinstance(sub.func.value, ast.Name)
                            and sub.func.attr in ("close", "unlink")
                        ):
                            released.add((sub.func.value.id, sub.func.attr))
        for call in calls:
            name = bound_to.get(id(call))
            if name is None:
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    "SharedMemory block is not bound to a name, so no "
                    "error path can close or unlink it; publish through "
                    "SharedArrayPlane or bind it and release in a finally",
                )
                continue
            if (name, "close") not in released:
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"SharedMemory block '{name}' is never close()d in a "
                    "finally block of this function; an error path leaks "
                    "the mapping — use SharedArrayPlane or try/finally",
                )
            if _creates_block(call) and (name, "unlink") not in released:
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"created SharedMemory block '{name}' is never "
                    "unlink()ed in a finally block of this function; the "
                    "OS-level segment outlives the process — use "
                    "SharedArrayPlane or try/finally",
                )
