"""Static resolution of dotted module references.

Rules that police module-level calls (R001: ``np.random.*`` / stdlib
``random``; R005: ``time.time`` / ``datetime.now``) need to know what a
name refers to.  :class:`ImportMap` records every binding the file's
import statements create and resolves attribute chains back to fully
qualified dotted paths::

    import numpy as np          ->  resolve(np.random.rand) == "numpy.random.rand"
    from time import monotonic  ->  resolve(monotonic) == "time.monotonic"
    from datetime import datetime -> resolve(datetime.now) == "datetime.datetime.now"

Purely syntactic: rebinding an imported name later in the file is not
modelled, which is the usual (and here acceptable) lint trade-off.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap"]


class ImportMap:
    """Name -> dotted-module bindings created by a file's imports."""

    def __init__(self, tree: ast.Module):
        self._bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top name.
                        top = alias.name.split(".", 1)[0]
                        self._bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of an attribute chain, or ``None`` if unbound."""
        if isinstance(node, ast.Name):
            return self._bindings.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None
