"""R003 — no ad-hoc M/M/1 response-time arithmetic outside ``repro.queueing``.

The cost everything in this codebase optimizes is the M/M/1 stationary
response time ``1/(mu - lambda)`` (paper eq. 1) and its derived forms
``lambda/(mu - lambda)`` (total delay) and ``mu/(mu - lambda)^2``
(marginal delay).  Re-deriving those inline is how stability bugs ship:
the inline version skips the ``lambda < mu`` check, silently returning
a *negative* "response time" for an overloaded queue that then looks
excellent to a minimizer.  :mod:`repro.queueing.mm1` carries the
audited, stability-checked implementations — everyone else calls them.

Detection is structural: a division whose denominator is a rate gap —
either literally ``(something_rate - load)`` (a subtraction mentioning
rate-flavoured identifiers) or a conventional gap alias (``gap``,
``residual``, or any name assigned from such a subtraction in the same
file).  Division by plain rates (``1.0 / rate``, mean service times) is
deliberately not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

__all__ = ["AdHocResponseTime"]

#: Identifier tokens that mark an expression as rate-flavoured.
_RATE_TOKENS = {
    "mu",
    "mus",
    "rate",
    "rates",
    "lam",
    "lambda",
    "lambdas",
    "phi",
    "capacity",
    "capacities",
    "load",
    "loads",
    "available",
}

#: Names that conventionally hold ``mu - lambda`` in this codebase.
_GAP_NAMES = {"gap", "gaps", "inv_gap", "residual", "residuals"}


def _identifiers(node: ast.expr) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_rate_flavoured(node: ast.expr) -> bool:
    for identifier in _identifiers(node):
        if _RATE_TOKENS.intersection(identifier.lower().split("_")):
            return True
    return False


def _is_gap_subtraction(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and _is_rate_flavoured(node)
    )


@register
class AdHocResponseTime(Rule):
    code = "R003"
    name = "no-adhoc-mm1"
    rationale = (
        "M/M/1 response-time formulas live in repro.queueing where "
        "stability (lambda < mu) is checked; inline 1/(mu - lambda) "
        "skips the check and goes negative past saturation"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.in_package("queueing"):
            return  # the audited implementations themselves
        aliases = self._gap_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
                continue
            denominator = node.right
            if isinstance(denominator, ast.UnaryOp) and isinstance(
                denominator.op, (ast.USub, ast.UAdd)
            ):
                denominator = denominator.operand
            offending = _is_gap_subtraction(denominator) or (
                isinstance(denominator, ast.Name)
                and (denominator.id in _GAP_NAMES or denominator.id in aliases)
            )
            if offending:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    "ad-hoc M/M/1 expression (division by a rate gap): "
                    "call the audited repro.queueing helpers "
                    "(expected_response_time / total_delay / "
                    "marginal_delay) instead",
                )

    @staticmethod
    def _gap_aliases(tree: ast.Module) -> frozenset[str]:
        """Names assigned from a rate-gap subtraction anywhere in the file."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_gap_subtraction(node.value)
            ):
                aliases.add(node.targets[0].id)
        return frozenset(aliases)
