"""R006 — pool purity: submitted callables are module-level and pure.

The process-pool layer (:mod:`repro.experiments.parallel`) and the
ROADMAP's sharded-solving plan both assume that every work unit crossing
a process boundary is (a) picklable — a module-level function, not a
lambda, closure or nested def — and (b) free of module-global writes,
because a global written in a worker is silently *not* the coordinator's
global (fork) or lost entirely (spawn).  Both hazards look like they
work in small serial tests and corrupt results only at scale.

The rule resolves every callable handed to ``parallel_map`` /
``ProcessPoolExecutor.submit`` / ``.map`` back to its defining summary
via the project model and checks, over the *whole call graph* reachable
from it, that no module global is written.  Module-state writes defined
inside the audited infrastructure modules
(:data:`~repro.analysis.project.AUDITED_STATE_MODULES` — the executor
cache and the ambient tracer stack, both deliberately process-local)
are exempt.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._pools import resolve_submitted, submission_sites
from repro.analysis.source import SourceFile

__all__ = ["PoolPurity"]


@register
class PoolPurity(Rule):
    code = "R006"
    name = "pool-purity"
    rationale = (
        "callables crossing a process-pool boundary must be module-level "
        "(picklable) and must not write module globals anywhere in their "
        "call graph — worker-side global writes are lost or diverge"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.is_test_file:
            return
        facts = context.facts_for(source)
        model = context.model
        for site in submission_sites(source, facts):
            line = site.call.lineno
            col = site.call.col_offset
            key, summary = resolve_submitted(model, facts, site)
            if key == "<lambda>":
                yield self.finding(
                    source,
                    site.callable_expr.lineno,
                    site.callable_expr.col_offset,
                    f"lambda passed to {site.via}(): pool callables must "
                    "be module-level named functions (lambdas do not "
                    "pickle)",
                )
                continue
            if summary is None:
                continue  # unresolvable (e.g. a parameter): out of scope
            if summary.kind == "nested":
                yield self.finding(
                    source,
                    line,
                    col,
                    f"{summary.name}() passed to {site.via}() is a nested "
                    f"function (defined inside {summary.qualname.split('.', 1)[0]}()): "
                    "closures do not pickle — move it to module level",
                )
                continue
            if summary.kind == "lambda":
                yield self.finding(
                    source,
                    line,
                    col,
                    f"{site.via}() target {summary.qualname!r} is a "
                    "module-level lambda: use a named def so tracebacks "
                    "and pickling are well-defined",
                )
                continue
            if summary.kind == "method":
                yield self.finding(
                    source,
                    line,
                    col,
                    f"{summary.qualname}() passed to {site.via}() is a "
                    "method: pool callables must be module-level "
                    "functions of picklable arguments",
                )
                continue
            writes = sorted(model.transitive(key).global_writes)
            for module, name in writes:
                yield self.finding(
                    source,
                    line,
                    col,
                    f"{summary.name}() submitted to {site.via}() writes "
                    f"module global {module}.{name} somewhere in its call "
                    "graph: worker-side global writes are lost (spawn) or "
                    "diverge from the coordinator (fork) — return the "
                    "value instead",
                )
