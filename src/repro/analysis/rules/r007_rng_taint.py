"""R007 — RNG provenance: every stochastic call draws from an explicit seed.

R001 bans *unseeded* construction; this rule closes the remaining gap:
a generator that was seeded once at import time (an *ambient*
module-level ``default_rng(seed)``) still breaks replayability, because
draw order then depends on which code paths ran before yours — and it
breaks it catastrophically across process-pool boundaries, where every
worker forks the same generator state and produces *identical* "random"
streams.

A stochastic call is compliant when its generator is **derived**: it
arrived as an explicit function parameter, or was constructed locally
from an explicit seed (``default_rng(seed)``, ``Generator(PCG64(seq))``,
``.spawn()`` of a derived generator, or the audited
``repro.simengine.rng`` helpers).  The rule flags:

* any stochastic method call whose receiver resolves to a module-level
  generator (direct ambient use), and
* any callable submitted to a pool whose call graph transitively draws
  from an ambient generator (the fork-shared-stream hazard).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._pools import resolve_submitted, submission_sites
from repro.analysis.source import SourceFile

__all__ = ["RngTaint"]


@register
class RngTaint(Rule):
    code = "R007"
    name = "rng-taint"
    rationale = (
        "a Generator must flow from an explicit parameter or a local "
        "default_rng(seed) into every stochastic call — ambient "
        "module-level generators destroy replayability and fork "
        "identical streams into pool workers"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.is_test_file:
            return
        facts = context.facts_for(source)
        model = context.model
        # Direct ambient draws inside this file's functions.
        for summary in facts.summaries:
            for use in summary.ambient_rng:
                yield self.finding(
                    source,
                    use.lineno,
                    use.col,
                    f"stochastic call on ambient module-level generator "
                    f"{use.generator!r} in {summary.name}(): accept a "
                    "numpy.random.Generator parameter (or construct "
                    "default_rng(seed) locally) so the stream is a "
                    "function of the caller's seed",
                )
        # Ambient streams crossing a worker boundary.
        for site in submission_sites(source, facts):
            key, summary = resolve_submitted(model, facts, site)
            if summary is None or key is None:
                continue
            for generator in sorted(model.transitive(key).ambient_rng):
                yield self.finding(
                    source,
                    site.call.lineno,
                    site.call.col_offset,
                    f"{summary.name}() submitted to {site.via}() draws "
                    f"from ambient generator {generator!r} in its call "
                    "graph: forked workers replay identical streams — "
                    "pass a per-item seed or spawned SeedSequence "
                    "through the work items instead",
                )
