"""Rule implementations; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401
    r001_rng,
    r002_float_eq,
    r003_mm1,
    r004_messages,
    r005_simtime,
    r006_pool_purity,
    r007_rng_taint,
    r008_kernel_aliasing,
    r009_swallowed_errors,
    r010_telemetry,
    r011_shm_lifecycle,
)

__all__ = [
    "r001_rng",
    "r002_float_eq",
    "r003_mm1",
    "r004_messages",
    "r005_simtime",
    "r006_pool_purity",
    "r007_rng_taint",
    "r008_kernel_aliasing",
    "r009_swallowed_errors",
    "r010_telemetry",
    "r011_shm_lifecycle",
]
