"""Rule implementations; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401
    r001_rng,
    r002_float_eq,
    r003_mm1,
    r004_messages,
    r005_simtime,
)

__all__ = [
    "r001_rng",
    "r002_float_eq",
    "r003_mm1",
    "r004_messages",
    "r005_simtime",
]
