"""Shared detection of process-pool submission sites.

R006 (pool purity) and R007 (RNG taint across worker boundaries) both
need to know where a callable crosses a process boundary.  The repo has
two idioms: the harness's :func:`repro.experiments.parallel.parallel_map`
and raw ``concurrent.futures.ProcessPoolExecutor`` use (``.submit`` /
``.map`` on a bound executor).  This helper finds both and resolves the
submitted callable back to its defining summary via the project model.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.project import (
    FunctionSummary,
    ModuleFacts,
    ProjectModel,
    _dotted_parts,
    _resolve_external,
)
from repro.analysis.source import SourceFile

__all__ = ["SubmissionSite", "enclosing_summary", "submission_sites"]

_EXECUTOR_TYPES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)

_PARTIAL = frozenset({"functools.partial"})


@dataclass(frozen=True)
class SubmissionSite:
    """One callable crossing a pool boundary."""

    call: ast.Call
    #: The submitted callable expression (``partial`` unwrapped).
    callable_expr: ast.expr
    #: ``"parallel_map"``, ``"submit"`` or ``"map"``.
    via: str


def enclosing_summary(
    facts: ModuleFacts, lineno: int
) -> FunctionSummary | None:
    """The innermost function summary containing ``lineno``, if any."""
    best: FunctionSummary | None = None
    for summary in facts.summaries:
        if summary.lineno <= lineno <= summary.end_lineno and (
            best is None or summary.lineno > best.lineno
        ):
            best = summary
    return best


def _executor_names(tree: ast.Module, facts: ModuleFacts) -> set[str]:
    """Names bound (anywhere in the file) to a ProcessPoolExecutor."""
    names: set[str] = set()

    def constructs_executor(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = _dotted_parts(value.func)
        if dotted is None:
            return False
        return _resolve_external(dotted, facts.imports) in _EXECUTOR_TYPES

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and constructs_executor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.With):
            for item in node.items:
                if constructs_executor(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
    return names


def _unwrap_partial(expr: ast.expr, facts: ModuleFacts) -> ast.expr:
    if isinstance(expr, ast.Call):
        dotted = _dotted_parts(expr.func)
        if dotted is not None:
            resolved = _resolve_external(dotted, facts.imports)
            if resolved in _PARTIAL and expr.args:
                return _unwrap_partial(expr.args[0], facts)
    return expr


def submission_sites(
    source: SourceFile, facts: ModuleFacts
) -> Iterator[SubmissionSite]:
    """Yield every pool-submission call in ``source``."""
    executors = _executor_names(source.tree, facts)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        dotted = _dotted_parts(func)
        resolved = (
            _resolve_external(dotted, facts.imports) if dotted else None
        )
        if (
            resolved is not None and resolved.endswith(".parallel_map")
        ) or (isinstance(func, ast.Name) and func.id == "parallel_map"):
            yield SubmissionSite(
                call=node,
                callable_expr=_unwrap_partial(node.args[0], facts),
                via="parallel_map",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in {"submit", "map"}
            and isinstance(func.value, ast.Name)
            and func.value.id in executors
        ):
            yield SubmissionSite(
                call=node,
                callable_expr=_unwrap_partial(node.args[0], facts),
                via=func.attr,
            )


def resolve_submitted(
    model: ProjectModel,
    facts: ModuleFacts,
    site: SubmissionSite,
) -> tuple[str | None, FunctionSummary | None]:
    """Resolve a submitted callable to its defining summary.

    Returns ``(key, summary)``; both ``None`` when the callable cannot
    be resolved statically (e.g. it is itself a parameter).  A lambda
    expression resolves to ``("<lambda>", None)``.
    """
    expr = site.callable_expr
    if isinstance(expr, ast.Lambda):
        return "<lambda>", None
    parts = _dotted_parts(expr)
    if parts is None:
        return None, None
    scope = enclosing_summary(facts, site.call.lineno)
    key = model.resolve_callable(facts.module, parts, scope=scope)
    if key is None:
        return None, None
    return key, model.function(key)
