"""R010 — telemetry discipline: every emitted event kind is declared.

PR 4/6 built an observability contract: traces are analyzed by the
``repro-trace`` views (summary / convergence / protocol / engine /
sweep rollups), and those views dispatch on event *names*.  An event
emitted under an undeclared name is invisible to every view — the
contract rots silently, one ``tracer.emit("new.thing", ...)`` at a
time.

:mod:`repro.telemetry.events` now carries the vocabulary:
``DECLARED_EVENTS`` maps every event kind to the ``repro-trace`` view
that covers it.  This rule flags any ``*.emit("name", ...)`` call —
anywhere in the run — whose string-literal event name is missing from
the vocabulary, and any declared name with an empty covering view.
(A runtime test asserts the declared views are real ``repro-trace``
subcommands, closing the loop.)

Only calls whose first argument is a string literal are checked:
``sink.emit(event)`` forwards an already-validated
:class:`~repro.telemetry.events.TraceEvent` and is not an emission
site.  Runs that do not include a ``DECLARED_EVENTS`` definition (e.g.
linting a single unrelated file) skip the check rather than flag
everything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

__all__ = ["TelemetryDiscipline"]


@register
class TelemetryDiscipline(Rule):
    code = "R010"
    name = "telemetry-discipline"
    rationale = (
        "every Tracer event kind emitted anywhere must be declared in "
        "telemetry.events (DECLARED_EVENTS) and covered by a "
        "repro-trace view, or it is invisible to all trace analysis"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.is_test_file:
            return
        declared = context.model.declared_events()
        if declared is None:
            return  # vocabulary not in this run: partial lint, stay quiet
        vocabulary, vocabulary_path = declared
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            if name not in vocabulary:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"event kind {name!r} is emitted but not declared in "
                    f"DECLARED_EVENTS ({vocabulary_path}): declare it and "
                    "map it to the repro-trace view that covers it",
                )
            elif not vocabulary[name]:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"event kind {name!r} is declared but mapped to no "
                    "repro-trace view: assign the view that surfaces it",
                )
