"""R002 — no exact equality on float values.

Rates, strategy fractions and response times are all computed through
floating-point water-fills, matrix products and optimizers; comparing
them with ``==``/``!=`` encodes an invariant ("this value is exactly
0.4") that round-off silently falsifies.  The paper's quantities make
this worse: a strategy simplex constraint that sums to ``1.0 - 1e-17``
is feasible, a norm that reaches ``0.0 + 1e-17`` has converged.  Use
:func:`repro.tolerances.close` / :func:`repro.tolerances.is_zero` (or
``math.isclose`` directly) for computed values.

Exact comparison *is* occasionally right — a sentinel that was assigned
(never computed), e.g. ``demand == 0.0`` short-circuits before any
arithmetic.  Mark those deliberately::

    if demand == 0.0:  # reprolint: allow=R002 exact-sentinel

``assert`` statements are exempt: the test suite asserts exact values
on purpose when pinning deterministic results (golden values, replay
equality), and weakening those oracles would hide regressions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

__all__ = ["FloatEquality"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class _CompareCollector(ast.NodeVisitor):
    """Collect ==/!= comparisons against float literals, skipping asserts."""

    def __init__(self) -> None:
        self.hits: list[tuple[int, int]] = []

    def visit_Assert(self, node: ast.Assert) -> None:
        return  # deliberate exact oracles; do not descend

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_float_literal(operands[index])
                or _is_float_literal(operands[index + 1])
            ):
                self.hits.append((node.lineno, node.col_offset))
                break
        self.generic_visit(node)


@register
class FloatEquality(Rule):
    code = "R002"
    name = "no-float-equality"
    rationale = (
        "rates, fractions and response times are floating-point; exact "
        "==/!= breaks under round-off — compare with repro.tolerances"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        collector = _CompareCollector()
        collector.visit(source.tree)
        for line, col in collector.hits:
            yield self.finding(
                source,
                line,
                col,
                "exact ==/!= against a float literal: use "
                "repro.tolerances.close/is_zero (or math.isclose); for a "
                "genuine assigned sentinel add "
                "'# reprolint: allow=R002 exact-sentinel'",
            )
