"""R005 — simulation/distributed code keeps sim-time and typed errors.

The event-driven engine and the NASH token-ring protocol both advance a
*virtual* clock: results are a pure function of (model, seed), which is
what lets a chaos run replay bit-for-bit and lets CI compare golden
values across machines.  Reading the wall clock (``time.time``,
``datetime.now``, ``perf_counter`` used for logic) re-introduces the
host machine as a hidden input.  Similarly, a bare ``except:`` in these
paths swallows the typed protocol errors (and ``KeyboardInterrupt``)
that the fault-tolerance layer relies on observing.

Scope: files under ``simengine`` or ``distributed`` package directories
get the full ban.  Files under ``experiments`` get a narrower one: they
legitimately measure real elapsed time, but must do so with the
monotonic ``time.perf_counter`` — ``time.time`` (and the datetime
clock-of-day readers) can step backwards under NTP adjustment, so a
duration measured with them is not guaranteed nonnegative.  (This scope
was historically missing, which is how ``report.py`` shipped a
``time.time`` duration; the meta-tests in
``tests/analysis/test_r005_simtime.py`` pin both scopes.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._imports import ImportMap
from repro.analysis.source import SourceFile

__all__ = ["SimClockDiscipline"]

#: Non-monotonic clock-of-day readers: banned everywhere R005 applies —
#: they are wrong for durations (NTP steps) and wrong for sim logic.
_CLOCK_OF_DAY = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Monotonic wall-clock readers: fine for measuring real durations (the
#: experiments layer does), but still a hidden machine input inside the
#: sim/protocol paths, so banned only there.
_MONOTONIC = {
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

_WALL_CLOCK = _CLOCK_OF_DAY | _MONOTONIC


@register
class SimClockDiscipline(Rule):
    code = "R005"
    name = "sim-clock-discipline"
    rationale = (
        "simengine/distributed results must be a pure function of "
        "(model, seed); wall-clock reads and bare excepts make runs "
        "machine-dependent and swallow typed protocol errors"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        sim_scope = source.in_package("simengine", "distributed")
        experiments_scope = source.in_package("experiments")
        if not (sim_scope or experiments_scope):
            return
        banned = _WALL_CLOCK if sim_scope else _CLOCK_OF_DAY
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                dotted = imports.resolve(node.func)
                if dotted in banned:
                    if sim_scope:
                        message = (
                            f"wall-clock read {dotted}(): simulation "
                            "logic must use the virtual sim clock so "
                            "runs replay deterministically"
                        )
                    else:
                        message = (
                            f"clock-of-day read {dotted}(): it can step "
                            "backwards under NTP; measure elapsed time "
                            "with time.perf_counter()"
                        )
                    yield self.finding(
                        source, node.lineno, node.col_offset, message
                    )
            elif (
                sim_scope
                and isinstance(node, ast.ExceptHandler)
                and node.type is None
            ):
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    "bare 'except:' swallows typed protocol errors and "
                    "KeyboardInterrupt: catch the specific exception",
                )
