"""R005 — simulation/distributed code keeps sim-time and typed errors.

The event-driven engine and the NASH token-ring protocol both advance a
*virtual* clock: results are a pure function of (model, seed), which is
what lets a chaos run replay bit-for-bit and lets CI compare golden
values across machines.  Reading the wall clock (``time.time``,
``datetime.now``, ``perf_counter`` used for logic) re-introduces the
host machine as a hidden input.  Similarly, a bare ``except:`` in these
paths swallows the typed protocol errors (and ``KeyboardInterrupt``)
that the fault-tolerance layer relies on observing.

Scope: files under ``simengine`` or ``distributed`` package directories.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._imports import ImportMap
from repro.analysis.source import SourceFile

__all__ = ["SimClockDiscipline"]

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class SimClockDiscipline(Rule):
    code = "R005"
    name = "sim-clock-discipline"
    rationale = (
        "simengine/distributed results must be a pure function of "
        "(model, seed); wall-clock reads and bare excepts make runs "
        "machine-dependent and swallow typed protocol errors"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if not source.in_package("simengine", "distributed"):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                dotted = imports.resolve(node.func)
                if dotted in _WALL_CLOCK:
                    yield self.finding(
                        source,
                        node.lineno,
                        node.col_offset,
                        f"wall-clock read {dotted}(): simulation logic "
                        "must use the virtual sim clock so runs replay "
                        "deterministically",
                    )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    "bare 'except:' swallows typed protocol errors and "
                    "KeyboardInterrupt: catch the specific exception",
                )
