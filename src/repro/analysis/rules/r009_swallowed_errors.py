"""R009 — typed capacity/feasibility errors must not be swallowed.

``CapacityExhausted`` (the surviving fleet cannot carry the offered
load) and ``InfeasibleDemand`` (a water-fill asked to place more flow
than capacity) are the system's *typed* distress signals: the engine's
degraded-hold mode, the chaos tests and the SLA accounting all key off
them.  A handler that catches one and drops it — or an
``except Exception`` wide enough to absorb one — converts a principled
degradation path into silent data loss.

Flags
-----
* a handler naming ``CapacityExhausted``/``InfeasibleDemand`` whose
  body is only ``pass``/``...``/``continue`` (caught-and-dropped);
* an ``except Exception`` / ``except BaseException`` / bare ``except``
  with no ``raise`` in its body, guarding a ``try`` body that (directly
  or through its call graph) raises one of the typed errors.

``except ValueError`` is deliberately *not* flagged: ``InfeasibleDemand``
subclasses ``ValueError`` precisely so existing call sites keep
working, and those recovery handlers are part of the design.

Designated recovery points — process edges where catch-all handling is
the job — are exempt: ``engine/service.py`` and any ``cli.py`` /
``__main__.py`` / ``runner.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._pools import enclosing_summary
from repro.analysis.source import SourceFile

__all__ = ["SwallowedTypedErrors"]

_TYPED = frozenset({"CapacityExhausted", "InfeasibleDemand"})
_WIDE = frozenset({"Exception", "BaseException"})


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Exception class names a handler catches (last dotted component)."""
    node = handler.type
    if node is None:
        return {"<bare>"}
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.add(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.add(expr.attr)
    return names


def _is_drop_body(body: list[ast.stmt]) -> bool:
    """Is the handler body pure disposal (pass / ... / continue)?"""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or Ellipsis
        return False
    return True


def _has_raise(body: list[ast.stmt]) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for statement in body
        for node in ast.walk(statement)
    )


@register
class SwallowedTypedErrors(Rule):
    code = "R009"
    name = "no-swallowed-typed-errors"
    rationale = (
        "CapacityExhausted/InfeasibleDemand are the system's typed "
        "distress signals: handlers may recover from them explicitly "
        "but must not drop them or absorb them into except Exception "
        "outside designated recovery points"
    )

    @staticmethod
    def _is_recovery_point(source: SourceFile) -> bool:
        if source.filename in {"cli.py", "__main__.py", "runner.py"}:
            return True
        return source.filename == "service.py" and source.in_package("engine")

    def _try_body_raises(
        self, node: ast.Try, source: SourceFile, context: ProjectContext
    ) -> set[str]:
        """Typed errors the try body can raise, call graph included."""
        facts = context.facts_for(source)
        model = context.model
        scope = enclosing_summary(facts, node.lineno)
        raised: set[str] = set()
        for statement in node.body:
            for child in ast.walk(statement):
                if isinstance(child, ast.Raise):
                    exc = child.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    if isinstance(exc, ast.Name):
                        raised.add(exc.id)
                    elif isinstance(exc, ast.Attribute):
                        raised.add(exc.attr)
                elif isinstance(child, ast.Call):
                    parts: list[str] = []
                    func = child.func
                    while isinstance(func, ast.Attribute):
                        parts.append(func.attr)
                        func = func.value
                    if isinstance(func, ast.Name):
                        parts.append(func.id)
                        key = model.resolve_callable(
                            facts.module, tuple(reversed(parts)), scope=scope
                        )
                        if key is not None:
                            raised |= model.transitive(key).raises
        return raised & _TYPED

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.is_test_file or self._is_recovery_point(source):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                names = _handler_names(handler)
                typed_here = names & _TYPED
                if typed_here and _is_drop_body(handler.body):
                    caught = ", ".join(sorted(typed_here))
                    yield self.finding(
                        source,
                        handler.lineno,
                        handler.col_offset,
                        f"{caught} caught and dropped: recover explicitly "
                        "(degraded profile, warm-start hold) or let the "
                        "typed signal propagate to a recovery point",
                    )
                    continue
                wide = bool(names & _WIDE) or "<bare>" in names
                if wide and not _has_raise(handler.body):
                    escaping = self._try_body_raises(node, source, context)
                    if escaping:
                        caught = ", ".join(sorted(escaping))
                        handler_label = (
                            "bare except"
                            if "<bare>" in names
                            else f"except {'/'.join(sorted(names & _WIDE))}"
                        )
                        yield self.finding(
                            source,
                            handler.lineno,
                            handler.col_offset,
                            f"{handler_label} absorbs typed {caught} "
                            "raised inside the try body: catch the typed "
                            "error explicitly or re-raise after cleanup",
                        )
