"""R001 — no unseeded or module-level randomness.

The paper replicates every run "five times with different random number
streams"; the reproduction realizes that with ``numpy.random.Generator``
streams spawned from explicit seeds via ``SeedSequence``
(:mod:`repro.simengine.rng`).  The chaos layer's replayability — the
property that makes distributed selfish load balancing analyzable at
all — additionally depends on fault schedules being a pure function of
their seed.  One call to the module-level ``np.random.*`` state or the
stdlib ``random`` module silently breaks both: results stop being a
function of the recorded seed.

Flags
-----
* any import or call of the stdlib ``random`` module;
* calls to legacy module-level ``numpy.random`` functions
  (``np.random.seed``, ``np.random.rand``, ``np.random.normal``, ...);
* unseeded generator construction: ``np.random.default_rng()`` (or with
  an explicit ``None`` seed) and zero-argument bit generators.

Allowed
-------
Seeded construction anywhere (``np.random.default_rng(seed)``,
``np.random.Generator(np.random.PCG64(seq))``, ``SeedSequence`` use),
and everything inside the audited helper :mod:`repro.simengine.rng`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules._imports import ImportMap
from repro.analysis.source import SourceFile

__all__ = ["UnseededRandomness"]

#: Constructors of the explicit-seed plumbing; allowed when given a seed.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _is_unseeded(call: ast.Call) -> bool:
    if call.keywords:
        return False
    if not call.args:
        return True
    return len(call.args) == 1 and (
        isinstance(call.args[0], ast.Constant) and call.args[0].value is None
    )


@register
class UnseededRandomness(Rule):
    code = "R001"
    name = "no-unseeded-rng"
    rationale = (
        "experiments and chaos schedules must replay bit-for-bit from an "
        "explicit seed; all randomness flows through seeded "
        "numpy.random.Generator streams"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        if source.in_package("simengine") and source.filename == "rng.py":
            return  # the audited seed-plumbing helper itself
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "random":
                        yield self.finding(
                            source,
                            node.lineno,
                            node.col_offset,
                            "stdlib random module is banned: draw from a "
                            "seeded numpy.random.Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and not node.level and (
                    node.module.split(".", 1)[0] == "random"
                ):
                    yield self.finding(
                        source,
                        node.lineno,
                        node.col_offset,
                        "stdlib random module is banned: draw from a "
                        "seeded numpy.random.Generator instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(source, imports, node)

    def _check_call(
        self, source: SourceFile, imports: ImportMap, call: ast.Call
    ) -> Iterator[Finding]:
        dotted = imports.resolve(call.func)
        if dotted is None:
            return
        if dotted.startswith("random."):
            yield self.finding(
                source,
                call.lineno,
                call.col_offset,
                f"call to stdlib {dotted}(): use a seeded "
                "numpy.random.Generator passed in by the caller",
            )
            return
        if not dotted.startswith("numpy.random."):
            return
        attr = dotted.removeprefix("numpy.random.").split(".", 1)[0]
        if attr in _SEEDED_CONSTRUCTORS:
            if _is_unseeded(call):
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"unseeded numpy.random.{attr}(): pass an explicit "
                    "seed or SeedSequence so the run is replayable",
                )
        else:
            yield self.finding(
                source,
                call.lineno,
                call.col_offset,
                f"module-level numpy.random.{attr}() uses hidden global "
                "state: draw from an explicit numpy.random.Generator",
            )
