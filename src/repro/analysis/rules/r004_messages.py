"""R004 — message handlers must dispatch every ``MessageKind`` member.

The distributed NASH protocol is a token ring: correctness arguments in
:mod:`repro.distributed` are case analyses over the message kinds a node
can receive.  When a new kind is added to
:class:`repro.distributed.messages.MessageKind`, every handler that
branches on kinds must say what it does with it — an implicit "anything
else falls through to the else branch" is exactly how a TERMINATE gets
processed as if it were a TOKEN after the enum grows.

A *handler* here is any function named ``handle`` or ``handle_*`` whose
body mentions ``MessageKind``.  Dispatching a member means *comparing*
against it (``kind is MessageKind.TOKEN``, ``==``, membership in a
literal tuple/set, or a ``match`` case) — merely constructing a message
of that kind does not count.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

__all__ = ["MessageExhaustiveness"]

_ENUM_NAME = "MessageKind"


def _kind_member(node: ast.expr) -> str | None:
    """``MessageKind.X`` -> ``"X"``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == _ENUM_NAME
    ):
        return node.attr
    return None


def _dispatched_members(handler: ast.AST) -> set[str]:
    dispatched: set[str] = set()
    for node in ast.walk(handler):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                left, right = operands[index], operands[index + 1]
                if isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq)):
                    for side in (left, right):
                        member = _kind_member(side)
                        if member is not None:
                            dispatched.add(member)
                elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                    right, (ast.Tuple, ast.List, ast.Set)
                ):
                    for element in right.elts:
                        member = _kind_member(element)
                        if member is not None:
                            dispatched.add(member)
        elif isinstance(node, ast.MatchValue):
            member = _kind_member(node.value)
            if member is not None:
                dispatched.add(member)
    return dispatched


def _mentions_enum(handler: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == _ENUM_NAME
        for node in ast.walk(handler)
    )


@register
class MessageExhaustiveness(Rule):
    code = "R004"
    name = "exhaustive-message-dispatch"
    rationale = (
        "protocol safety arguments are case analyses over MessageKind; a "
        "handler that dispatches some kinds implicitly mishandles any "
        "kind added later"
    )

    def check(
        self, source: SourceFile, context: ProjectContext
    ) -> Iterator[Finding]:
        required = context.enum_members(_ENUM_NAME, near=source)
        if not required:
            return  # enum definition not in scope of this run
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (node.name == "handle" or node.name.startswith("handle_")):
                continue
            if not _mentions_enum(node):
                continue
            missing = sorted(set(required) - _dispatched_members(node))
            if missing:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"handler '{node.name}' does not dispatch "
                    f"MessageKind member(s) {', '.join(missing)}: compare "
                    "against every kind explicitly (and raise on the "
                    "unreachable else)",
                )
