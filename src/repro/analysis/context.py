"""Cross-file facts shared by all rules in one lint run.

The engine parses every file before any rule runs and lets the context
collect project-level facts.  PR 2's context collected one kind of
fact — the member list of every ``Enum`` defined anywhere in the run,
for R004's exhaustiveness check.  It now collects full
:class:`~repro.analysis.project.ModuleFacts` per file (imports, defs,
function summaries, telemetry vocabulary) and exposes them through a
lazily built :class:`~repro.analysis.project.ProjectModel`, the
symbol-resolution + call-graph layer that the cross-module rules
(R006–R010) query.

When a run does not include the defining file (e.g. linting
``node.py`` alone), :meth:`ProjectContext.enum_members` falls back to
parsing a ``messages.py`` sibling of the requesting file, so partial
runs stay exhaustive for the protocol package.

The incremental cache (:mod:`repro.analysis.cache`) bypasses parsing
for unchanged files by injecting previously serialized facts with
:meth:`ProjectContext.add_facts`.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.project import ModuleFacts, ProjectModel, collect_facts
from repro.analysis.source import SourceFile

__all__ = ["ProjectContext"]


def _is_enum_base(base: ast.expr) -> bool:
    name = base.attr if isinstance(base, ast.Attribute) else None
    if isinstance(base, ast.Name):
        name = base.id
    return name in {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}


def _enum_member_names(node: ast.ClassDef) -> tuple[str, ...]:
    members: list[str] = []
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members.append(target.id)
    return tuple(members)


class ProjectContext:
    """Facts collected across every file of one lint run."""

    def __init__(self) -> None:
        self._facts: dict[str, ModuleFacts] = {}
        self._sibling_cache: dict[str, dict[str, tuple[str, ...]]] = {}
        self._model: ProjectModel | None = None

    def collect(self, source: SourceFile) -> None:
        """First-pass visit: extract all cross-file facts from ``source``."""
        self.add_facts(collect_facts(source))

    def add_facts(self, facts: ModuleFacts) -> None:
        """Register pre-extracted facts (the incremental-cache path)."""
        self._facts[facts.path] = facts
        self._model = None

    @property
    def model(self) -> ProjectModel:
        """The composed project model (built lazily, after collection)."""
        if self._model is None:
            self._model = ProjectModel(self._facts)
        return self._model

    def facts_for(self, source: SourceFile) -> ModuleFacts:
        """The facts extracted from ``source`` (collecting on demand)."""
        facts = self._facts.get(source.path)
        if facts is None:
            self.collect(source)
            facts = self._facts[source.path]
        return facts

    @property
    def all_facts(self) -> dict[str, ModuleFacts]:
        return dict(self._facts)

    @staticmethod
    def _enums_in(tree: ast.Module) -> dict[str, tuple[str, ...]]:
        found: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                _is_enum_base(base) for base in node.bases
            ):
                found[node.name] = _enum_member_names(node)
        return found

    def enum_members(
        self, name: str, *, near: SourceFile | None = None
    ) -> tuple[str, ...] | None:
        """Member names of enum ``name``, or ``None`` if unknown.

        ``near`` enables the ``messages.py`` sibling fallback for runs
        that did not include the enum's defining file.
        """
        for facts in self._facts.values():
            members = facts.enums.get(name)
            if members is not None:
                return members
        if near is None:
            return None
        sibling = Path(near.path).parent / "messages.py"
        key = str(sibling)
        if key not in self._sibling_cache:
            enums: dict[str, tuple[str, ...]] = {}
            if sibling.is_file() and sibling.name != near.filename:
                try:
                    tree = ast.parse(
                        sibling.read_text(encoding="utf-8"), filename=key
                    )
                except (SyntaxError, OSError):  # pragma: no cover - defensive
                    tree = None
                if tree is not None:
                    enums = self._enums_in(tree)
            self._sibling_cache[key] = enums
        return self._sibling_cache[key].get(name)
