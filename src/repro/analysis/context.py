"""Cross-file facts shared by all rules in one lint run.

The engine parses every file before any rule runs and lets the context
collect project-level facts.  Today that is the member list of every
``Enum`` class defined anywhere in the run — R004 needs the
:class:`~repro.distributed.messages.MessageKind` vocabulary to check
handler exhaustiveness even when the handler lives in a different file
than the enum.

When a run does not include the defining file (e.g. linting
``node.py`` alone), :meth:`ProjectContext.enum_members` falls back to
parsing a ``messages.py`` sibling of the requesting file, so partial
runs stay exhaustive for the protocol package.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.source import SourceFile

__all__ = ["ProjectContext"]


def _is_enum_base(base: ast.expr) -> bool:
    name = base.attr if isinstance(base, ast.Attribute) else None
    if isinstance(base, ast.Name):
        name = base.id
    return name in {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}


def _enum_member_names(node: ast.ClassDef) -> tuple[str, ...]:
    members: list[str] = []
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members.append(target.id)
    return tuple(members)


class ProjectContext:
    """Facts collected across every file of one lint run."""

    def __init__(self) -> None:
        self._enums: dict[str, tuple[str, ...]] = {}
        self._sibling_cache: dict[str, dict[str, tuple[str, ...]]] = {}

    def collect(self, source: SourceFile) -> None:
        """First-pass visit: record every enum class defined in ``source``."""
        self._enums.update(self._enums_in(source.tree))

    @staticmethod
    def _enums_in(tree: ast.Module) -> dict[str, tuple[str, ...]]:
        found: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                _is_enum_base(base) for base in node.bases
            ):
                found[node.name] = _enum_member_names(node)
        return found

    def enum_members(
        self, name: str, *, near: SourceFile | None = None
    ) -> tuple[str, ...] | None:
        """Member names of enum ``name``, or ``None`` if unknown.

        ``near`` enables the ``messages.py`` sibling fallback for runs
        that did not include the enum's defining file.
        """
        members = self._enums.get(name)
        if members is not None or near is None:
            return members
        sibling = Path(near.path).parent / "messages.py"
        key = str(sibling)
        if key not in self._sibling_cache:
            enums: dict[str, tuple[str, ...]] = {}
            if sibling.is_file() and sibling.name != near.filename:
                try:
                    tree = ast.parse(
                        sibling.read_text(encoding="utf-8"), filename=key
                    )
                except (SyntaxError, OSError):  # pragma: no cover - defensive
                    tree = None
                if tree is not None:
                    enums = self._enums_in(tree)
            self._sibling_cache[key] = enums
        return self._sibling_cache[key].get(name)
