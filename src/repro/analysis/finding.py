"""The unit of lint output: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["Finding", "PARSE_ERROR"]

#: Pseudo-rule code used for files the engine cannot parse.  Parse
#: failures are reported as findings (they fail the lint run) but are
#: not suppressible and have no registered rule behind them.
PARSE_ERROR = "E000"


@dataclass(frozen=True, slots=True)
class Finding:
    """One violation: which rule fired, where, and why.

    Attributes
    ----------
    rule:
        The rule code (``"R001"`` .. ``"R005"``, or :data:`PARSE_ERROR`).
    path:
        Path of the offending file, as given to the engine.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable explanation with the suggested fix.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
