"""The ``repro-lint`` command-line interface.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule codes, missing paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis enforcing the model's "
            "invariants — per-file rules (seeded RNG, tolerance-based "
            "float comparison, audited M/M/1 formulas, exhaustive "
            "message handling, sim-clock discipline) and cross-module "
            "dataflow rules (pool purity, RNG provenance, kernel "
            "aliasing, typed-error flow, telemetry vocabulary)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and "
        "exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help="incremental cache file: warm runs re-check only the "
        "invalidation closure of changed files",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _validate_codes(
    parser: argparse.ArgumentParser, flag: str, codes: list[str] | None
) -> None:
    """Hard argparse error for unknown rule codes (typos must not pass)."""
    if codes is None:
        return
    known = {rule.code for rule in all_rules()}
    unknown = sorted(set(codes) - known)
    if unknown:
        parser.error(
            f"unknown rule code{'s' if len(unknown) != 1 else ''} in "
            f"{flag}: {', '.join(unknown)} (known rules: "
            f"{', '.join(sorted(known))})"
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)

        if args.list_rules:
            for rule in all_rules():
                print(f"{rule.code}  {rule.name}: {rule.rationale}")
            return 0

        select = _split_codes(args.select)
        ignore = _split_codes(args.ignore)
        _validate_codes(parser, "--select", select)
        _validate_codes(parser, "--ignore", ignore)
    except SystemExit as exc:
        # argparse hard errors (usage, unknown rule codes) exit(2); keep
        # main() returning an int so embedding callers see the status.
        code = exc.code
        return code if isinstance(code, int) else 2

    try:
        findings = lint_paths(
            args.paths, select=select, ignore=ignore, cache_path=args.cache
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        plural = "s" if len(findings) != 1 else ""
        print(
            f"repro-lint: baseline with {len(findings)} finding{plural} "
            f"written to {args.write_baseline}"
        )
        return 0

    if args.baseline:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    renderer = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    report = renderer(findings)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if findings else 0
