"""The ``repro-lint`` command-line interface.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule codes, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis enforcing the model's "
            "invariants (seeded RNG, tolerance-based float comparison, "
            "audited M/M/1 formulas, exhaustive message handling, "
            "sim-clock discipline)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return 0

    try:
        findings = lint_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings))
    return 1 if findings else 0
