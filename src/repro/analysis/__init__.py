"""Project-specific static analysis (``repro-lint``).

The numerical core (M/M/1 formulas, simplex-constrained strategies,
stability conditions from paper eq. 1-2) and the distributed protocol
layer both carry invariants that Python will not enforce: experiments
must be replayable from a seed, float comparisons on rates and response
times must be tolerance-based, response-time arithmetic must flow
through the audited :mod:`repro.queueing` formulas, every
:class:`~repro.distributed.messages.MessageKind` must be dispatched by
every protocol handler, and simulated code must never read the wall
clock.  Violating any of these compiles, imports, and silently corrupts
a 10k-agent run.

This package is an AST-based lint engine encoding those invariants as
rules:

========  ============================================================
R001      no unseeded / module-level RNG (``random.*``, ``np.random.*``)
R002      no ``==`` / ``!=`` on float values — use tolerance helpers
R003      no ad-hoc ``1/(mu - lambda)`` outside :mod:`repro.queueing`
R004      every ``MessageKind`` dispatched in every protocol handler
R005      no wall-clock reads or bare ``except`` in sim/protocol code
========  ============================================================

Use the ``repro-lint`` console script (or ``python -m repro.analysis``)
to run it; suppress a deliberate violation with an inline
``# reprolint: allow=R00X reason`` comment on (or directly above) the
offending line.
"""

from repro.analysis.cli import main
from repro.analysis.context import ProjectContext
from repro.analysis.engine import lint_paths, lint_sources
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register, selected_rules
from repro.analysis.reporters import render_json, render_text
from repro.analysis.source import SourceFile

__all__ = [
    "Finding",
    "ProjectContext",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_sources",
    "main",
    "register",
    "render_json",
    "render_text",
    "selected_rules",
]
