"""Baseline files: adopt new rules without stopping the world.

A baseline records the *currently accepted* findings so a newly enabled
rule can gate regressions immediately while the backlog is burned down.
Each finding is fingerprinted by ``(rule, path, stripped source line)``
— deliberately *not* by line number, so unrelated edits above a finding
do not un-baseline it — with a per-fingerprint count, so duplicating an
accepted violation still fails the gate (the ruff/ESLint convention).

Workflow::

    repro-lint src --write-baseline .reprolint-baseline.json  # adopt
    repro-lint src --baseline .reprolint-baseline.json        # gate

The acceptance bar for this repo is an *empty* baseline — the file
exists for downstream forks and for staging future rules.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.finding import Finding

__all__ = [
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

_VERSION = 1


def _default_line_loader(path: str) -> tuple[str, ...]:
    try:
        return tuple(Path(path).read_text(encoding="utf-8").splitlines())
    except OSError:
        return ()


def fingerprint(
    finding: Finding,
    line_loader: Callable[[str], tuple[str, ...]] = _default_line_loader,
) -> str:
    """Stable identity of a finding across unrelated edits."""
    lines = line_loader(finding.path)
    line_text = (
        lines[finding.line - 1].strip()
        if 0 < finding.line <= len(lines)
        else ""
    )
    normalized_path = finding.path.replace("\\", "/")
    payload = f"{finding.rule}::{normalized_path}::{line_text}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def write_baseline(
    path: str | Path,
    findings: Sequence[Finding],
    line_loader: Callable[[str], tuple[str, ...]] = _default_line_loader,
) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    counts = Counter(fingerprint(f, line_loader) for f in findings)
    payload = {
        "tool": "repro-lint",
        "version": _VERSION,
        "count": len(findings),
        "fingerprints": dict(sorted(counts.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: str | Path) -> Counter[str]:
    """Load a baseline file into fingerprint counts.

    Raises ``ValueError`` on malformed files — a corrupt baseline must
    fail the gate loudly, never silently accept everything.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("tool") != "repro-lint"
        or not isinstance(payload.get("fingerprints"), dict)
    ):
        raise ValueError(f"{path} is not a repro-lint baseline file")
    counts: Counter[str] = Counter()
    for key, value in payload["fingerprints"].items():
        counts[str(key)] = int(value)
    return counts


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Counter[str],
    line_loader: Callable[[str], tuple[str, ...]] = _default_line_loader,
) -> list[Finding]:
    """Drop findings covered by the baseline (counts are consumed).

    Findings are processed in sorted order so the behaviour is
    deterministic when a fingerprint's count is smaller than the number
    of matching findings: the later duplicates survive and fail the
    gate.
    """
    remaining = Counter(baseline)
    surviving: list[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        key = fingerprint(finding, line_loader)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            surviving.append(finding)
    return surviving
