"""``python -m repro.analysis`` — the CLI without console-script install."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
