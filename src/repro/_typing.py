"""Shared static-typing aliases.

Kept in one tiny module so the strictly-typed packages
(:mod:`repro.queueing`, :mod:`repro.game`, :mod:`repro.schemes`) spell
array types consistently: ``FloatArray`` is the concrete ``float64``
array every numeric routine in this codebase produces, as opposed to the
bare ``np.ndarray`` (which erases the dtype and fails
``mypy --strict``'s ``disallow_any_generics``).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = ["ArrayLike", "BoolArray", "FloatArray"]

#: Anything ``np.asarray(..., dtype=float)`` accepts.
ArrayLike = npt.ArrayLike

#: A concrete ``float64`` numpy array.
FloatArray = npt.NDArray[np.float64]

#: A boolean mask array.
BoolArray = npt.NDArray[np.bool_]
