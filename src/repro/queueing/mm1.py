"""M/M/1 queueing analytics.

The paper models every computer in the distributed system as an M/M/1
queueing system (Poisson arrivals, exponentially distributed service times,
a single FCFS server; Kleinrock, *Queueing Systems* vol. 1).  This module
collects the closed-form stationary quantities used throughout the
reproduction, both for the analytic solvers (the expected response time is
the players' cost function) and as the oracle against which the
discrete-event simulation engine is validated.

All functions are vectorized: scalar or array inputs are accepted and the
result follows numpy broadcasting rules.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "utilization",
    "expected_response_time",
    "expected_waiting_time",
    "expected_number_in_system",
    "expected_number_in_queue",
    "response_time_quantile",
    "response_time_cdf",
    "is_stable",
    "marginal_delay",
    "total_delay",
]


def utilization(arrival_rate, service_rate):
    """Server utilization ``rho = lambda / mu``.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda`` (jobs/second).
    service_rate:
        Exponential service rate ``mu`` (jobs/second).
    """
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    if np.any(service_rate <= 0.0):
        raise ValueError("service rate must be positive")
    if np.any(arrival_rate < 0.0):
        raise ValueError("arrival rate must be nonnegative")
    return arrival_rate / service_rate


def is_stable(arrival_rate, service_rate) -> bool | np.ndarray:
    """Whether the queue is stable, i.e. ``lambda < mu``.

    Returns a boolean (or boolean array under broadcasting).
    """
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    result = arrival_rate < service_rate
    if result.ndim == 0:
        return bool(result)
    return result


def _check_stable(arrival_rate: np.ndarray, service_rate: np.ndarray) -> None:
    if np.any(arrival_rate >= service_rate):
        raise ValueError(
            "unstable queue: arrival rate must be strictly below service rate"
        )
    if np.any(arrival_rate < 0.0):
        raise ValueError("arrival rate must be nonnegative")


def expected_response_time(arrival_rate, service_rate):
    """Stationary expected response (sojourn) time ``T = 1 / (mu - lambda)``.

    This is the paper's eq. (1): the cost a job pays at computer ``i`` when
    the aggregate flow into it is ``lambda_i``.
    """
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    _check_stable(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def expected_waiting_time(arrival_rate, service_rate):
    """Stationary expected waiting time in queue ``W = rho / (mu - lambda)``."""
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    _check_stable(arrival_rate, service_rate)
    return arrival_rate / (service_rate * (service_rate - arrival_rate))


def expected_number_in_system(arrival_rate, service_rate):
    """Stationary mean number in system ``L = rho / (1 - rho)``."""
    rho = utilization(arrival_rate, service_rate)
    if np.any(rho >= 1.0):
        raise ValueError("unstable queue: utilization must be below 1")
    return rho / (1.0 - rho)


def expected_number_in_queue(arrival_rate, service_rate):
    """Stationary mean queue length ``Lq = rho^2 / (1 - rho)``."""
    rho = utilization(arrival_rate, service_rate)
    if np.any(rho >= 1.0):
        raise ValueError("unstable queue: utilization must be below 1")
    return rho * rho / (1.0 - rho)


def response_time_cdf(t, arrival_rate, service_rate):
    """CDF of the stationary response time: ``1 - exp(-(mu - lambda) t)``.

    The M/M/1 sojourn time is exponential with rate ``mu - lambda``.
    """
    t = np.asarray(t, dtype=float)
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    _check_stable(arrival_rate, service_rate)
    if np.any(t < 0.0):
        raise ValueError("time must be nonnegative")
    return 1.0 - np.exp(-(service_rate - arrival_rate) * t)


def response_time_quantile(q, arrival_rate, service_rate):
    """Quantile of the stationary response time distribution.

    Inverse of :func:`response_time_cdf`; useful for tail-latency style
    reporting on top of the mean values the paper uses.
    """
    q = np.asarray(q, dtype=float)
    if np.any((q < 0.0) | (q >= 1.0)):
        raise ValueError("quantile level must lie in [0, 1)")
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    _check_stable(arrival_rate, service_rate)
    return -np.log1p(-q) / (service_rate - arrival_rate)


def total_delay(arrival_rate, service_rate):
    """Aggregate delay rate ``lambda * T = lambda / (mu - lambda)``.

    Summed over computers and divided by the total arrival rate this is the
    overall expected response time minimized by the GOS baseline.
    """
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    _check_stable(arrival_rate, service_rate)
    return arrival_rate / (service_rate - arrival_rate)


def marginal_delay(arrival_rate, service_rate):
    """Derivative ``d/d lambda [lambda / (mu - lambda)] = mu / (mu - lambda)^2``.

    The first-order (KKT) conditions of both the user's best-response
    problem and the global optimum equalize this quantity over the support,
    which is the basis of the water-filling solvers.
    """
    arrival_rate = np.asarray(arrival_rate, dtype=float)
    service_rate = np.asarray(service_rate, dtype=float)
    _check_stable(arrival_rate, service_rate)
    gap = service_rate - arrival_rate
    return service_rate / (gap * gap)
