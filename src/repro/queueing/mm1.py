"""M/M/1 queueing analytics.

The paper models every computer in the distributed system as an M/M/1
queueing system (Poisson arrivals, exponentially distributed service times,
a single FCFS server; Kleinrock, *Queueing Systems* vol. 1).  This module
collects the closed-form stationary quantities used throughout the
reproduction, both for the analytic solvers (the expected response time is
the players' cost function) and as the oracle against which the
discrete-event simulation engine is validated.

All functions are vectorized: scalar or array inputs are accepted and the
result follows numpy broadcasting rules.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, BoolArray, FloatArray

__all__ = [
    "utilization",
    "expected_response_time",
    "expected_waiting_time",
    "expected_number_in_system",
    "expected_number_in_queue",
    "response_time_quantile",
    "response_time_cdf",
    "is_stable",
    "marginal_delay",
    "total_delay",
]


def utilization(arrival_rate: ArrayLike, service_rate: ArrayLike) -> FloatArray:
    """Server utilization ``rho = lambda / mu``.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda`` (jobs/second).
    service_rate:
        Exponential service rate ``mu`` (jobs/second).
    """
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    if np.any(mu <= 0.0):
        raise ValueError("service rate must be positive")
    if np.any(lam < 0.0):
        raise ValueError("arrival rate must be nonnegative")
    rho: FloatArray = lam / mu
    return rho


def is_stable(arrival_rate: ArrayLike, service_rate: ArrayLike) -> bool | BoolArray:
    """Whether the queue is stable, i.e. ``lambda < mu``.

    Returns a boolean (or boolean array under broadcasting).
    """
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    result: BoolArray = lam < mu
    if result.ndim == 0:
        return bool(result)
    return result


def _check_stable(arrival_rate: FloatArray, service_rate: FloatArray) -> None:
    if np.any(arrival_rate >= service_rate):
        raise ValueError(
            "unstable queue: arrival rate must be strictly below service rate"
        )
    if np.any(arrival_rate < 0.0):
        raise ValueError("arrival rate must be nonnegative")


def expected_response_time(
    arrival_rate: ArrayLike, service_rate: ArrayLike
) -> FloatArray:
    """Stationary expected response (sojourn) time ``T = 1 / (mu - lambda)``.

    This is the paper's eq. (1): the cost a job pays at computer ``i`` when
    the aggregate flow into it is ``lambda_i``.
    """
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    _check_stable(lam, mu)
    result: FloatArray = 1.0 / (mu - lam)
    return result


def expected_waiting_time(
    arrival_rate: ArrayLike, service_rate: ArrayLike
) -> FloatArray:
    """Stationary expected waiting time in queue ``W = rho / (mu - lambda)``."""
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    _check_stable(lam, mu)
    result: FloatArray = lam / (mu * (mu - lam))
    return result


def expected_number_in_system(
    arrival_rate: ArrayLike, service_rate: ArrayLike
) -> FloatArray:
    """Stationary mean number in system ``L = rho / (1 - rho)``."""
    rho = utilization(arrival_rate, service_rate)
    if np.any(rho >= 1.0):
        raise ValueError("unstable queue: utilization must be below 1")
    result: FloatArray = rho / (1.0 - rho)
    return result


def expected_number_in_queue(
    arrival_rate: ArrayLike, service_rate: ArrayLike
) -> FloatArray:
    """Stationary mean queue length ``Lq = rho^2 / (1 - rho)``."""
    rho = utilization(arrival_rate, service_rate)
    if np.any(rho >= 1.0):
        raise ValueError("unstable queue: utilization must be below 1")
    result: FloatArray = rho * rho / (1.0 - rho)
    return result


def response_time_cdf(
    t: ArrayLike, arrival_rate: ArrayLike, service_rate: ArrayLike
) -> FloatArray:
    """CDF of the stationary response time: ``1 - exp(-(mu - lambda) t)``.

    The M/M/1 sojourn time is exponential with rate ``mu - lambda``.
    """
    times: FloatArray = np.asarray(t, dtype=float)
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    _check_stable(lam, mu)
    if np.any(times < 0.0):
        raise ValueError("time must be nonnegative")
    result: FloatArray = 1.0 - np.exp(-(mu - lam) * times)
    return result


def response_time_quantile(
    q: ArrayLike, arrival_rate: ArrayLike, service_rate: ArrayLike
) -> FloatArray:
    """Quantile of the stationary response time distribution.

    Inverse of :func:`response_time_cdf`; useful for tail-latency style
    reporting on top of the mean values the paper uses.
    """
    levels: FloatArray = np.asarray(q, dtype=float)
    if np.any((levels < 0.0) | (levels >= 1.0)):
        raise ValueError("quantile level must lie in [0, 1)")
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    _check_stable(lam, mu)
    result: FloatArray = -np.log1p(-levels) / (mu - lam)
    return result


def total_delay(arrival_rate: ArrayLike, service_rate: ArrayLike) -> FloatArray:
    """Aggregate delay rate ``lambda * T = lambda / (mu - lambda)``.

    Summed over computers and divided by the total arrival rate this is the
    overall expected response time minimized by the GOS baseline.
    """
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    _check_stable(lam, mu)
    result: FloatArray = lam / (mu - lam)
    return result


def marginal_delay(arrival_rate: ArrayLike, service_rate: ArrayLike) -> FloatArray:
    """Derivative ``d/d lambda [lambda / (mu - lambda)] = mu / (mu - lambda)^2``.

    The first-order (KKT) conditions of both the user's best-response
    problem and the global optimum equalize this quantity over the support,
    which is the basis of the water-filling solvers.
    """
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    _check_stable(lam, mu)
    gap: FloatArray = mu - lam
    result: FloatArray = mu / (gap * gap)
    return result
