"""Performance metrics used in the paper's evaluation (Sec. 4.1).

Two headline metrics drive every table and figure:

* the **expected response time**, per user (``D_j``) and overall
  (``D = (1/Phi) * sum_j phi_j D_j``), and
* the **fairness index** of Jain, Chiu & Hawe (DEC-TR-301, 1984),
  ``I(D) = (sum_j D_j)^2 / (m * sum_j D_j^2)``,

plus, as extensions, the price of anarchy (Koutsoupias & Papadimitriou
1999) and convergence norms for the best-reply dynamics.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, FloatArray

__all__ = [
    "fairness_index",
    "overall_response_time",
    "price_of_anarchy",
    "speedup",
    "sweep_norm",
    "relative_gap",
]


def fairness_index(values: ArrayLike) -> float:
    """Jain's fairness index of a vector of per-user costs.

    ``I(x) = (sum x)^2 / (m * sum x^2)``.  Equals 1 exactly when all
    entries are equal, and ``1/m`` in the most discriminatory case (all the
    cost concentrated on one user).  Scale invariant.

    Parameters
    ----------
    values:
        Per-user expected response times ``(D_1 .. D_m)``; must be
        nonnegative with at least one strictly positive entry.
    """
    x: FloatArray = np.asarray(values, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("fairness index requires a nonempty 1-D vector")
    if np.any(x < 0.0):
        raise ValueError("fairness index requires nonnegative values")
    total = x.sum()
    square_sum = float(x @ x)
    if square_sum == 0.0:  # reprolint: allow=R002 exact-sentinel
        raise ValueError("fairness index undefined for the all-zero vector")
    return float(total * total / (x.size * square_sum))


def overall_response_time(
    per_user_times: ArrayLike, arrival_rates: ArrayLike
) -> float:
    """Traffic-weighted overall expected response time.

    ``D = (1 / Phi) * sum_j phi_j D_j`` — the quantity the GOS baseline
    minimizes and the y-axis of the paper's Figures 4 and 6.
    """
    d: FloatArray = np.asarray(per_user_times, dtype=float)
    phi: FloatArray = np.asarray(arrival_rates, dtype=float)
    if d.shape != phi.shape:
        raise ValueError("per-user times and arrival rates must align")
    total = phi.sum()
    if total <= 0.0:
        raise ValueError("total arrival rate must be positive")
    return float(d @ phi / total)


def price_of_anarchy(nash_overall_time: float, optimal_overall_time: float) -> float:
    """Ratio of the equilibrium overall time to the social optimum.

    Always >= 1 (up to numerical tolerance); equals 1 when selfish play is
    socially optimal.
    """
    if optimal_overall_time <= 0.0:
        raise ValueError("optimal overall time must be positive")
    if nash_overall_time < 0.0:
        raise ValueError("nash overall time must be nonnegative")
    return nash_overall_time / optimal_overall_time


def speedup(baseline_time: float, improved_time: float) -> float:
    """``baseline / improved`` — how many times faster the improved scheme is."""
    if improved_time <= 0.0:
        raise ValueError("improved time must be positive")
    return baseline_time / improved_time


def relative_gap(value: float, reference: float) -> float:
    """Signed relative difference ``(value - reference) / reference``.

    Used to express statements like "NASH is 7% above GOS at 50% load".
    """
    if reference == 0.0:  # reprolint: allow=R002 exact-sentinel
        raise ValueError("reference must be nonzero")
    return (value - reference) / reference


def sweep_norm(previous_times: ArrayLike, current_times: ArrayLike) -> float:
    """Convergence norm accumulated by one best-reply sweep.

    The NASH distributed algorithm (paper Sec. 3) accumulates
    ``norm += |D_j^{(l)} - D_j^{(l-1)}|`` as each user in the ring updates;
    a full sweep's norm below the tolerance terminates the iteration.
    """
    prev: FloatArray = np.asarray(previous_times, dtype=float)
    curr: FloatArray = np.asarray(current_times, dtype=float)
    if prev.shape != curr.shape:
        raise ValueError("time vectors must have identical shapes")
    return float(np.abs(curr - prev).sum())
