"""Queueing-theoretic substrate: M/M/1 analytics, metrics, stability."""

from repro.queueing.mg1 import (
    expected_number_in_system_mg1,
    expected_response_time_mg1,
    expected_waiting_time_mg1,
)
from repro.queueing.mm1 import (
    expected_number_in_queue,
    expected_number_in_system,
    expected_response_time,
    expected_waiting_time,
    is_stable,
    marginal_delay,
    response_time_cdf,
    response_time_quantile,
    total_delay,
    utilization,
)
from repro.queueing.metrics import (
    fairness_index,
    overall_response_time,
    price_of_anarchy,
    relative_gap,
    speedup,
    sweep_norm,
)
from repro.queueing.stability import (
    SLACK,
    assert_loads_stable,
    assert_system_stable,
    max_stable_total_rate,
    stability_margin,
)

__all__ = [
    "expected_number_in_system_mg1",
    "expected_response_time_mg1",
    "expected_waiting_time_mg1",
    "expected_number_in_queue",
    "expected_number_in_system",
    "expected_response_time",
    "expected_waiting_time",
    "is_stable",
    "marginal_delay",
    "response_time_cdf",
    "response_time_quantile",
    "total_delay",
    "utilization",
    "fairness_index",
    "overall_response_time",
    "price_of_anarchy",
    "relative_gap",
    "speedup",
    "sweep_norm",
    "SLACK",
    "assert_loads_stable",
    "assert_system_stable",
    "max_stable_total_rate",
    "stability_margin",
]
