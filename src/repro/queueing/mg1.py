"""M/G/1 analytics — the Pollaczek–Khinchine formulas.

The paper's model assumes exponential service times (M/M/1).  Real job
size distributions are rarely exponential, so the reproduction also
carries the M/G/1 generalization as an analysis substrate: with Poisson
arrivals at rate ``lambda`` and a general service distribution with mean
``1/mu`` and squared coefficient of variation ``scv = Var[S]/E[S]^2``,
the stationary mean waiting time is Pollaczek–Khinchine's

    W = lambda * E[S^2] / (2 (1 - rho))
      = rho * (1 + scv) / (2 mu (1 - rho))

and ``T = 1/mu + W``.  ``scv = 1`` recovers M/M/1; ``scv = 0`` (M/D/1)
halves the waiting time; ``scv > 1`` (heavy-ish tails) inflates it
linearly.  These are the exact oracles the EXT5 misspecification study
(and the G/G/1-capable simulation engines) validate against.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, FloatArray

__all__ = [
    "expected_waiting_time_mg1",
    "expected_response_time_mg1",
    "expected_number_in_system_mg1",
    "mm1_scv",
]

#: The squared coefficient of variation of the exponential distribution.
mm1_scv: float = 1.0


def _validate(
    arrival_rate: ArrayLike, service_rate: ArrayLike, scv: ArrayLike
) -> tuple[FloatArray, FloatArray, FloatArray]:
    lam: FloatArray = np.asarray(arrival_rate, dtype=float)
    mu: FloatArray = np.asarray(service_rate, dtype=float)
    c2: FloatArray = np.asarray(scv, dtype=float)
    if np.any(mu <= 0.0):
        raise ValueError("service rate must be positive")
    if np.any(lam < 0.0):
        raise ValueError("arrival rate must be nonnegative")
    if np.any(lam >= mu):
        raise ValueError("unstable queue: arrival rate must be below service rate")
    if np.any(c2 < 0.0):
        raise ValueError("squared coefficient of variation must be nonnegative")
    return lam, mu, c2


def expected_waiting_time_mg1(
    arrival_rate: ArrayLike, service_rate: ArrayLike, scv: ArrayLike = mm1_scv
) -> FloatArray:
    """P-K mean waiting time ``rho (1 + scv) / (2 mu (1 - rho))``."""
    lam, mu, c2 = _validate(arrival_rate, service_rate, scv)
    rho: FloatArray = lam / mu
    result: FloatArray = rho * (1.0 + c2) / (2.0 * mu * (1.0 - rho))
    return result


def expected_response_time_mg1(
    arrival_rate: ArrayLike, service_rate: ArrayLike, scv: ArrayLike = mm1_scv
) -> float | FloatArray:
    """P-K mean response time ``1/mu + W``.

    >>> expected_response_time_mg1(3.0, 5.0, scv=1.0)  # M/M/1 limit
    0.5
    """
    lam, mu, c2 = _validate(arrival_rate, service_rate, scv)
    result: FloatArray = 1.0 / mu + expected_waiting_time_mg1(lam, mu, c2)
    if result.ndim == 0:
        return float(result)
    return result


def expected_number_in_system_mg1(
    arrival_rate: ArrayLike, service_rate: ArrayLike, scv: ArrayLike = mm1_scv
) -> FloatArray:
    """Little's law applied to the P-K response time."""
    lam, _mu, _c2 = _validate(arrival_rate, service_rate, scv)
    result: FloatArray = lam * expected_response_time_mg1(
        arrival_rate, service_rate, scv
    )
    return result
