"""M/G/1 analytics — the Pollaczek–Khinchine formulas.

The paper's model assumes exponential service times (M/M/1).  Real job
size distributions are rarely exponential, so the reproduction also
carries the M/G/1 generalization as an analysis substrate: with Poisson
arrivals at rate ``lambda`` and a general service distribution with mean
``1/mu`` and squared coefficient of variation ``scv = Var[S]/E[S]^2``,
the stationary mean waiting time is Pollaczek–Khinchine's

    W = lambda * E[S^2] / (2 (1 - rho))
      = rho * (1 + scv) / (2 mu (1 - rho))

and ``T = 1/mu + W``.  ``scv = 1`` recovers M/M/1; ``scv = 0`` (M/D/1)
halves the waiting time; ``scv > 1`` (heavy-ish tails) inflates it
linearly.  These are the exact oracles the EXT5 misspecification study
(and the G/G/1-capable simulation engines) validate against.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.mm1 import expected_response_time as _mm1_response

__all__ = [
    "expected_waiting_time_mg1",
    "expected_response_time_mg1",
    "expected_number_in_system_mg1",
    "mm1_scv",
]

#: The squared coefficient of variation of the exponential distribution.
mm1_scv: float = 1.0


def _validate(arrival_rate, service_rate, scv):
    lam = np.asarray(arrival_rate, dtype=float)
    mu = np.asarray(service_rate, dtype=float)
    c2 = np.asarray(scv, dtype=float)
    if np.any(mu <= 0.0):
        raise ValueError("service rate must be positive")
    if np.any(lam < 0.0):
        raise ValueError("arrival rate must be nonnegative")
    if np.any(lam >= mu):
        raise ValueError("unstable queue: arrival rate must be below service rate")
    if np.any(c2 < 0.0):
        raise ValueError("squared coefficient of variation must be nonnegative")
    return lam, mu, c2


def expected_waiting_time_mg1(arrival_rate, service_rate, scv=mm1_scv):
    """P-K mean waiting time ``rho (1 + scv) / (2 mu (1 - rho))``."""
    lam, mu, c2 = _validate(arrival_rate, service_rate, scv)
    rho = lam / mu
    return rho * (1.0 + c2) / (2.0 * mu * (1.0 - rho))


def expected_response_time_mg1(arrival_rate, service_rate, scv=mm1_scv):
    """P-K mean response time ``1/mu + W``.

    >>> expected_response_time_mg1(3.0, 5.0, scv=1.0)  # M/M/1 limit
    0.5
    """
    lam, mu, c2 = _validate(arrival_rate, service_rate, scv)
    result = 1.0 / mu + expected_waiting_time_mg1(lam, mu, c2)
    if result.ndim == 0:
        return float(result)
    return result


def expected_number_in_system_mg1(arrival_rate, service_rate, scv=mm1_scv):
    """Little's law applied to the P-K response time."""
    lam, _mu, _c2 = _validate(arrival_rate, service_rate, scv)
    return lam * expected_response_time_mg1(arrival_rate, service_rate, scv)
