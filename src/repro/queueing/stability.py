"""System-level stability checks.

The load balancing game is well posed only while the total arrival rate is
strictly below the aggregate processing rate (paper Sec. 2) and every
computer's individual queue stays subcritical under the chosen strategy
profile (constraint (iii), "stability").  These helpers centralize those
checks so solvers, the simulation engine and the experiment harness agree
on one definition, including the numerical slack used near the boundary.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, FloatArray

__all__ = [
    "SLACK",
    "assert_system_stable",
    "assert_loads_stable",
    "stability_margin",
    "max_stable_total_rate",
]

#: Relative slack kept between a load and its service rate when projecting
#: onto the stability region; also the tolerance for stability assertions.
SLACK = 1e-9


def assert_system_stable(service_rates: ArrayLike, arrival_rates: ArrayLike) -> None:
    """Raise ``ValueError`` unless ``sum(phi) < sum(mu)``."""
    mu: FloatArray = np.asarray(service_rates, dtype=float)
    phi: FloatArray = np.asarray(arrival_rates, dtype=float)
    total_mu = float(mu.sum())
    total_phi = float(phi.sum())
    if not total_phi < total_mu:
        raise ValueError(
            "total arrival rate %.6g must be strictly below the aggregate "
            "processing rate %.6g" % (total_phi, total_mu)
        )


def assert_loads_stable(
    loads: ArrayLike, service_rates: ArrayLike, *, tol: float = SLACK
) -> None:
    """Raise ``ValueError`` unless ``lambda_i < mu_i`` for every computer.

    A relative tolerance ``tol`` is allowed so that loads produced by
    floating-point water-filling right at the boundary do not spuriously
    fail.
    """
    lam: FloatArray = np.asarray(loads, dtype=float)
    mu: FloatArray = np.asarray(service_rates, dtype=float)
    if lam.shape != mu.shape:
        raise ValueError("loads and service rates must align")
    if np.any(lam < -tol * mu):
        raise ValueError("negative load on some computer")
    if np.any(lam >= mu * (1.0 - tol)):
        worst = int(np.argmax(lam / mu))
        raise ValueError(
            "computer %d unstable: load %.6g vs service rate %.6g"
            % (worst, lam[worst], mu[worst])
        )


def stability_margin(loads: ArrayLike, service_rates: ArrayLike) -> float:
    """Smallest relative gap ``min_i (mu_i - lambda_i) / mu_i``.

    Positive for stable profiles; the closer to zero, the closer some queue
    is to saturation.
    """
    lam: FloatArray = np.asarray(loads, dtype=float)
    mu: FloatArray = np.asarray(service_rates, dtype=float)
    if lam.shape != mu.shape:
        raise ValueError("loads and service rates must align")
    return float(np.min((mu - lam) / mu))


def max_stable_total_rate(service_rates: ArrayLike, *, margin: float = 0.0) -> float:
    """Largest total arrival rate with the given relative safety margin.

    ``margin = 0.1`` returns 90% of the aggregate processing rate, the way
    the paper expresses workloads as system utilization percentages.
    """
    if not 0.0 <= margin < 1.0:
        raise ValueError("margin must lie in [0, 1)")
    mu: FloatArray = np.asarray(service_rates, dtype=float)
    return float(mu.sum() * (1.0 - margin))
