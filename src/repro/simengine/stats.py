"""Replication statistics (paper Sec. 4.1).

"Each run was replicated five times with different random number streams
and the results averaged over replications.  The standard error is less
than 5% ..."  This module runs an arbitrary measurement function across
independent replications and reports means, standard errors and Student-t
confidence intervals, plus the paper's relative-standard-error acceptance
check.

Measurements come in through one of two faces:

* ``measure`` — a callable run once per replication seed (general, but
  pays per-replication Python overhead);
* ``simulate_batch`` — a callable handed the *whole* seed list at once,
  returning the ``(replications, k)`` sample matrix in one call.  Built
  for :func:`repro.simengine.fastpath.simulate_profile_fast_batch`,
  whose batched kernel is bit-identical to the per-seed loop, so the two
  faces produce identical :class:`ReplicationStats` (a property the
  parity tests pin).

Both draw per-replication seeds from the same
:func:`~repro.simengine.rng.replication_seeds` tree, so results are
reproducible and comparable across the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

from repro.simengine.rng import replication_seeds

__all__ = ["ReplicationStats", "replicate", "replicate_until"]

#: Batched measurement: seed list in, (replications, k) sample matrix out.
BatchMeasure = Callable[[Sequence[np.random.SeedSequence]], np.ndarray]


@dataclass(frozen=True)
class ReplicationStats:
    """Aggregate of a vector-valued measurement across replications.

    Attributes
    ----------
    samples:
        Raw per-replication measurements, shape ``(replications, k)``.
    mean:
        Across-replication mean, shape ``(k,)``.
    std_error:
        Standard error of the mean, shape ``(k,)`` (ddof=1).
    confidence:
        Confidence level of :attr:`ci_low` / :attr:`ci_high`.
    """

    samples: np.ndarray
    mean: np.ndarray
    std_error: np.ndarray
    ci_low: np.ndarray
    ci_high: np.ndarray
    confidence: float

    @property
    def n_replications(self) -> int:
        return int(self.samples.shape[0])

    @property
    def relative_std_error(self) -> np.ndarray:
        """Standard error as a fraction of the mean.

        A component whose mean *and* standard error are both zero is a
        deterministic zero measurement — its relative error is defined
        as 0.0 (it trivially satisfies any acceptance criterion).  A
        zero mean with a *nonzero* standard error has no meaningful
        relative error at all; that raises instead of silently emitting
        ``inf``/``NaN`` and a RuntimeWarning that used to break
        :meth:`within_relative_error` and :func:`replicate_until`.
        """
        zero_mean = self.mean == 0.0  # reprolint: allow=R002 exact-sentinel
        if bool(np.any(zero_mean & (self.std_error > 0.0))):
            bad = np.flatnonzero(zero_mean & (self.std_error > 0.0))
            raise ValueError(
                "relative standard error is undefined for zero-mean "
                f"components with nonzero spread (indices {bad.tolist()})"
            )
        return np.divide(
            self.std_error,
            np.abs(self.mean),
            out=np.zeros_like(self.std_error),
            where=~zero_mean,
        )

    def within_relative_error(self, fraction: float) -> bool:
        """The paper's acceptance criterion (e.g. ``fraction=0.05``)."""
        return bool(np.all(self.relative_std_error <= fraction))


def _measure_rows(
    measure: Callable[[np.random.SeedSequence], np.ndarray],
    seeds: Sequence[np.random.SeedSequence],
) -> np.ndarray:
    rows = []
    for child in seeds:
        row = np.asarray(measure(child), dtype=float)
        if row.ndim != 1:
            raise ValueError("measure must return a 1-D vector")
        rows.append(row)
    return np.vstack(rows)


def _batch_rows(
    simulate_batch: BatchMeasure, seeds: Sequence[np.random.SeedSequence]
) -> np.ndarray:
    samples = np.asarray(simulate_batch(seeds), dtype=float)
    if samples.ndim != 2 or samples.shape[0] != len(seeds):
        raise ValueError(
            "simulate_batch must return a (replications, k) matrix with "
            "one row per seed"
        )
    return samples


def replicate(
    measure: Callable[[np.random.SeedSequence], np.ndarray] | None = None,
    *,
    n_replications: int = 5,
    seed: int = 0,
    confidence: float = 0.95,
    simulate_batch: BatchMeasure | None = None,
) -> ReplicationStats:
    """Run a measurement across independent replication seeds and aggregate.

    Parameters
    ----------
    measure:
        Callable mapping a replication's root ``SeedSequence`` to a 1-D
        measurement vector (e.g. per-user mean response times).
    n_replications:
        Number of independent runs (the paper uses 5).
    confidence:
        Two-sided confidence level for the Student-t intervals.
    simulate_batch:
        Alternative to ``measure``: a callable handed the full seed list
        at once, returning the ``(n_replications, k)`` sample matrix in
        one batched call (see module docstring).  Exactly one of
        ``measure`` / ``simulate_batch`` must be given.
    """
    if (measure is None) == (simulate_batch is None):
        raise ValueError("provide exactly one of measure or simulate_batch")
    if n_replications < 2:
        raise ValueError("at least 2 replications are needed for a std error")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    seeds = replication_seeds(seed, n_replications)
    if simulate_batch is not None:
        samples = _batch_rows(simulate_batch, seeds)
    else:
        assert measure is not None
        samples = _measure_rows(measure, seeds)
    return _aggregate(samples, confidence)


def _aggregate(samples: np.ndarray, confidence: float) -> ReplicationStats:
    n = samples.shape[0]
    mean = samples.mean(axis=0)
    std_error = samples.std(axis=0, ddof=1) / np.sqrt(n)
    t_value = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ReplicationStats(
        samples=samples,
        mean=mean,
        std_error=std_error,
        ci_low=mean - t_value * std_error,
        ci_high=mean + t_value * std_error,
        confidence=confidence,
    )


def replicate_until(
    measure: Callable[[np.random.SeedSequence], np.ndarray] | None = None,
    *,
    target_relative_error: float = 0.05,
    min_replications: int = 3,
    max_replications: int = 50,
    seed: int = 0,
    confidence: float = 0.95,
    simulate_batch: BatchMeasure | None = None,
) -> ReplicationStats:
    """Sequential replication: add runs until the std error target is met.

    The paper fixed 5 replications and *checked* the 5% relative standard
    error afterwards; this adaptive variant keeps replicating until the
    target holds (or the budget runs out), which is how a practitioner
    would guarantee the acceptance criterion rather than hope for it.
    The returned stats use however many replications were consumed.

    With ``simulate_batch`` the runs are produced in growing chunks
    (``min_replications``, then doubling) but the stopping rule still
    checks prefixes in seed order, so the *returned* statistics use the
    same replication count — and, with a bit-identical batched kernel,
    the same values — as the one-at-a-time ``measure`` path.  Rows past
    the stopping point (the tail of the final chunk) are discarded.
    """
    if (measure is None) == (simulate_batch is None):
        raise ValueError("provide exactly one of measure or simulate_batch")
    if not 2 <= min_replications <= max_replications:
        raise ValueError(
            "need 2 <= min_replications <= max_replications"
        )
    if target_relative_error <= 0.0:
        raise ValueError("target relative error must be positive")
    seeds = replication_seeds(seed, max_replications)
    if simulate_batch is not None:
        samples = np.zeros((0, 0))
        consumed = 0
        while consumed < max_replications:
            chunk = min_replications if consumed == 0 else consumed
            chunk = min(chunk, max_replications - consumed)
            block = _batch_rows(
                simulate_batch, seeds[consumed : consumed + chunk]
            )
            samples = block if consumed == 0 else np.vstack([samples, block])
            first_check = max(min_replications, consumed + 1)
            consumed += chunk
            for count in range(first_check, consumed + 1):
                stats = _aggregate(samples[:count], confidence)
                if stats.within_relative_error(target_relative_error):
                    return stats
        return _aggregate(samples, confidence)
    assert measure is not None
    rows: list[np.ndarray] = []
    for index, child in enumerate(seeds):
        row = np.asarray(measure(child), dtype=float)
        if row.ndim != 1:
            raise ValueError("measure must return a 1-D vector")
        rows.append(row)
        if index + 1 < min_replications:
            continue
        stats = _aggregate(np.vstack(rows), confidence)
        if stats.within_relative_error(target_relative_error):
            return stats
    return _aggregate(np.vstack(rows), confidence)
