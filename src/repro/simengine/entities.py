"""Simulation entities: jobs, FCFS computers and Poisson user sources.

Mirrors the paper's simulation model (Sec. 4.1): jobs arrive at the
system from per-user Poisson processes, are dispatched to a computer
according to the user's strategy (independent per-job routing — the
Bernoulli split keeps each computer's arrivals Poisson), and are "run to
completion (i.e. no preemption) in FCFS order" on M/M/1 computers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["Job", "Computer", "UserSource"]


@dataclass(slots=True)
class Job:
    """One job's lifecycle timestamps."""

    job_id: int
    user: int
    computer: int
    arrival_time: float
    start_time: float = float("nan")
    completion_time: float = float("nan")

    @property
    def response_time(self) -> float:
        """Sojourn time: completion minus arrival."""
        return self.completion_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        """Queueing delay before service starts."""
        return self.start_time - self.arrival_time


class Computer:
    """A single FCFS run-to-completion server.

    Service times are exponential by default (the paper's M/M/1 model); an
    explicit :class:`~repro.simengine.service.ServiceDistribution` turns
    the node into an M/G/1 (or, with non-Poisson feeding, G/G/1) server
    for the misspecification studies.
    """

    def __init__(
        self,
        index: int,
        service_rate: float,
        rng: np.random.Generator,
        service_distribution=None,
    ):
        if service_rate <= 0.0:
            raise ValueError("service rate must be positive")
        if service_distribution is not None and not np.isclose(
            service_distribution.rate, service_rate
        ):
            raise ValueError(
                "service distribution rate must match the computer's rate"
            )
        self.index = index
        self.service_rate = float(service_rate)
        self.service_distribution = service_distribution
        self._rng = rng
        self._queue: deque[Job] = deque()
        self._in_service: Job | None = None
        # Aggregates for utilization accounting.
        self.busy_time = 0.0
        self.completed = 0
        #: True while the server is crashed (accepts but does not serve).
        self.down = False
        #: Bumped on every suspend; scheduled departures carry the epoch
        #: they were issued under, so stale ones can be recognized and
        #: skipped after a crash invalidates them.
        self.epoch = 0

    @property
    def is_busy(self) -> bool:
        return self._in_service is not None

    @property
    def queue_length(self) -> int:
        """Jobs waiting, excluding the one in service."""
        return len(self._queue)

    @property
    def run_queue_length(self) -> int:
        """Jobs in system (the 'run queue' users would inspect)."""
        return len(self._queue) + (1 if self._in_service else 0)

    def draw_service_time(self) -> float:
        if self.service_distribution is not None:
            return float(self.service_distribution.sample(self._rng))
        return float(self._rng.exponential(1.0 / self.service_rate))

    def accept(self, job: Job, now: float) -> float | None:
        """A job arrives.  Returns its departure time if service starts now.

        A down server still accepts — the job simply queues until the
        server resumes (the crash model drops no work)."""
        if self._in_service is None and not self.down:
            return self._start_service(job, now)
        self._queue.append(job)
        return None

    def complete_current(self, now: float) -> tuple[Job, float | None]:
        """The in-service job finishes.

        Returns ``(finished_job, next_departure_time_or_None)``.
        """
        if self._in_service is None:
            raise RuntimeError(f"computer {self.index} has no job in service")
        finished = self._in_service
        finished.completion_time = now
        self.busy_time += now - finished.start_time
        self.completed += 1
        self._in_service = None
        if self._queue:
            nxt = self._queue.popleft()
            return finished, self._start_service(nxt, now)
        return finished, None

    def _start_service(self, job: Job, now: float) -> float:
        job.start_time = now
        self._in_service = job
        return now + self.draw_service_time()

    def suspend(self, now: float) -> None:
        """The server crashes.

        The job in service (if any) loses its progress and returns to the
        head of the queue to be re-executed from scratch on resume; its
        aborted partial service is not counted as busy time.  Bumping the
        epoch invalidates the departure event scheduled for it.
        """
        if self.down:
            raise RuntimeError(f"computer {self.index} is already down")
        self.down = True
        self.epoch += 1
        if self._in_service is not None:
            interrupted = self._in_service
            interrupted.start_time = float("nan")
            self._in_service = None
            self._queue.appendleft(interrupted)

    def resume(self, now: float) -> float | None:
        """The server comes back.  Returns the head job's departure time
        (a fresh service draw) if the queue is nonempty."""
        if not self.down:
            raise RuntimeError(f"computer {self.index} is not down")
        self.down = False
        if self._queue:
            return self._start_service(self._queue.popleft(), now)
        return None


class UserSource:
    """A user's Poisson job generator with per-job strategy routing."""

    def __init__(
        self,
        index: int,
        arrival_rate: float,
        fractions: np.ndarray | None,
        arrival_rng: np.random.Generator,
        routing_rng: np.random.Generator,
        arrival_process=None,
    ):
        if arrival_rate <= 0.0:
            raise ValueError("arrival rate must be positive")
        if arrival_process is not None and not np.isclose(
            arrival_process.average_rate, arrival_rate
        ):
            raise ValueError(
                "arrival process average rate must match the user's rate"
            )
        self.arrival_process = arrival_process
        if fractions is not None:
            fractions = np.asarray(fractions, dtype=float)
            if fractions.ndim != 1 or fractions.size == 0:
                raise ValueError("fractions must be a nonempty vector")
            if np.any(fractions < 0.0) or not np.isclose(fractions.sum(), 1.0):
                raise ValueError("fractions must be a probability vector")
            self._cumulative = np.cumsum(fractions)
        else:
            # Routing is decided by a DispatchPolicy in the simulator;
            # choose_computer() is unavailable.
            self._cumulative = None
        self.index = index
        self.arrival_rate = float(arrival_rate)
        self._arrival_rng = arrival_rng
        self.routing_rng = routing_rng
        self.generated = 0

    def next_interarrival(self) -> float:
        if self.arrival_process is not None:
            return float(
                self.arrival_process.next_interarrival(self._arrival_rng)
            )
        return float(self._arrival_rng.exponential(1.0 / self.arrival_rate))

    def choose_computer(self) -> int:
        """Independent per-job routing along the user's strategy.

        Inverse-CDF sampling against the cached cumulative fractions;
        Bernoulli splitting keeps every computer's arrival process Poisson
        so the analytic M/M/1 formulas are the exact stationary targets.
        """
        if self._cumulative is None:
            raise RuntimeError(
                "this source has no static fractions; routing is decided "
                "by the simulation's dispatch policy"
            )
        u = self.routing_rng.random()
        choice = int(np.searchsorted(self._cumulative, u, side="right"))
        self.generated += 1
        return min(choice, self._cumulative.size - 1)
