"""The event-driven load balancing simulator (Sim++ substitute).

Drives the entities of :mod:`repro.simengine.entities` through the event
queue of :mod:`repro.simengine.events` to estimate per-user expected
response times under any feasible strategy profile, exactly as the paper
measured its schemes: per-user Poisson generation, per-job routing by the
strategy fractions, FCFS run-to-completion M/M/1 computers, and a warm-up
interval discarded from the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.simengine.entities import Computer, Job, UserSource
from repro.simengine.events import EventKind, EventQueue
from repro.simengine.outages import ServerOutage
from repro.simengine.policies import DispatchPolicy, StaticPolicy
from repro.simengine.rng import SimulationStreams
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "SimulationResult",
    "LoadBalancingSimulation",
    "simulate_profile",
    "simulate_policy",
]


@dataclass(frozen=True)
class SimulationResult:
    """Measured statistics of one simulation run.

    Attributes
    ----------
    user_mean_response_times:
        Per-user average sojourn time over counted (post-warm-up) jobs.
    user_job_counts:
        Number of counted jobs per user.
    computer_utilizations:
        Measured busy fraction of each computer over the counted window.
    computer_job_counts:
        Counted jobs completed per computer.
    horizon:
        Simulated time span (including warm-up).
    warmup:
        Initial interval whose completions were discarded.
    """

    user_mean_response_times: np.ndarray
    user_job_counts: np.ndarray
    computer_utilizations: np.ndarray
    computer_job_counts: np.ndarray
    horizon: float
    warmup: float
    #: Periodic run-queue observations, shape (samples, computers).
    #: ``None`` at construction means "nothing recorded" and is
    #: normalized by ``__post_init__`` to the empty (0, computers) array,
    #: so readers never see ``None``.
    queue_length_samples: np.ndarray | None = None
    #: Per-computer off-line time within the counted (post-warm-up)
    #: window; ``None`` normalizes to all-zeros (no outages configured).
    computer_downtime: np.ndarray | None = None

    def __post_init__(self) -> None:
        samples = self.queue_length_samples
        if samples is None:
            samples = np.zeros(
                (0, self.computer_utilizations.size), dtype=np.int64
            )
        object.__setattr__(
            self, "queue_length_samples", np.asarray(samples)
        )
        downtime = self.computer_downtime
        if downtime is None:
            downtime = np.zeros(self.computer_utilizations.size)
        object.__setattr__(
            self, "computer_downtime", np.asarray(downtime, dtype=float)
        )

    def _queue_samples(self) -> np.ndarray:
        """The normalized sample matrix (never ``None`` post-init)."""
        assert self.queue_length_samples is not None
        return self.queue_length_samples

    def _downtime(self) -> np.ndarray:
        """The normalized downtime vector (never ``None`` post-init)."""
        assert self.computer_downtime is not None
        return self.computer_downtime

    @property
    def total_jobs(self) -> int:
        return int(self.user_job_counts.sum())

    def mean_queue_lengths(self) -> np.ndarray:
        """Time-averaged run-queue length per computer (needs sampling)."""
        samples = self._queue_samples()
        if samples.shape[0] == 0:
            raise ValueError(
                "no queue samples recorded; pass sample_interval to the "
                "simulation"
            )
        return samples.mean(axis=0)

    def overall_mean_response_time(self) -> float:
        """Job-averaged mean response time across all users."""
        total = self.user_job_counts.sum()
        if total == 0:
            raise ValueError("no jobs counted; extend the horizon")
        return float(
            (self.user_mean_response_times * self.user_job_counts).sum() / total
        )


class LoadBalancingSimulation:
    """One configured simulation run.

    Parameters
    ----------
    system:
        The distributed system to simulate.
    profile:
        A (feasible) strategy profile — the paper's static setting.  Jobs
        are routed per the profile's fractions, independently per job.
        Mutually exclusive with ``policy``.
    policy:
        A :class:`~repro.simengine.policies.DispatchPolicy` deciding each
        job's computer from live system state (dynamic dispatch, the
        paper's future-work comparison substrate).
    horizon:
        Total simulated seconds.
    warmup:
        Initial seconds excluded from statistics (transient removal); the
        paper runs "several thousands of seconds" and reports stationary
        averages.
    seed:
        Root seed for all streams (see :class:`SimulationStreams`).
    service_distributions:
        Optional per-computer service-time distributions (see
        :mod:`repro.simengine.service`); defaults to exponential at each
        computer's rate — the paper's M/M/1 model.
    outages:
        Optional :class:`~repro.simengine.outages.ServerOutage` windows
        during which a computer crashes (the interrupted job restarts
        from scratch on resume; arrivals queue, nothing is dropped).
        Windows for the same computer must not overlap.
    """

    def __init__(
        self,
        system: DistributedSystem,
        profile: StrategyProfile | None = None,
        *,
        policy: DispatchPolicy | None = None,
        horizon: float,
        warmup: float = 0.0,
        seed: int | np.random.SeedSequence = 0,
        service_distributions=None,
        sample_interval: float | None = None,
        arrival_processes=None,
        outages: tuple[ServerOutage, ...] | list[ServerOutage] | None = None,
    ):
        if (profile is None) == (policy is None):
            raise ValueError("provide exactly one of profile or policy")
        if sample_interval is not None and sample_interval <= 0.0:
            raise ValueError("sample interval must be positive")
        if arrival_processes is not None and len(
            arrival_processes
        ) != system.n_users:
            raise ValueError(
                "arrival_processes must have one entry per user"
            )
        if profile is not None:
            profile.validate(system)
            policy = StaticPolicy(profile.fractions)
        if horizon <= 0.0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= warmup < horizon:
            raise ValueError("warmup must lie in [0, horizon)")
        if service_distributions is not None and len(
            service_distributions
        ) != system.n_computers:
            raise ValueError(
                "service_distributions must have one entry per computer"
            )
        self.outages = tuple(outages) if outages is not None else ()
        per_computer: dict[int, list[ServerOutage]] = {}
        for outage in self.outages:
            if not 0 <= outage.computer < system.n_computers:
                raise ValueError(
                    f"outage computer index {outage.computer} out of range"
                )
            per_computer.setdefault(outage.computer, []).append(outage)
        for computer, windows in per_computer.items():
            windows.sort(key=lambda o: o.start)
            for earlier, later in zip(windows, windows[1:]):
                if later.start < earlier.end:
                    raise ValueError(
                        f"overlapping outage windows for computer {computer}"
                    )
        self.system = system
        self.profile = profile
        self.policy = policy
        self.horizon = float(horizon)
        self.warmup = float(warmup)
        self.sample_interval = sample_interval
        streams = SimulationStreams.from_seed(
            seed, system.n_users, system.n_computers
        )
        self._computers = [
            Computer(
                i,
                float(rate),
                streams.services[i],
                service_distribution=(
                    service_distributions[i]
                    if service_distributions is not None
                    else None
                ),
            )
            for i, rate in enumerate(system.service_rates)
        ]
        self._sources = [
            UserSource(
                j,
                float(system.arrival_rates[j]),
                None,
                streams.arrivals[j],
                streams.routing[j],
                arrival_process=(
                    arrival_processes[j]
                    if arrival_processes is not None
                    else None
                ),
            )
            for j in range(system.n_users)
        ]

    def run(self, *, tracer: Tracer | None = None) -> SimulationResult:
        """Execute the event loop and return the measured statistics.

        ``tracer`` (default: the ambient tracer) receives one ``sim.run``
        summary event, one ``sim.outage`` event per configured window,
        and arrival/completion/warm-up-discard counters — all in
        simulated time, never wall-clock (the repro-lint R005 contract).
        """
        tracer = tracer if tracer is not None else current_tracer()
        queue = EventQueue()
        n_users = self.system.n_users
        n_computers = self.system.n_computers

        response_sums = np.zeros(n_users)
        job_counts = np.zeros(n_users, dtype=np.int64)
        computer_counts = np.zeros(n_computers, dtype=np.int64)
        busy_time = np.zeros(n_computers)
        warmup_discards = 0

        next_job_id = 0
        queue_samples: list[list[int]] = []
        for source in self._sources:
            queue.schedule(source.next_interarrival(), EventKind.JOB_ARRIVAL, source)
        if self.sample_interval is not None:
            queue.schedule(
                self.warmup + self.sample_interval, EventKind.STATE_SAMPLE
            )
        for outage in self.outages:
            if outage.start < self.horizon:
                queue.schedule(
                    outage.start, EventKind.SERVER_DOWN, outage.computer
                )
                if np.isfinite(outage.end) and outage.end < self.horizon:
                    queue.schedule(
                        outage.end, EventKind.SERVER_UP, outage.computer
                    )
        queue.schedule(self.horizon, EventKind.END_OF_SIMULATION)

        while queue:
            event = queue.pop()
            now = event.time
            if event.kind is EventKind.END_OF_SIMULATION:
                break
            if event.kind is EventKind.STATE_SAMPLE:
                queue_samples.append(
                    [computer.run_queue_length for computer in self._computers]
                )
                queue.schedule_after(
                    self.sample_interval, EventKind.STATE_SAMPLE
                )
            elif event.kind is EventKind.JOB_ARRIVAL:
                source: UserSource = event.payload
                computer_index = self.policy.choose(
                    source.index, self._computers, source.routing_rng
                )
                source.generated += 1
                job = Job(
                    job_id=next_job_id,
                    user=source.index,
                    computer=computer_index,
                    arrival_time=now,
                )
                next_job_id += 1
                computer = self._computers[computer_index]
                departure = computer.accept(job, now)
                if departure is not None:
                    queue.schedule(
                        departure,
                        EventKind.JOB_DEPARTURE,
                        (computer_index, computer.epoch),
                    )
                queue.schedule_after(
                    source.next_interarrival(), EventKind.JOB_ARRIVAL, source
                )
            elif event.kind is EventKind.JOB_DEPARTURE:
                computer_index, epoch = event.payload
                computer = self._computers[computer_index]
                if epoch != computer.epoch:
                    continue  # departure of a job the crash interrupted
                finished, next_departure = computer.complete_current(now)
                if next_departure is not None:
                    queue.schedule(
                        next_departure,
                        EventKind.JOB_DEPARTURE,
                        (computer_index, computer.epoch),
                    )
                if finished.arrival_time >= self.warmup:
                    response_sums[finished.user] += finished.response_time
                    job_counts[finished.user] += 1
                    computer_counts[computer_index] += 1
                    busy_time[computer_index] += now - finished.start_time
                else:
                    warmup_discards += 1
            elif event.kind is EventKind.SERVER_DOWN:
                self._computers[event.payload].suspend(now)
            elif event.kind is EventKind.SERVER_UP:
                computer = self._computers[event.payload]
                departure = computer.resume(now)
                if departure is not None:
                    queue.schedule(
                        departure,
                        EventKind.JOB_DEPARTURE,
                        (event.payload, computer.epoch),
                    )

        means = np.divide(
            response_sums,
            job_counts,
            out=np.full(n_users, np.nan),
            where=job_counts > 0,
        )
        window = self.horizon - self.warmup
        downtime = np.zeros(n_computers)
        for outage in self.outages:
            downtime[outage.computer] += outage.overlap(
                self.warmup, self.horizon
            )
        if tracer.enabled:
            arrivals = int(sum(s.generated for s in self._sources))
            completions = int(job_counts.sum())
            for outage in self.outages:
                tracer.emit(
                    "sim.outage",
                    computer=outage.computer,
                    start=float(outage.start),
                    end=float(outage.end),
                    counted_downtime=float(
                        outage.overlap(self.warmup, self.horizon)
                    ),
                )
            tracer.emit(
                "sim.run",
                horizon=self.horizon,
                warmup=self.warmup,
                arrivals=arrivals,
                completions=completions,
                warmup_discards=warmup_discards,
                queue_samples=len(queue_samples),
            )
            tracer.count("sim.runs")
            tracer.count("sim.arrivals", arrivals)
            tracer.count("sim.completions", completions)
            tracer.count("sim.warmup_discards", warmup_discards)
        return SimulationResult(
            user_mean_response_times=means,
            user_job_counts=job_counts,
            computer_utilizations=busy_time / window,
            computer_job_counts=computer_counts,
            horizon=self.horizon,
            warmup=self.warmup,
            queue_length_samples=np.asarray(queue_samples, dtype=np.int64).reshape(
                len(queue_samples), n_computers
            ),
            computer_downtime=downtime,
        )


def simulate_profile(
    system: DistributedSystem,
    profile: StrategyProfile,
    *,
    horizon: float,
    warmup: float = 0.0,
    seed: int | np.random.SeedSequence = 0,
    service_distributions=None,
    arrival_processes=None,
    sample_interval: float | None = None,
    outages=None,
) -> SimulationResult:
    """Convenience wrapper: simulate a static strategy profile."""
    return LoadBalancingSimulation(
        system,
        profile,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
        service_distributions=service_distributions,
        arrival_processes=arrival_processes,
        sample_interval=sample_interval,
        outages=outages,
    ).run()


def simulate_policy(
    system: DistributedSystem,
    policy: DispatchPolicy,
    *,
    horizon: float,
    warmup: float = 0.0,
    seed: int | np.random.SeedSequence = 0,
    service_distributions=None,
    arrival_processes=None,
    sample_interval: float | None = None,
    outages=None,
) -> SimulationResult:
    """Convenience wrapper: simulate a dynamic dispatch policy."""
    return LoadBalancingSimulation(
        system,
        policy=policy,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
        service_distributions=service_distributions,
        arrival_processes=arrival_processes,
        sample_interval=sample_interval,
        outages=outages,
    ).run()
