"""Run-queue estimation and the measurement-driven best-reply loop.

The paper says the inputs of the OPTIMAL algorithm come from reality:
"the available processing rate can be determined by statistical
estimation of the run queue length of each processor."  This module
closes that loop with the simulation engine standing in for the real
system:

1. :func:`estimate_loads_from_queue_lengths` inverts the M/M/1 occupancy
   law ``E[N] = rho / (1 - rho)`` to turn the time-averaged run-queue
   length of each computer into an estimate of its arrival rate
   ``lambda_hat_i = mu_i * N_bar_i / (1 + N_bar_i)``.
2. :func:`run_measured_best_reply` alternates *measure* and *react*: the
   current strategy profile runs on the event-driven simulator for a
   measurement window (sampling queue lengths), each user converts the
   estimates into available rates and best-responds, and the cycle
   repeats — the NASH algorithm exactly as it would be deployed, with no
   oracle access to the true rates.

The closed loop converges to a neighbourhood of the analytic Nash
equilibrium whose radius shrinks as the measurement window grows — the
empirical companion to the ABL4 noise ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.best_response import optimal_fractions
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.simengine.simulator import LoadBalancingSimulation

__all__ = [
    "estimate_loads_from_queue_lengths",
    "MeasuredBestReplyResult",
    "run_measured_best_reply",
]


def estimate_loads_from_queue_lengths(
    mean_queue_lengths, service_rates
) -> np.ndarray:
    """Per-computer arrival-rate estimates from mean run-queue lengths.

    Inverts the stationary M/M/1 occupancy ``E[N] = rho/(1 - rho)``:
    ``rho_hat = N_bar / (1 + N_bar)``, ``lambda_hat = mu * rho_hat``.
    Always maps into the stable region (``lambda_hat < mu``), regardless
    of how noisy the sample is.
    """
    n_bar = np.asarray(mean_queue_lengths, dtype=float)
    mu = np.asarray(service_rates, dtype=float)
    if n_bar.shape != mu.shape:
        raise ValueError("queue lengths and service rates must align")
    if np.any(n_bar < 0.0):
        raise ValueError("queue lengths must be nonnegative")
    return mu * n_bar / (1.0 + n_bar)


@dataclass(frozen=True)
class MeasuredBestReplyResult:
    """Outcome of the measurement-driven best-reply loop.

    Attributes
    ----------
    profile:
        Strategy profile after the last measure/react cycle.
    regret_history:
        Max unilateral improvement (vs. *true* rates) after each cycle.
    load_estimate_errors:
        Per-cycle relative L1 error of the estimated aggregate loads vs
        the true loads the profile induces.
    """

    profile: StrategyProfile
    regret_history: np.ndarray
    load_estimate_errors: np.ndarray

    @property
    def final_regret(self) -> float:
        return float(self.regret_history[-1])


def run_measured_best_reply(
    system: DistributedSystem,
    *,
    cycles: int = 10,
    measurement_window: float = 200.0,
    sample_interval: float = 0.5,
    seed: int = 0,
    init: str | StrategyProfile = "proportional",
) -> MeasuredBestReplyResult:
    """Alternate simulated measurement and best-reply reaction.

    Per cycle: simulate the current profile for ``measurement_window``
    seconds (sampling run queues every ``sample_interval``), estimate each
    computer's load, and let every user best-respond to *measured*
    available rates (its own published flow is known to itself exactly).

    Parameters mirror the deployment the paper sketches; the event engine
    plays the part of the physical system.
    """
    if cycles < 1:
        raise ValueError("at least one cycle is required")
    from repro.core.nash import initial_profile

    profile = initial_profile(system, init)  # type: ignore[arg-type]
    if not profile.is_feasible(system):
        raise ValueError("measured loop needs a feasible starting profile")
    fractions = profile.fractions.copy()
    phi = system.arrival_rates
    mu = system.service_rates
    seeds = np.random.SeedSequence(seed).spawn(cycles)

    regrets: list[float] = []
    estimate_errors: list[float] = []
    for cycle in range(cycles):
        current = StrategyProfile(fractions.copy())
        measurement = LoadBalancingSimulation(
            system,
            current,
            horizon=measurement_window,
            warmup=0.1 * measurement_window,
            seed=seeds[cycle],
            sample_interval=sample_interval,
        ).run()
        estimated_loads = estimate_loads_from_queue_lengths(
            measurement.mean_queue_lengths(), mu
        )
        true_loads = system.loads(fractions)
        estimate_errors.append(
            float(
                np.abs(estimated_loads - true_loads).sum()
                / max(true_loads.sum(), 1e-300)
            )
        )

        # React, Gauss-Seidel style: every user sees the measured *other*
        # load (estimated total minus its own known flow), and after each
        # update the running estimate is patched by that user's own flow
        # change — users know their own published flows exactly, so this
        # keeps the shared estimate fresh within the cycle.  Reacting to
        # one stale snapshot simultaneously would reproduce the Jacobi
        # herding oscillation of ablation ABL3.
        running_estimate = estimated_loads.copy()
        for j in range(system.n_users):
            own = fractions[j] * phi[j]
            others = np.clip(running_estimate - own, 0.0, None)
            available = np.maximum(mu - others, 0.0)
            if available[available > 0.0].sum() <= phi[j]:
                # Degenerate estimate; fall back to the truth this turn.
                available = system.available_rates(fractions, j)
            reply = optimal_fractions(available, float(phi[j]))
            candidate = fractions.copy()
            candidate[j] = reply.fractions
            if np.all(phi @ candidate < mu):
                new_own = reply.fractions * phi[j]
                running_estimate += new_own - own
                np.clip(running_estimate, 0.0, None, out=running_estimate)
                fractions = candidate
        cert = best_response_regrets(system, StrategyProfile(fractions.copy()))
        regrets.append(cert.epsilon)

    return MeasuredBestReplyResult(
        profile=StrategyProfile(fractions),
        regret_history=np.asarray(regrets, dtype=float),
        load_estimate_errors=np.asarray(estimate_errors, dtype=float),
    )
