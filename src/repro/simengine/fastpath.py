"""Vectorized fast-path simulator (Lindley recursion).

The event-driven engine in :mod:`repro.simengine.simulator` is general but
interprets one Python-level event at a time.  For the specific workload of
this paper — probabilistic (Bernoulli) routing onto independent FCFS M/M/1
queues — each computer's queue evolves independently of the others, and
its per-job waiting times obey the Lindley recursion

    W_1 = 0,    W_{k+1} = max(0, W_k + S_k - A_{k+1})

which has the classical prefix-minimum closed form

    C_k = sum_{i<=k} (S_{i-1} - A_i)   (with C_1 = 0)
    W_k = C_k - min_{j<=k} C_j

computable with two ``cumsum``/``minimum.accumulate`` passes — no Python
loop over jobs.  This is the numpy-vectorization idiom of the HPC guides
applied to the whole simulation: the fast path reproduces the *same
stationary law* as the event engine (both are exact M/M/1 samplers) and is
two to three orders of magnitude faster, enabling the paper's multi-million
job runs in seconds.  Tests cross-validate the two engines against each
other and against the analytic formulas.

Two batching layers on top (docs/PERFORMANCE.md):

* :func:`mm1_lindley_waits_batch` runs the recursion over a 2-D
  ``(batch, jobs)`` matrix with per-row job counts (ragged rows are
  zero-padded), one ``cumsum``/``minimum.accumulate`` pass for the whole
  batch;
* :func:`simulate_profile_fast_batch` simulates *all replications × all
  computers* of a replication study through that kernel in a single
  pass.  Per-row randomness still comes from each replication's own
  ``SeedSequence`` tree, consumed in exactly the order the one-run path
  consumes it, so a batched study is **bit-identical** to running
  :func:`simulate_profile_fast` once per seed — the property
  ``replicate(..., simulate_batch=...)`` and its parity tests rely on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.simengine.simulator import SimulationResult

__all__ = [
    "predraw_uniform_pool",
    "simulate_profile_fast",
    "simulate_profile_fast_batch",
    "mm1_lindley_waits",
    "mm1_lindley_waits_batch",
]


def mm1_lindley_waits(
    interarrivals: np.ndarray, services: np.ndarray
) -> np.ndarray:
    """Per-job FCFS waiting times from interarrival and service samples.

    ``interarrivals[k]`` is the gap between job ``k-1`` and job ``k``
    (``interarrivals[0]`` is the first job's arrival time and does not
    influence its zero wait); ``services[k]`` is job ``k``'s service
    requirement.  Works for any distributions (the G/G/1 Lindley
    recursion), vectorized via the prefix-minimum identity.
    """
    interarrivals = np.asarray(interarrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if interarrivals.shape != services.shape or interarrivals.ndim != 1:
        raise ValueError("interarrivals and services must be equal-length vectors")
    n = interarrivals.size
    if n == 0:
        return np.zeros(0)
    increments = np.empty(n)
    increments[0] = 0.0
    np.subtract(services[:-1], interarrivals[1:], out=increments[1:])
    path = np.cumsum(increments)
    running_min = np.minimum.accumulate(np.minimum(path, 0.0))
    return path - running_min


def mm1_lindley_waits_batch(
    interarrivals: np.ndarray,
    services: np.ndarray,
    job_counts: np.ndarray | None = None,
) -> np.ndarray:
    """Batched Lindley recursion over a ``(batch, jobs)`` sample matrix.

    Row ``b`` holds the interarrival/service samples of one independent
    queue; ``job_counts[b]`` (default: the full row width) marks how many
    leading entries of the row are real jobs — entries at or beyond the
    count are padding and are ignored on input and zero on output.  Each
    row's leading ``job_counts[b]`` waits equal
    ``mm1_lindley_waits(interarrivals[b, :c], services[b, :c])``
    bit-for-bit: ``cumsum``/``minimum.accumulate`` apply the same
    sequential reduction per row regardless of the batch shape.
    """
    interarrivals = np.asarray(interarrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if interarrivals.shape != services.shape or interarrivals.ndim != 2:
        raise ValueError(
            "interarrivals and services must be equal-shape (batch, jobs) "
            "matrices"
        )
    n_rows, width = interarrivals.shape
    if job_counts is None:
        counts = np.full(n_rows, width, dtype=np.int64)
    else:
        counts = np.asarray(job_counts)
        if counts.shape != (n_rows,):
            raise ValueError("job_counts must have one entry per batch row")
        if not np.issubdtype(counts.dtype, np.integer):
            raise ValueError("job_counts must be integers")
        if np.any(counts < 0) or np.any(counts > width):
            raise ValueError("job_counts must lie in [0, jobs]")
    if width == 0:
        return np.zeros((n_rows, 0))
    padding = np.arange(width)[None, :] >= counts[:, None]
    return _lindley_padded(interarrivals, services, padding)


def _lindley_padded(
    interarrivals: np.ndarray, services: np.ndarray, padding: np.ndarray
) -> np.ndarray:
    """Validation-free core of :func:`mm1_lindley_waits_batch`."""
    n_rows, width = interarrivals.shape
    increments = np.empty((n_rows, width))
    increments[:, 0] = 0.0
    np.subtract(services[:, :-1], interarrivals[:, 1:], out=increments[:, 1:])
    increments[padding] = 0.0
    path = np.cumsum(increments, axis=1)
    running_min = np.minimum.accumulate(np.minimum(path, 0.0), axis=1)
    waits = path - running_min
    waits[padding] = 0.0
    return waits


def _run_stream(
    seed: int | np.random.SeedSequence,
) -> np.random.Generator:
    """The single generator one simulation run consumes.

    Each run draws its randomness as one upfront uniform block whose
    layout — per computer, in ascending index order: gaps, services
    (M/M/1 only), attribution uniforms — is fully determined by (seed,
    profile, horizon, distributions).  General service distributions and
    the rare gap-extension path draw directly from the stream after the
    block, still in a deterministic order.  A run's samples therefore
    never depend on which other runs share the batch, and seeding costs
    one bit-generator construction per run instead of one per
    (run, computer).  Constructing from the same ``SeedSequence`` twice
    yields the same stream (``generate_state`` is pure), keeping
    simulation idempotent in the seed object.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return np.random.Generator(np.random.PCG64(root))


def _extend_gaps(
    rng: np.random.Generator, gaps: np.ndarray, lam: float, horizon: float
) -> np.ndarray:  # pragma: no cover - 6-sigma margin
    """Top up one stream's gap draws when the initial batch fell short."""
    batch = gaps.size
    total = float(gaps.sum())
    while total < horizon:
        extra = rng.exponential(1.0 / lam, size=max(batch // 4, 16))
        gaps = np.concatenate([gaps, extra])
        total += float(extra.sum())
    return gaps


class _LazyStreams:
    """Per-run generators, constructed (and positioned) on first use.

    When the uniform pool was pre-drawn elsewhere
    (:func:`predraw_uniform_pool`), a run's stream must resume exactly
    where the pool draw left it: constructing the generator and drawing
    (and discarding) the run's ``totals[r]`` pool uniforms reproduces
    that state bit for bit (PCG64 advances deterministically).  Laziness
    matters because only the rare paths — gap extension past the 6-sigma
    margin, general service distributions — touch the stream at all, so
    the common case pays zero redraws.
    """

    def __init__(
        self,
        seeds: Sequence[int | np.random.SeedSequence],
        totals: np.ndarray,
        *,
        skip_pool: bool,
    ):
        self._seeds = list(seeds)
        self._totals = totals
        self._skip_pool = skip_pool
        self._cache: list[np.random.Generator | None] = [None] * len(
            self._seeds
        )

    def __getitem__(self, r: int) -> np.random.Generator:
        rng = self._cache[r]
        if rng is None:
            rng = _run_stream(self._seeds[r])
            if self._skip_pool:
                rng.random(int(self._totals[r]))
            self._cache[r] = rng
        return rng


def _pool_layout(
    lam_matrix: np.ndarray, horizon: float, stages: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slot geometry of the pre-drawn uniform pool.

    Returns ``(size_matrix, offsets, totals)``: per-(run, computer) slot
    width (6-sigma horizon coverage), each slot's start offset within its
    run's row, and each run's total draw count.  Purely a function of
    the runs' own loads, so the layout of one run never depends on which
    other runs share the batch.
    """
    expected = lam_matrix * horizon
    size_matrix = np.where(
        lam_matrix > 0.0,
        (expected + 6.0 * np.sqrt(expected) + 16.0).astype(np.int64),
        0,
    )
    slots = stages * size_matrix
    offsets = np.zeros(lam_matrix.shape, dtype=np.int64)
    np.cumsum(slots[:, :-1], axis=1, out=offsets[:, 1:])
    totals = slots.sum(axis=1)
    return size_matrix, offsets, totals


def _profile_loads(
    system: DistributedSystem,
    profiles: StrategyProfile | Sequence[StrategyProfile],
    n_runs: int,
) -> tuple[list[int], list[np.ndarray], list[StrategyProfile]]:
    """Validate profiles and compute per-distinct-profile loads.

    Returns ``(row_key, loads_rows, distinct_profiles)`` where
    ``loads_rows[row_key[r]]`` is run ``r``'s per-computer load vector
    and ``distinct_profiles`` aligns with ``loads_rows``.
    """
    if isinstance(profiles, StrategyProfile):
        row_profiles = [profiles] * n_runs
    else:
        row_profiles = list(profiles)
        if len(row_profiles) != n_runs:
            raise ValueError("profiles must be one per seed (or a single one)")
    distinct: dict[int, int] = {}
    loads_rows: list[np.ndarray] = []
    distinct_profiles: list[StrategyProfile] = []
    for profile in row_profiles:
        if id(profile) not in distinct:
            profile.validate(system)
            distinct[id(profile)] = len(loads_rows)
            loads_rows.append(system.loads(profile.fractions))
            distinct_profiles.append(profile)
    row_key = [distinct[id(profile)] for profile in row_profiles]
    return row_key, loads_rows, distinct_profiles


def predraw_uniform_pool(
    system: DistributedSystem,
    profiles: StrategyProfile | Sequence[StrategyProfile],
    *,
    horizon: float,
    seeds: Sequence[int | np.random.SeedSequence],
    service_distributions=None,
) -> np.ndarray:
    """The exact ``(runs, draws)`` uniform block a batched run consumes.

    Row ``r`` holds the leading ``totals[r]`` uniforms of seed ``r``'s
    stream in the layout :func:`_pool_layout` describes (zero-padded to
    the widest row).  Passing the result back to
    :func:`simulate_profile_fast_batch` via ``uniform_pool=`` — whole,
    or as any contiguous row slice aligned with a seed slice — skips the
    draw and yields bit-identical results, which is what lets a parallel
    replication study pre-draw once and share the block zero-copy across
    workers (:mod:`repro.experiments.replication`).
    """
    if horizon <= 0.0:
        raise ValueError("horizon must be positive")
    seeds = list(seeds)
    if not seeds:
        raise ValueError("seeds must be nonempty")
    row_key, loads_rows, _ = _profile_loads(system, profiles, len(seeds))
    lam_matrix = np.stack([loads_rows[key] for key in row_key])
    stages = 2 if service_distributions is not None else 3
    _, _, totals = _pool_layout(lam_matrix, horizon, stages)
    pool = np.zeros((len(seeds), int(totals.max())))
    for r, seed in enumerate(seeds):
        pool[r, : totals[r]] = _run_stream(seed).random(int(totals[r]))
    return pool


def simulate_profile_fast_batch(
    system: DistributedSystem,
    profiles: StrategyProfile | Sequence[StrategyProfile],
    *,
    horizon: float,
    warmup: float = 0.0,
    seeds: Sequence[int | np.random.SeedSequence],
    service_distributions=None,
    uniform_pool: np.ndarray | None = None,
) -> list[SimulationResult]:
    """Simulate many independent runs in one set of vectorized passes.

    One run per entry of ``seeds`` — the typical caller passes one
    :class:`~numpy.random.SeedSequence` per replication, straight from
    :func:`repro.simengine.rng.replication_seeds`.  ``profiles`` is
    either a single profile shared by every run (the replication-study
    case) or one profile per seed (e.g. comparing two allocations under
    common random numbers).  All runs share ``horizon``/``warmup``/
    ``service_distributions``.

    Each run consumes randomness from its own :func:`_run_stream`
    generator in the same call sequence as :func:`simulate_profile_fast`
    uses for that seed, while the Lindley recursion, job accounting and
    window clipping execute batched over a ``(runs, jobs)`` matrix per
    computer.  The returned results are therefore **bit-identical** to
    the per-seed loop, only faster: the per-run Python and small-array
    numpy overhead is paid once per computer instead of once per run.

    Utilization accounting counts the service time actually *rendered*
    inside the ``[warmup, horizon]`` measurement window, clipping jobs
    that straddle either edge — the estimator that stays unbiased at
    high load (see the cross-engine parity tests).

    ``uniform_pool`` supplies the pre-drawn uniform block from
    :func:`predraw_uniform_pool` (one row per seed, in seed order) so
    the draw — by far the dominant per-run cost at small horizons — is
    skipped here; results are bit-identical because run streams resume
    exactly past their pool block (see :class:`_LazyStreams`).  This is
    how the parallel replication layer shares one coordinator-drawn
    block across workers without re-pickling it per task.
    """
    if horizon <= 0.0:
        raise ValueError("horizon must be positive")
    if not 0.0 <= warmup < horizon:
        raise ValueError("warmup must lie in [0, horizon)")
    if service_distributions is not None and len(
        service_distributions
    ) != system.n_computers:
        raise ValueError(
            "service_distributions must have one entry per computer"
        )
    seeds = list(seeds)
    if not seeds:
        raise ValueError("seeds must be nonempty")
    n_runs = len(seeds)
    row_key, loads_rows, distinct_profiles = _profile_loads(
        system, profiles, n_runs
    )
    cdf_rows = []
    for loads, profile in zip(loads_rows, distinct_profiles):
        # Per-computer user-attribution CDF: cumulative mixing
        # probabilities ``s_ji phi_j / lambda_i`` down the user axis
        # (columns of idle computers are unused and left at zero).
        contributions = profile.fractions * system.arrival_rates[:, None]
        probs = np.divide(
            contributions,
            loads[None, :],
            out=np.zeros_like(contributions),
            where=loads[None, :] > 0.0,
        )
        cdf = np.cumsum(probs, axis=0)
        cdf[-1, :] = 1.0
        # Transposed + contiguous: row i feeds searchsorted directly.
        cdf_rows.append(np.ascontiguousarray(cdf.T))

    n_users, n_computers = system.n_users, system.n_computers

    # Pre-draw each run's entire uniform demand in ONE generator call
    # (or accept the identical block pre-drawn by the coordinator).
    # Layout per run: for each computer (ascending index) a slot of
    # ``stages * size`` uniforms — gap, service (M/M/1 only) and
    # attribution draws, each ``size`` wide, where ``size`` covers the
    # horizon with a 6-sigma margin.  The slot geometry depends only on
    # the run's own profile, so a run's samples never depend on which
    # other runs share the batch (``replicate_until`` relies on this
    # when it grows batches chunk by chunk).
    lam_matrix = np.stack([loads_rows[key] for key in row_key])
    stages = 2 if service_distributions is not None else 3
    size_matrix, offsets, totals = _pool_layout(lam_matrix, horizon, stages)
    if uniform_pool is None:
        streams = _LazyStreams(seeds, totals, skip_pool=False)
        pool = np.zeros((n_runs, int(totals.max())))
        for r in range(n_runs):
            pool[r, : totals[r]] = streams[r].random(int(totals[r]))
    else:
        # Streams are reconstructed lazily *past* the pool block, so the
        # rare direct-draw paths (gap extension, general services) stay
        # bit-identical to the self-drawn case.
        streams = _LazyStreams(seeds, totals, skip_pool=True)
        pool = np.asarray(uniform_pool, dtype=float)
        if pool.ndim != 2 or pool.shape[0] != n_runs:
            raise ValueError(
                f"uniform_pool must have one row per seed "
                f"({n_runs}), got shape {pool.shape}"
            )
        if pool.shape[1] < int(totals.max()):
            raise ValueError(
                f"uniform_pool rows too narrow: need {int(totals.max())} "
                f"draws, got {pool.shape[1]}"
            )
    flat_pool = pool.ravel()
    pool_width = pool.shape[1]

    response_sums = np.zeros(n_runs * n_users)
    job_counts = np.zeros(n_runs * n_users, dtype=np.int64)
    computer_counts = np.zeros((n_runs, n_computers), dtype=np.int64)
    busy_time = np.zeros((n_runs, n_computers))

    column = None  # lazily sized [0, 1, ..., width) row used for masking
    for i in range(n_computers):
        mu = float(system.service_rates[i])
        runs_vec = np.flatnonzero(lam_matrix[:, i] > 0.0)
        if runs_vec.size == 0:
            continue
        lam_vec = lam_matrix[runs_vec, i]
        slot_sizes = size_matrix[runs_vec, i]
        sizes = slot_sizes.copy()
        width = int(sizes.max())
        if column is None or column.size < width:
            column = np.arange(width)
        col = column[:width]

        # Gather every run's gap uniforms out of its slot and invert the
        # exponential CDF for the whole batch in one vectorized pass.
        base = runs_vec * pool_width + offsets[runs_vec, i]
        drawn = col[None, :] < sizes[:, None]
        gaps_mat = -np.log1p(
            -flat_pool[np.where(drawn, base[:, None] + col[None, :], 0)]
        )
        gaps_mat /= lam_vec[:, None]
        gaps_mat[~drawn] = 0.0

        extended: set[int] = set()
        short = np.flatnonzero(
            gaps_mat.sum(axis=1) < horizon
        )  # pragma: no cover - 6-sigma margin
        for b in short:  # pragma: no cover - 6-sigma margin
            r = int(runs_vec[b])
            gaps = _extend_gaps(
                streams[r],
                gaps_mat[b, : sizes[b]].copy(),
                float(lam_vec[b]),
                horizon,
            )
            sizes[b] = gaps.size
            extended.add(b)
            if gaps.size > width:
                width = gaps.size
                if column.size < width:
                    column = np.arange(width)
                col = column[:width]
                grown = np.zeros((runs_vec.size, width))
                grown[:, : gaps_mat.shape[1]] = gaps_mat
                gaps_mat = grown
            gaps_mat[b, : gaps.size] = gaps
        if short.size:  # pragma: no cover - 6-sigma margin
            drawn = col[None, :] < sizes[:, None]
        arrivals_mat = np.cumsum(gaps_mat, axis=1)
        counts = ((arrivals_mat <= horizon) & drawn).sum(axis=1)

        # Service requirements: same gather-and-invert for M/M/1; general
        # distributions keep one draw per run (their samplers need the
        # generator itself).
        if service_distributions is None:
            in_slot = col[None, :] < slot_sizes[:, None]
            services_mat = -np.log1p(
                -flat_pool[
                    np.where(
                        in_slot,
                        (base + slot_sizes)[:, None] + col[None, :],
                        0,
                    )
                ]
            )
            services_mat /= mu
            for b in extended:  # pragma: no cover - 6-sigma margin
                k = int(counts[b])
                services_mat[b, :k] = streams[int(runs_vec[b])].exponential(
                    1.0 / mu, size=k
                )
        else:
            services_mat = np.zeros((runs_vec.size, width))
            for b, r in enumerate(runs_vec):
                k = int(counts[b])
                if k:
                    services_mat[b, :k] = np.asarray(
                        service_distributions[i].sample(
                            streams[int(r)], size=k
                        ),
                        dtype=float,
                    )

        # One Lindley pass for the whole batch (inputs are already
        # validated by construction, so skip straight to the core).
        padding = col[None, :] >= counts[:, None]
        waits = _lindley_padded(gaps_mat, services_mat, padding)
        responses = waits + services_mat
        completions = arrivals_mat + responses
        starts = arrivals_mat + waits

        counted = (arrivals_mat >= warmup) & (completions <= horizon)
        counted[padding] = False
        # Service rendered inside the measurement window: clip each job's
        # busy interval [start, completion] at the window edges so partial
        # jobs contribute their in-window share (unbiased at high rho,
        # unlike counting only fully-contained jobs).
        rendered = np.minimum(completions, horizon) - np.maximum(starts, warmup)
        np.maximum(rendered, 0.0, out=rendered)
        rendered[padding] = 0.0

        counted_per_row = counted.sum(axis=1)
        for b, r in enumerate(runs_vec):
            # Prefix-slice sum: the same pairwise reduction a lone run
            # would apply, independent of the batch composition.
            busy_time[r, i] = float(rendered[b, : counts[b]].sum())
        computer_counts[runs_vec, i] = counted_per_row

        # Attribute counted jobs to users: categorical draw over each
        # run's per-user contribution CDF, one slot uniform per job.
        # ``counted[b]`` selects row b's jobs in job order, so flattening
        # the boolean masks concatenates the rows exactly as the one-run
        # path would, row by row — responses and uniforms stay aligned.
        unif_valid = col[None, :] < counted_per_row[:, None]
        uoff = base + (stages - 1) * slot_sizes
        # The minimum keeps extended rows (whose jobs can outgrow their
        # slot) in bounds; their gathered values are overwritten below.
        unif_full = flat_pool[
            np.minimum(
                np.where(unif_valid, uoff[:, None] + col[None, :], 0),
                flat_pool.size - 1,
            )
        ]
        for b in extended:  # pragma: no cover - 6-sigma margin
            k = int(counted_per_row[b])
            unif_full[b, :k] = streams[int(runs_vec[b])].random(k)
        uniforms = unif_full[unif_valid]
        if uniforms.size == 0:
            continue
        flat_responses = responses[counted]
        job_runs = np.repeat(runs_vec, counted_per_row)
        # One inverse-CDF lookup per distinct profile (not per run),
        # written back in row order so responses and indices stay aligned.
        keys = sorted({row_key[int(r)] for r in runs_vec})
        if len(keys) == 1:
            users = np.searchsorted(
                cdf_rows[keys[0]][i], uniforms, side="right"
            )
        else:
            users = np.empty(uniforms.size, dtype=np.int64)
            job_keys = np.asarray(row_key, dtype=np.int64)[job_runs]
            for key in keys:
                subset = job_keys == key
                users[subset] = np.searchsorted(
                    cdf_rows[key][i], uniforms[subset], side="right"
                )
        indices = users + job_runs * n_users
        np.add.at(response_sums, indices, flat_responses)
        np.add.at(job_counts, indices, 1)

    window = horizon - warmup
    response_matrix = response_sums.reshape(n_runs, n_users)
    count_matrix = job_counts.reshape(n_runs, n_users)
    mean_matrix = np.divide(
        response_matrix,
        count_matrix,
        out=np.full((n_runs, n_users), np.nan),
        where=count_matrix > 0,
    )
    utilization_matrix = busy_time / window
    return [
        SimulationResult(
            user_mean_response_times=mean_matrix[r],
            user_job_counts=count_matrix[r].copy(),
            computer_utilizations=utilization_matrix[r],
            computer_job_counts=computer_counts[r].copy(),
            horizon=horizon,
            warmup=warmup,
        )
        for r in range(n_runs)
    ]


def simulate_profile_fast(
    system: DistributedSystem,
    profile: StrategyProfile,
    *,
    horizon: float,
    warmup: float = 0.0,
    seed: int | np.random.SeedSequence = 0,
    service_distributions=None,
) -> SimulationResult:
    """Vectorized equivalent of :func:`repro.simengine.simulator.simulate_profile`.

    Exploits the independence of the computers' queues under Bernoulli
    routing: each computer's aggregate arrival process is Poisson with
    rate ``lambda_i``, simulated wholesale with numpy, and each counted
    job is attributed to a user with probability proportional to the
    user's contribution ``s_ji phi_j / lambda_i``.

    The returned statistics have the same stationary distribution as the
    event engine's (both sample exact M/M/1 dynamics) but the two are not
    sample-path identical — they consume randomness in different orders.

    ``service_distributions`` (one per computer, see
    :mod:`repro.simengine.service`) turns each queue into M/G/1 — the
    Lindley recursion is distribution-agnostic.

    This is the one-run face of :func:`simulate_profile_fast_batch`
    (a single-row batch — same code path, same randomness, same result);
    replication studies should batch their runs instead of looping.
    """
    return simulate_profile_fast_batch(
        system,
        profile,
        horizon=horizon,
        warmup=warmup,
        seeds=[seed],
        service_distributions=service_distributions,
    )[0]
