"""Vectorized fast-path simulator (Lindley recursion).

The event-driven engine in :mod:`repro.simengine.simulator` is general but
interprets one Python-level event at a time.  For the specific workload of
this paper — probabilistic (Bernoulli) routing onto independent FCFS M/M/1
queues — each computer's queue evolves independently of the others, and
its per-job waiting times obey the Lindley recursion

    W_1 = 0,    W_{k+1} = max(0, W_k + S_k - A_{k+1})

which has the classical prefix-minimum closed form

    C_k = sum_{i<=k} (S_{i-1} - A_i)   (with C_1 = 0)
    W_k = C_k - min_{j<=k} C_j

computable with two ``cumsum``/``minimum.accumulate`` passes — no Python
loop over jobs.  This is the numpy-vectorization idiom of the HPC guides
applied to the whole simulation: the fast path reproduces the *same
stationary law* as the event engine (both are exact M/M/1 samplers) and is
two to three orders of magnitude faster, enabling the paper's multi-million
job runs in seconds.  Tests cross-validate the two engines against each
other and against the analytic formulas.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.simengine.simulator import SimulationResult

__all__ = ["simulate_profile_fast", "mm1_lindley_waits"]


def mm1_lindley_waits(
    interarrivals: np.ndarray, services: np.ndarray
) -> np.ndarray:
    """Per-job FCFS waiting times from interarrival and service samples.

    ``interarrivals[k]`` is the gap between job ``k-1`` and job ``k``
    (``interarrivals[0]`` is the first job's arrival time and does not
    influence its zero wait); ``services[k]`` is job ``k``'s service
    requirement.  Works for any distributions (the G/G/1 Lindley
    recursion), vectorized via the prefix-minimum identity.
    """
    interarrivals = np.asarray(interarrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if interarrivals.shape != services.shape or interarrivals.ndim != 1:
        raise ValueError("interarrivals and services must be equal-length vectors")
    n = interarrivals.size
    if n == 0:
        return np.zeros(0)
    increments = np.empty(n)
    increments[0] = 0.0
    np.subtract(services[:-1], interarrivals[1:], out=increments[1:])
    path = np.cumsum(increments)
    running_min = np.minimum.accumulate(np.minimum(path, 0.0))
    return path - running_min


def simulate_profile_fast(
    system: DistributedSystem,
    profile: StrategyProfile,
    *,
    horizon: float,
    warmup: float = 0.0,
    seed: int | np.random.SeedSequence = 0,
    service_distributions=None,
) -> SimulationResult:
    """Vectorized equivalent of :func:`repro.simengine.simulator.simulate_profile`.

    Exploits the independence of the computers' queues under Bernoulli
    routing: each computer's aggregate arrival process is Poisson with
    rate ``lambda_i``, simulated wholesale with numpy, and each counted
    job is attributed to a user with probability proportional to the
    user's contribution ``s_ji phi_j / lambda_i``.

    The returned statistics have the same stationary distribution as the
    event engine's (both sample exact M/M/1 dynamics) but the two are not
    sample-path identical — they consume randomness in different orders.

    ``service_distributions`` (one per computer, see
    :mod:`repro.simengine.service`) turns each queue into M/G/1 — the
    Lindley recursion is distribution-agnostic.
    """
    profile.validate(system)
    if horizon <= 0.0:
        raise ValueError("horizon must be positive")
    if not 0.0 <= warmup < horizon:
        raise ValueError("warmup must lie in [0, horizon)")
    if service_distributions is not None and len(
        service_distributions
    ) != system.n_computers:
        raise ValueError(
            "service_distributions must have one entry per computer"
        )

    loads = system.loads(profile.fractions)
    n_users, n_computers = system.n_users, system.n_computers
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    streams = [np.random.Generator(np.random.PCG64(s)) for s in root.spawn(n_computers)]

    response_sums = np.zeros(n_users)
    job_counts = np.zeros(n_users, dtype=np.int64)
    computer_counts = np.zeros(n_computers, dtype=np.int64)
    busy_time = np.zeros(n_computers)

    # Per-computer mixing probabilities over users.
    contributions = profile.fractions * system.arrival_rates[:, None]  # (m, n)

    for i in range(n_computers):
        lam = loads[i]
        if lam <= 0.0:
            continue
        rng = streams[i]
        mu = float(system.service_rates[i])

        # Draw arrivals covering the horizon; extend in the (rare) case the
        # first batch falls short.
        expected = lam * horizon
        batch = int(expected + 6.0 * np.sqrt(expected) + 16.0)
        gaps = rng.exponential(1.0 / lam, size=batch)
        arrivals = np.cumsum(gaps)
        while arrivals[-1] < horizon:  # pragma: no cover - 6-sigma margin
            extra = rng.exponential(1.0 / lam, size=max(batch // 4, 16))
            arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(extra)])
            gaps = np.concatenate([gaps, extra])
        keep = arrivals <= horizon
        arrivals = arrivals[keep]
        gaps = gaps[keep]
        n_jobs = arrivals.size
        if n_jobs == 0:
            continue

        if service_distributions is not None:
            services = np.asarray(
                service_distributions[i].sample(rng, size=n_jobs), dtype=float
            )
        else:
            services = rng.exponential(1.0 / mu, size=n_jobs)
        waits = mm1_lindley_waits(gaps, services)
        responses = waits + services
        completions = arrivals + responses

        counted = (arrivals >= warmup) & (completions <= horizon)
        if not np.any(counted):
            continue
        resp_counted = responses[counted]
        serv_counted = services[counted]
        k = resp_counted.size

        # Attribute counted jobs to users: categorical over contributions.
        probs = contributions[:, i] / lam
        cdf = np.cumsum(probs)
        cdf[-1] = 1.0
        users = np.searchsorted(cdf, rng.random(k), side="right")
        np.add.at(response_sums, users, resp_counted)
        np.add.at(job_counts, users, 1)
        computer_counts[i] = k
        busy_time[i] = float(serv_counted.sum())

    means = np.divide(
        response_sums,
        job_counts,
        out=np.full(n_users, np.nan),
        where=job_counts > 0,
    )
    window = horizon - warmup
    return SimulationResult(
        user_mean_response_times=means,
        user_job_counts=job_counts,
        computer_utilizations=busy_time / window,
        computer_job_counts=computer_counts,
        horizon=horizon,
        warmup=warmup,
    )
