"""Discrete-event simulation engine — the reproduction's Sim++ substitute."""

from repro.simengine.arrivals import ArrivalProcess, MMPPArrivals, PoissonArrivals
from repro.simengine.entities import Computer, Job, UserSource
from repro.simengine.estimation import (
    MeasuredBestReplyResult,
    estimate_loads_from_queue_lengths,
    run_measured_best_reply,
)
from repro.simengine.events import Event, EventKind, EventQueue
from repro.simengine.fastpath import (
    mm1_lindley_waits,
    mm1_lindley_waits_batch,
    simulate_profile_fast,
    simulate_profile_fast_batch,
)
from repro.simengine.policies import (
    DispatchPolicy,
    JoinShortestQueue,
    LeastExpectedDelay,
    PowerOfTwoChoices,
    StaticPolicy,
)
from repro.simengine.outages import ServerOutage
from repro.simengine.rng import SimulationStreams, replication_seeds
from repro.simengine.service import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    ServiceDistribution,
    from_scv,
)
from repro.simengine.simulator import (
    LoadBalancingSimulation,
    SimulationResult,
    simulate_policy,
    simulate_profile,
)
from repro.simengine.stats import ReplicationStats, replicate, replicate_until

__all__ = [
    "ArrivalProcess",
    "MMPPArrivals",
    "PoissonArrivals",
    "Computer",
    "Job",
    "UserSource",
    "Event",
    "EventKind",
    "EventQueue",
    "MeasuredBestReplyResult",
    "estimate_loads_from_queue_lengths",
    "run_measured_best_reply",
    "mm1_lindley_waits",
    "mm1_lindley_waits_batch",
    "simulate_profile_fast",
    "simulate_profile_fast_batch",
    "ServerOutage",
    "SimulationStreams",
    "replication_seeds",
    "Deterministic",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "ServiceDistribution",
    "from_scv",
    "DispatchPolicy",
    "JoinShortestQueue",
    "LeastExpectedDelay",
    "PowerOfTwoChoices",
    "StaticPolicy",
    "LoadBalancingSimulation",
    "SimulationResult",
    "simulate_policy",
    "simulate_profile",
    "ReplicationStats",
    "replicate",
    "replicate_until",
]
