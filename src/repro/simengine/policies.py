"""Dispatch policies for the event-driven simulator.

The paper studies *static* policies: each user fixes fractions and routes
jobs obliviously.  Its future-work section points at *dynamic* load
balancing, where dispatch reacts to live system state.  The event engine
(unlike the vectorized fast path, which relies on state-independent
routing) can simulate both, so this module provides the classical dynamic
policies as a comparison substrate:

* :class:`StaticPolicy` — route per fixed fractions (the paper's setting);
* :class:`JoinShortestQueue` — send each job to the computer with the
  fewest jobs in system (ties broken by speed);
* :class:`LeastExpectedDelay` — minimize ``(n_i + 1) / mu_i``, the greedy
  estimate of the job's completion time on heterogeneous machines;
* :class:`PowerOfTwoChoices` — sample ``d`` computers (weighted by
  processing rate) and pick the least loaded, the classic low-information
  compromise.

These policies observe the *global* queue state at dispatch time — an
idealization (real dispatchers see stale state) that upper-bounds what
dynamic information can buy over the paper's static equilibrium.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.simengine.entities import Computer

__all__ = [
    "DispatchPolicy",
    "StaticPolicy",
    "JoinShortestQueue",
    "LeastExpectedDelay",
    "PowerOfTwoChoices",
]


class DispatchPolicy(abc.ABC):
    """Chooses a computer for each dispatched job."""

    @abc.abstractmethod
    def choose(
        self,
        user: int,
        computers: Sequence[Computer],
        rng: np.random.Generator,
    ) -> int:
        """Return the index of the computer to route the next job to."""


class StaticPolicy(DispatchPolicy):
    """State-oblivious routing along a fixed ``(users, computers)`` matrix."""

    def __init__(self, fractions: np.ndarray):
        fractions = np.asarray(fractions, dtype=float)
        if fractions.ndim != 2:
            raise ValueError("fractions must be a (users, computers) matrix")
        if np.any(fractions < 0.0) or not np.allclose(
            fractions.sum(axis=1), 1.0
        ):
            raise ValueError("every row must be a probability vector")
        self._cumulative = np.cumsum(fractions, axis=1)

    def choose(self, user, computers, rng):
        row = self._cumulative[user]
        choice = int(np.searchsorted(row, rng.random(), side="right"))
        return min(choice, row.size - 1)


class JoinShortestQueue(DispatchPolicy):
    """Route to the computer with the fewest jobs in system.

    Ties are broken toward the fastest computer (then lowest index), the
    sensible heterogeneous refinement.
    """

    def choose(self, user, computers, rng):
        best = 0
        best_key = (computers[0].run_queue_length, -computers[0].service_rate)
        for index, computer in enumerate(computers[1:], start=1):
            key = (computer.run_queue_length, -computer.service_rate)
            if key < best_key:
                best, best_key = index, key
        return best


class LeastExpectedDelay(DispatchPolicy):
    """Route to ``argmin (n_i + 1) / mu_i`` — greedy expected completion.

    On heterogeneous systems this dominates JSQ, which ignores speed: a
    fast machine with 2 queued jobs often beats an idle slow one.
    """

    def choose(self, user, computers, rng):
        best = 0
        best_delay = (computers[0].run_queue_length + 1) / computers[0].service_rate
        for index, computer in enumerate(computers[1:], start=1):
            delay = (computer.run_queue_length + 1) / computer.service_rate
            if delay < best_delay:
                best, best_delay = index, delay
        return best


class PowerOfTwoChoices(DispatchPolicy):
    """Sample ``d`` candidates (rate-weighted) and take the least loaded.

    Candidate sampling is weighted by processing rate so fast machines are
    probed more often; among candidates the least-expected-delay rule is
    applied.
    """

    def __init__(self, d: int = 2):
        if d < 1:
            raise ValueError("d must be at least 1")
        self.d = d
        self._weights: np.ndarray | None = None

    def choose(self, user, computers, rng):
        if self._weights is None or self._weights.size != len(computers):
            rates = np.asarray([c.service_rate for c in computers])
            self._weights = rates / rates.sum()
        n = len(computers)
        count = min(self.d, n)
        candidates = rng.choice(n, size=count, replace=False, p=self._weights)
        best = int(candidates[0])
        best_delay = (
            computers[best].run_queue_length + 1
        ) / computers[best].service_rate
        for index in candidates[1:]:
            computer = computers[int(index)]
            delay = (computer.run_queue_length + 1) / computer.service_rate
            if delay < best_delay:
                best, best_delay = int(index), delay
        return best
