"""Server outage windows for the event-driven simulator.

The chaos layer of the distributed runtime
(:mod:`repro.distributed.chaos`) degrades the *game* when a computer
fails; this module is the matching knob on the *measurement* side: a
:class:`ServerOutage` takes a simulated computer out of service for a
time window, so the response-time cost of a failure (and of the degraded
re-balanced profile) can be observed rather than derived.

Outage semantics follow the crash model: the job in service when the
server goes down loses its progress and is re-executed from scratch on
resume (its earlier partial service is not counted as busy time), and
jobs arriving during the outage queue up behind it — nothing is dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ServerOutage"]


@dataclass(frozen=True, slots=True)
class ServerOutage:
    """One computer's off-line window ``[start, end)`` in simulated time.

    ``end`` may be ``math.inf`` for a permanent failure.  Windows for the
    same computer must not overlap (the simulator validates this).
    """

    computer: int
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.computer < 0:
            raise ValueError("computer index must be nonnegative")
        if not 0.0 <= self.start < self.end:
            raise ValueError("outage needs 0 <= start < end")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlap(self, lo: float, hi: float) -> float:
        """Length of this outage's intersection with ``[lo, hi]``."""
        return max(0.0, min(self.end, hi) - max(self.start, lo))
