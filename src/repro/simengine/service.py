"""Service-time distributions for the simulation engines.

The paper simulates exponential services (M/M/1).  Both of this
reproduction's engines are actually G/G/1-capable — the event engine
draws per-job service times, and the Lindley fast path accepts arbitrary
samples — so this module provides the standard spread of distributions
keyed by their squared coefficient of variation (``scv``):

* :class:`Deterministic` — ``scv = 0`` (M/D/1, the low-variability limit);
* :class:`Erlang` — ``scv = 1/k`` for ``k`` phases (mild variability);
* :class:`Exponential` — ``scv = 1`` (the paper's M/M/1 assumption);
* :class:`HyperExponential` — any ``scv > 1`` via the balanced-means
  two-phase construction (bursty/heavy-ish job sizes).

All are parameterized by the service *rate* ``mu`` (mean ``1/mu``), so a
distribution can be swapped under a fixed allocation to study how the
paper's conclusions survive model misspecification (experiment EXT5).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ServiceDistribution",
    "Deterministic",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "from_scv",
]


class ServiceDistribution(abc.ABC):
    """A positive service-time distribution with known mean and SCV."""

    #: Service rate ``mu``; the mean service time is ``1/mu``.
    rate: float

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    @abc.abstractmethod
    def scv(self) -> float:
        """Squared coefficient of variation ``Var[S] / E[S]^2``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one sample (``size=None``) or a vector of samples."""


def _check_rate(rate: float) -> float:
    if rate <= 0.0 or not math.isfinite(rate):
        raise ValueError("service rate must be positive and finite")
    return float(rate)


@dataclass(frozen=True)
class Exponential(ServiceDistribution):
    """The paper's assumption: ``Exp(mu)``, scv = 1."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    @property
    def scv(self) -> float:
        return 1.0

    def sample(self, rng, size=None):
        return rng.exponential(1.0 / self.rate, size=size)


@dataclass(frozen=True)
class Deterministic(ServiceDistribution):
    """Constant service time ``1/mu``, scv = 0 (M/D/1)."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    @property
    def scv(self) -> float:
        return 0.0

    def sample(self, rng, size=None):
        if size is None:
            return 1.0 / self.rate
        return np.full(size, 1.0 / self.rate)


@dataclass(frozen=True)
class Erlang(ServiceDistribution):
    """Erlang-``k``: sum of ``k`` exponentials, scv = 1/k."""

    rate: float
    k: int = 2

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.k < 1:
            raise ValueError("Erlang needs at least one phase")

    @property
    def scv(self) -> float:
        return 1.0 / self.k

    def sample(self, rng, size=None):
        return rng.gamma(self.k, 1.0 / (self.k * self.rate), size=size)


@dataclass(frozen=True)
class HyperExponential(ServiceDistribution):
    """Two-phase hyperexponential with balanced means, scv > 1.

    With probability ``p`` the job is drawn from ``Exp(2 p mu)`` and with
    ``1-p`` from ``Exp(2 (1-p) mu)``, where
    ``p = (1 + sqrt((c2-1)/(c2+1))) / 2``; this keeps the mean at
    ``1/mu`` while hitting any requested ``c2 >= 1``.
    """

    rate: float
    target_scv: float = 4.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.target_scv < 1.0:
            raise ValueError(
                "hyperexponential requires scv >= 1; use Erlang below 1"
            )

    @property
    def scv(self) -> float:
        return float(self.target_scv)

    @property
    def _phases(self) -> tuple[float, float, float]:
        c2 = self.target_scv
        p = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
        return p, 2.0 * p * self.rate, 2.0 * (1.0 - p) * self.rate

    def sample(self, rng, size=None):
        p, rate1, rate2 = self._phases
        if size is None:
            chosen = rate1 if rng.random() < p else rate2
            return rng.exponential(1.0 / chosen)
        picks = rng.random(size) < p
        out = np.empty(size)
        n1 = int(picks.sum())
        out[picks] = rng.exponential(1.0 / rate1, size=n1)
        out[~picks] = rng.exponential(1.0 / rate2, size=size - n1)
        return out


def from_scv(rate: float, scv: float) -> ServiceDistribution:
    """Pick the canonical distribution for a requested SCV.

    ``0`` → deterministic, ``(0, 1)`` → Erlang with the nearest phase
    count, ``1`` → exponential, ``> 1`` → balanced hyperexponential.
    """
    if scv < 0.0:
        raise ValueError("scv must be nonnegative")
    if scv == 0.0:  # reprolint: allow=R002 exact-sentinel
        return Deterministic(rate)
    if scv < 1.0:
        k = max(1, round(1.0 / scv))
        return Erlang(rate, k=k)
    if scv == 1.0:  # reprolint: allow=R002 exact-sentinel
        return Exponential(rate)
    return HyperExponential(rate, target_scv=scv)
