"""Arrival processes for the event-driven simulator.

The paper's users generate jobs as Poisson processes.  Real traffic is
burstier, so the event engine also accepts Markov-modulated Poisson
sources — the standard parsimonious model of bursty arrivals — to test
how the schemes behave when the arrival model, like the service model in
EXT5, is misspecified.

* :class:`PoissonArrivals` — the paper's memoryless source;
* :class:`MMPPArrivals` — a 2-state Markov-modulated Poisson process:
  the source alternates between a *calm* and a *burst* state with
  exponential sojourns, emitting Poisson arrivals at a state-dependent
  rate.  Its long-run average rate is
  ``(q_bc * r_calm + q_cb * r_burst) / (q_cb + q_bc)`` where ``q_cb`` /
  ``q_bc`` are the calm->burst / burst->calm switching rates.

Both expose ``next_interarrival()`` (statefully advancing the modulating
chain where applicable) plus the stationary ``average_rate`` used to pick
game-theoretic allocations for the *mean* traffic.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["ArrivalProcess", "PoissonArrivals", "MMPPArrivals"]


class ArrivalProcess(abc.ABC):
    """A stateful point process generating interarrival gaps."""

    @property
    @abc.abstractmethod
    def average_rate(self) -> float:
        """Long-run arrivals per second."""

    @abc.abstractmethod
    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Time until the next arrival (advances internal state)."""


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant rate (the paper's model)."""

    def __init__(self, rate: float):
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)

    @property
    def average_rate(self) -> float:
        return self.rate

    def next_interarrival(self, rng):
        return float(rng.exponential(1.0 / self.rate))


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    Parameters
    ----------
    calm_rate, burst_rate:
        Poisson arrival rates in the two modulating states
        (``burst_rate >= calm_rate >= 0``; the calm state may be silent).
    calm_to_burst, burst_to_calm:
        Exponential switching rates of the modulating chain.

    The process starts in its stationary state distribution given the
    provided generator so short simulations are unbiased.
    """

    def __init__(
        self,
        calm_rate: float,
        burst_rate: float,
        *,
        calm_to_burst: float,
        burst_to_calm: float,
    ):
        if calm_rate < 0.0 or burst_rate <= 0.0:
            raise ValueError("arrival rates must be nonnegative (burst positive)")
        if burst_rate < calm_rate:
            raise ValueError("burst rate must be at least the calm rate")
        if calm_to_burst <= 0.0 or burst_to_calm <= 0.0:
            raise ValueError("switching rates must be positive")
        self.rates = (float(calm_rate), float(burst_rate))
        self.switch = (float(calm_to_burst), float(burst_to_calm))
        self._state: int | None = None  # 0 = calm, 1 = burst; lazily seeded

    @property
    def average_rate(self) -> float:
        q_cb, q_bc = self.switch
        p_calm = q_bc / (q_cb + q_bc)
        return p_calm * self.rates[0] + (1.0 - p_calm) * self.rates[1]

    @property
    def burstiness(self) -> float:
        """Ratio of burst to calm rate (1 degenerates to Poisson)."""
        if self.rates[0] == 0.0:  # reprolint: allow=R002 exact-sentinel
            return float("inf")
        return self.rates[1] / self.rates[0]

    def _seed_state(self, rng: np.random.Generator) -> None:
        q_cb, q_bc = self.switch
        p_calm = q_bc / (q_cb + q_bc)
        self._state = 0 if rng.random() < p_calm else 1

    def next_interarrival(self, rng):
        if self._state is None:
            self._seed_state(rng)
        elapsed = 0.0
        # Competing exponentials: next arrival vs next state switch.
        while True:
            state = self._state
            rate = self.rates[state]
            switch_rate = self.switch[state]
            to_switch = float(rng.exponential(1.0 / switch_rate))
            if rate <= 0.0:
                # Silent state: only the switch can happen.
                elapsed += to_switch
                self._state = 1 - state
                continue
            to_arrival = float(rng.exponential(1.0 / rate))
            if to_arrival <= to_switch:
                return elapsed + to_arrival
            elapsed += to_switch
            self._state = 1 - state
