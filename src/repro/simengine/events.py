"""Event core of the discrete-event simulation engine.

The paper ran its evaluation on Sim++, a C++ event-scheduling simulation
library.  This module is the bottom layer of the pure-Python substitute:
a time-ordered event queue with deterministic tie-breaking (events at the
same timestamp fire in scheduling order, so replications are exactly
reproducible given the RNG streams).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """The event vocabulary of the load balancing simulation."""

    #: A user source generates a job (and schedules the next generation).
    JOB_ARRIVAL = auto()
    #: A computer finishes the job at the head of its queue.
    JOB_DEPARTURE = auto()
    #: Periodic observation of every computer's run-queue length.
    STATE_SAMPLE = auto()
    #: A computer crashes: service stops, queued jobs wait in place.
    SERVER_DOWN = auto()
    #: A crashed computer comes back and resumes serving its queue.
    SERVER_UP = auto()
    #: End of the simulation horizon.
    END_OF_SIMULATION = auto()


@dataclass(frozen=True, slots=True)
class Event:
    """An immutable scheduled event.

    Ordering is by ``(time, seq)``: the sequence number is assigned by the
    queue at scheduling time, making simultaneous events fire FIFO.
    """

    time: float
    seq: int
    kind: EventKind
    payload: Any = field(default=None, compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Binary-heap future event list.

    >>> q = EventQueue()
    >>> _ = q.schedule(2.0, EventKind.JOB_ARRIVAL)
    >>> _ = q.schedule(1.0, EventKind.JOB_DEPARTURE)
    >>> q.pop().kind.name
    'JOB_DEPARTURE'
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Insert an event; scheduling into the past is a logic error."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.6g} before current time "
                f"{self._now:.6g}"
            )
        event = Event(time=time, seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, kind: EventKind, payload: Any = None
    ) -> Event:
        """Insert an event ``delay`` time units from now."""
        if delay < 0.0:
            raise ValueError("delay must be nonnegative")
        return self.schedule(self._now + delay, kind, payload)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def peek(self) -> Event:
        """The earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek into empty event queue")
        return self._heap[0]
