"""Independent random-number streams for reproducible simulations.

The paper replicates every run "five times with different random number
streams".  We realize that with numpy's ``SeedSequence`` spawning: a
single root seed deterministically derives statistically independent
child streams — one per user source (interarrival times), one per
computer (service times), and one per user (routing choices) — and a
further level per replication.  Any (seed, replication) pair therefore
reproduces its run exactly, on any platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationStreams", "replication_seeds"]


@dataclass(frozen=True)
class SimulationStreams:
    """The named RNG streams of one simulation run.

    Attributes
    ----------
    arrivals:
        One generator per user, driving its Poisson job generation.
    services:
        One generator per computer, driving exponential service times.
    routing:
        One generator per user, driving the per-job computer choice
        (Bernoulli splitting of the user's stream per its strategy).
    """

    arrivals: tuple[np.random.Generator, ...]
    services: tuple[np.random.Generator, ...]
    routing: tuple[np.random.Generator, ...]

    @classmethod
    def from_seed(
        cls, seed: int | np.random.SeedSequence, n_users: int, n_computers: int
    ) -> "SimulationStreams":
        """Derive all streams from one root seed."""
        if n_users <= 0 or n_computers <= 0:
            raise ValueError("stream counts must be positive")
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = root.spawn(2 * n_users + n_computers)
        arrivals = tuple(
            np.random.Generator(np.random.PCG64(s)) for s in children[:n_users]
        )
        services = tuple(
            np.random.Generator(np.random.PCG64(s))
            for s in children[n_users : n_users + n_computers]
        )
        routing = tuple(
            np.random.Generator(np.random.PCG64(s))
            for s in children[n_users + n_computers :]
        )
        return cls(arrivals=arrivals, services=services, routing=routing)


def replication_seeds(seed: int, n_replications: int) -> list[np.random.SeedSequence]:
    """Independent root seeds for each replication of an experiment."""
    if n_replications <= 0:
        raise ValueError("n_replications must be positive")
    return list(np.random.SeedSequence(seed).spawn(n_replications))
