"""Common interface of all static load balancing schemes (paper Sec. 4.2).

Every scheme — the paper's NASH plus the three comparison baselines PS,
GOS and IOS, and the Stackelberg extension — maps a
:class:`~repro.core.model.DistributedSystem` to a feasible strategy
profile.  The shared :class:`SchemeResult` carries the per-user and
overall expected response times and the fairness index so the experiment
harness can treat all schemes uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping, cast

from repro._typing import FloatArray
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.queueing.metrics import fairness_index, overall_response_time

__all__ = ["SchemeResult", "LoadBalancingScheme", "evaluate_profile"]


@dataclass(frozen=True)
class SchemeResult:
    """A scheme's allocation together with its headline metrics.

    Attributes
    ----------
    scheme:
        Identifier of the producing scheme ("NASH", "GOS", "IOS", "PS", ...).
    profile:
        The feasible strategy profile the scheme selected.
    user_times:
        Per-user expected response times ``D_j`` (paper Figure 5).
    overall_time:
        Traffic-weighted overall expected response time (Figures 4 and 6,
        top panels).
    fairness:
        Jain's fairness index of ``user_times`` (Figures 4 and 6, bottom
        panels).
    extra:
        Scheme-specific diagnostics (iteration counts, thresholds, ...).
    """

    scheme: str
    profile: StrategyProfile
    user_times: FloatArray
    overall_time: float
    fairness: float
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def loads(self) -> FloatArray | None:
        return cast("FloatArray | None", self.extra.get("loads"))


def evaluate_profile(
    system: DistributedSystem,
    profile: StrategyProfile,
    scheme: str,
    extra: Mapping[str, Any] | None = None,
) -> SchemeResult:
    """Package a feasible profile with its metrics into a SchemeResult."""
    profile.validate(system)
    user_times = system.user_response_times(profile.fractions)
    merged: dict[str, Any] = {"loads": system.loads(profile.fractions)}
    if extra:
        merged.update(extra)
    return SchemeResult(
        scheme=scheme,
        profile=profile,
        user_times=user_times,
        overall_time=overall_response_time(user_times, system.arrival_rates),
        fairness=fairness_index(user_times),
        extra=merged,
    )


class LoadBalancingScheme(abc.ABC):
    """Abstract static load balancing scheme."""

    #: Short identifier used in tables and figures.
    name: str = "ABSTRACT"

    @abc.abstractmethod
    def allocate(self, system: DistributedSystem) -> SchemeResult:
        """Compute this scheme's strategy profile for ``system``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
