"""NBS — cooperative load balancing via the Nash Bargaining Solution.

The paper's introduction taxonomizes load balancing into global,
*cooperative* and noncooperative approaches, and cites dynamic
noncooperative game theory (Basar & Olsder) for the cooperative case; the
authors develop it fully in the companion paper ("Load Balancing in
Distributed Systems: An Approach Using Cooperative Games", also IPDPS
2002).  This module implements that third corner of the design space so
the reproduction covers the whole taxonomy.

Setup: the users are bargainers with utility ``-D_j``; the
**disagreement point** is the expected response time each user suffers
under the status-quo scheme (by default the oblivious proportional split,
what a user gets with no agreement).  The Nash Bargaining Solution is the
feasible profile maximizing the Nash product

    max  prod_j (d0_j - D_j(s))     s.t.  s feasible,  D_j(s) <= d0_j

equivalently ``max sum_j log(d0_j - D_j(s))`` — a concave program solved
here with SLSQP and an analytic gradient.  The NBS is Pareto-optimal,
individually rational (nobody does worse than the disagreement point) and
symmetric (identical users receive identical outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro._typing import ArrayLike, FloatArray
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.queueing.mm1 import expected_response_time
from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile
from repro.schemes.global_optimal import global_optimal_loads
from repro.schemes.proportional import ProportionalScheme

__all__ = ["CooperativeScheme", "nash_bargaining_profile"]

_PENALTY = 1e12


def nash_bargaining_profile(
    system: DistributedSystem,
    disagreement_times: ArrayLike,
    *,
    max_iterations: int = 500,
) -> StrategyProfile:
    """Maximize the Nash product over feasible strategy profiles.

    Parameters
    ----------
    disagreement_times:
        ``d0_j`` — per-user response times if bargaining fails.  Must be
        strictly dominated by some feasible profile (the default PS
        disagreement point always is, on heterogeneous systems).
    """
    m, n = system.n_users, system.n_computers
    phi = system.arrival_rates
    mu = system.service_rates
    d0: FloatArray = np.asarray(disagreement_times, dtype=float)
    if d0.shape != (m,):
        raise ValueError("disagreement point must have one entry per user")

    # Interior start: the fair split of the socially optimal loads strictly
    # dominates the PS disagreement point on heterogeneous systems.
    start = StrategyProfile.from_loads(system, global_optimal_loads(system))
    x0 = start.fractions.ravel()

    def unpack(x: FloatArray) -> tuple[FloatArray, FloatArray, FloatArray]:
        s: FloatArray = x.reshape(m, n)
        lam: FloatArray = phi @ s
        gap: FloatArray = mu - lam
        return s, lam, gap

    def objective(x: FloatArray) -> float:
        s, lam, gap = unpack(x)
        if np.any(gap <= 0.0) or np.any(lam < 0.0):
            return _PENALTY
        times = s @ expected_response_time(lam, mu)
        gains = d0 - times
        if np.any(gains <= 0.0):
            return _PENALTY
        return -float(np.log(gains).sum())

    def gradient(x: FloatArray) -> FloatArray:
        s, lam, gap = unpack(x)
        if np.any(gap <= 0.0) or np.any(lam < 0.0):
            zeros: FloatArray = np.zeros_like(x)
            return zeros
        inv_gap = expected_response_time(lam, mu)
        times = s @ inv_gap
        gains = d0 - times
        if np.any(gains <= 0.0):
            zeros = np.zeros_like(x)
            return zeros
        inv_gains = 1.0 / gains  # (m,)
        # dD_j/ds_ki = delta_jk / gap_i + s_ji * phi_k / gap_i^2
        # dO/ds_ki   = inv_gains_k / gap_i
        #            + (sum_j inv_gains_j s_ji) * phi_k / gap_i^2
        shared = (inv_gains @ s) * inv_gap * inv_gap  # (n,)
        grad: FloatArray = (
            inv_gains[:, None] * inv_gap[None, :] + phi[:, None] * shared[None, :]
        ).ravel()
        return grad

    constraints = [
        {
            "type": "eq",
            "fun": lambda x: x.reshape(m, n).sum(axis=1) - 1.0,
            "jac": lambda x: np.repeat(np.eye(m), n, axis=1),
        }
    ]
    solution = optimize.minimize(
        objective,
        x0,
        jac=gradient,
        bounds=[(0.0, 1.0)] * (m * n),
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-12},
    )
    fractions: FloatArray = np.clip(solution.x.reshape(m, n), 0.0, None)
    fractions /= fractions.sum(axis=1, keepdims=True)
    return StrategyProfile(fractions)


@dataclass(frozen=True)
class CooperativeScheme(LoadBalancingScheme):
    """Nash Bargaining Solution with a PS disagreement point."""

    name: str = "NBS"
    max_iterations: int = 500

    def allocate(self, system: DistributedSystem) -> SchemeResult:
        disagreement = ProportionalScheme().allocate(system).user_times
        profile = nash_bargaining_profile(
            system, disagreement, max_iterations=self.max_iterations
        )
        result = evaluate_profile(
            system,
            profile,
            self.name,
            extra={"disagreement_times": disagreement},
        )
        return result
