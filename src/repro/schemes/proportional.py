"""PS — the Proportional Scheme baseline (Chow & Kohler 1979).

Each user allocates jobs to computers in proportion to their processing
rates: ``s_ji = mu_i / sum_k mu_k``.  Natural, oblivious to load, and
perfectly fair (every user sees the identical mix of computers, so the
fairness index is exactly 1 at any load), but far from optimal: each
computer runs at the *same* utilization ``rho``, so slow computers
contribute response time ``1/(mu_i (1 - rho))``, which dominates the mean
in heterogeneous systems — the paper's explanation for PS's poor showing
in Figures 4-6.

Closed forms used as test oracles::

    lambda_i = Phi * mu_i / sum(mu)
    F_i      = 1 / (mu_i * (1 - rho))
    D_j      = n / ((1 - rho) * sum(mu))       (identical for every user)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile

__all__ = ["ProportionalScheme", "proportional_response_time"]


def proportional_response_time(system: DistributedSystem) -> float:
    """Closed-form per-user (= overall) expected response time under PS.

    ``D = n / ((1 - rho) * sum_i mu_i)`` — every user experiences it.
    """
    rho = system.system_utilization
    return system.n_computers / ((1.0 - rho) * system.total_processing_rate)


@dataclass(frozen=True)
class ProportionalScheme(LoadBalancingScheme):
    """The PS baseline: split in proportion to processing rates."""

    name: str = "PS"

    def allocate(self, system: DistributedSystem) -> SchemeResult:
        profile = StrategyProfile.proportional(system)
        return evaluate_profile(
            system,
            profile,
            self.name,
            extra={"closed_form_time": proportional_response_time(system)},
        )
