"""IOS — the Individual Optimal Scheme baseline (Kameda et al. 1997).

Under IOS every *job* (not user) optimizes its own response time, and the
system settles at the **Wardrop equilibrium**: all computers that receive
any traffic have equal expected response time ``tau`` and every unused
computer would be slower even when idle.  The scheme is perfectly fair
(every user experiences ``tau``, fairness index 1) but not optimal, and at
high loads it coincides with PS — an identity the paper observes
empirically in Figure 4 and which holds analytically once all computers
carry load::

    1/tau = (sum_i mu_i - Phi) / n  ==>  tau = n / ((1 - rho) sum_i mu_i)

which is exactly the PS response time.

Two solvers are provided: the closed-form water-fill (exact) and the
iterative **flow deviation** procedure the paper alludes to ("an iterative
procedure that is not very efficient"), kept both as a historical artifact
and as an independent cross-check of the closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import FloatArray
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import response_time_waterfill
from repro.queueing.mm1 import expected_response_time
from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile

__all__ = [
    "IndividualOptimalScheme",
    "wardrop_loads",
    "wardrop_response_time",
    "flow_deviation_loads",
]


def wardrop_loads(system: DistributedSystem) -> FloatArray:
    """Closed-form Wardrop equilibrium aggregate loads."""
    loads: FloatArray = response_time_waterfill(
        system.service_rates, system.total_arrival_rate
    ).loads
    return loads


def wardrop_response_time(system: DistributedSystem) -> float:
    """The common response time ``tau`` of all used computers."""
    return float(
        response_time_waterfill(
            system.service_rates, system.total_arrival_rate
        ).threshold
    )


def flow_deviation_loads(
    system: DistributedSystem,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
) -> tuple[FloatArray, int]:
    """Wardrop loads via the flow-deviation iteration.

    Repeatedly shifts a step of flow from the currently slowest used
    computer to the currently fastest computer (a discrete analogue of
    jobs individually defecting), with a diminishing step size
    (Frank-Wolfe style), until the used computers' response times agree to
    within ``tolerance``.

    Returns ``(loads, iterations)``.
    """
    mu = system.service_rates
    total = system.total_arrival_rate
    # Feasible start: proportional loads keep every queue strictly stable.
    loads: FloatArray = total * mu / mu.sum()

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        gap = mu - loads
        times = expected_response_time(loads, mu)
        # Response time of the best target; idle computers count with 1/mu.
        fastest = int(np.argmin(times))
        used = loads > 0.0
        if not np.any(used):  # pragma: no cover - total > 0 guarantees usage
            break
        slowest_used = int(np.argmax(np.where(used, times, -np.inf)))
        spread = times[slowest_used] - times[fastest]
        if spread <= tolerance:
            break
        # Pairwise equalizing step: moving delta from the slowest used
        # computer to the fastest equalizes their response times at
        # delta = (gap_fast - gap_slow) / 2; cap by the donor's flow.
        step = min(
            loads[slowest_used],
            0.5 * (gap[fastest] - gap[slowest_used]),
        )
        loads[slowest_used] -= step
        loads[fastest] += step
    return loads, iterations


@dataclass(frozen=True)
class IndividualOptimalScheme(LoadBalancingScheme):
    """The IOS baseline: Wardrop equilibrium with per-user fair split.

    Parameters
    ----------
    method:
        ``"closed_form"`` (default) for the exact water-fill or
        ``"flow_deviation"`` for the paper-era iterative procedure.
    """

    method: str = "closed_form"
    name: str = "IOS"

    def allocate(self, system: DistributedSystem) -> SchemeResult:
        extra: dict[str, object] = {"method": self.method}
        if self.method == "closed_form":
            loads = wardrop_loads(system)
            extra["tau"] = wardrop_response_time(system)
        elif self.method == "flow_deviation":
            loads, iterations = flow_deviation_loads(system)
            extra["iterations"] = iterations
        else:
            raise ValueError(f"unknown IOS method {self.method!r}")
        profile = StrategyProfile.from_loads(system, loads)
        return evaluate_profile(system, profile, self.name, extra=extra)
