"""Stackelberg scheduling — the leader/follower extension.

The paper's related-work section cites Roughgarden (STOC 2001), who models
load balancing as a **Stackelberg game**: a leader controlling a fraction
``beta`` of the total flow commits to an allocation first, anticipating
that the remaining flow (the followers — selfish jobs) will settle at the
Wardrop equilibrium of the *residual* system.  Computing the optimal
leader strategy is NP-hard in general, so two strategies are provided:

* ``"nlp"`` — numerically optimize the leader's loads with SLSQP
  (exact up to the solver on these small parallel-link instances);
* ``"aloof"`` — the trivial leader that ignores its influence and plays
  the socially optimal split of its own flow, a natural lower bound.

The induced equilibrium cost always lies between the Wardrop cost
(``beta = 0``) and the global optimum (``beta = 1``), which the extension
benchmark (EXT1) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from scipy import optimize

from repro._typing import ArrayLike, FloatArray
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import response_time_waterfill, sqrt_waterfill
from repro.queueing.mm1 import total_delay
from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile
from repro.tolerances import is_zero

__all__ = ["StackelbergScheme", "induced_equilibrium_loads", "stackelberg_total_cost"]


def induced_equilibrium_loads(
    system: DistributedSystem, leader_loads: ArrayLike, follower_demand: float
) -> FloatArray:
    """Follower (Wardrop) loads induced by a committed leader allocation.

    Followers see residual capacities ``mu_i - L_i`` and equilibrate their
    ``follower_demand`` on them; the leader's flow is already in place, so
    follower response times are ``1/(mu_i - L_i - x_i)``.
    """
    residual: FloatArray = system.service_rates - np.asarray(
        leader_loads, dtype=float
    )
    if is_zero(follower_demand, scale=float(system.service_rates.sum())):
        return np.zeros_like(residual)
    usable = residual[residual > 0.0]
    if follower_demand >= usable.sum():
        raise ValueError(
            "leader allocation leaves insufficient residual capacity for "
            "the followers"
        )
    loads: FloatArray = response_time_waterfill(residual, follower_demand).loads
    return loads


def stackelberg_total_cost(
    system: DistributedSystem, leader_loads: ArrayLike, follower_demand: float
) -> float:
    """Overall expected response time of leader + induced follower flow."""
    committed: FloatArray = np.asarray(leader_loads, dtype=float)
    try:
        follower = induced_equilibrium_loads(
            system, committed, follower_demand
        )
    except ValueError:
        return float("inf")
    lam = committed + follower
    if np.any(system.service_rates - lam <= 0.0):
        return float("inf")
    return float(total_delay(lam, system.service_rates).sum()
                 / system.total_arrival_rate)


def _optimal_leader_loads(
    system: DistributedSystem, leader_demand: float, follower_demand: float
) -> FloatArray:
    """Numerically optimize the leader's committed loads (SLSQP)."""
    mu = system.service_rates
    n = mu.size
    # Start from the leader's share of the socially optimal loads.
    total_opt = sqrt_waterfill(mu, system.total_arrival_rate).loads
    x0 = total_opt * (leader_demand / system.total_arrival_rate)

    def objective(loads: FloatArray) -> float:
        return stackelberg_total_cost(system, loads, follower_demand)

    constraints = [
        {"type": "eq", "fun": lambda x: x.sum() - leader_demand},
    ]
    # Leave room for followers on every machine the leader saturates.
    bounds = [(0.0, float(rate) * (1.0 - 1e-9)) for rate in mu]
    solution = optimize.minimize(
        objective,
        x0,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 400, "ftol": 1e-12},
    )
    loads: FloatArray = np.clip(solution.x, 0.0, None)
    if loads.sum() > 0.0:
        loads *= leader_demand / loads.sum()
    return loads


@dataclass(frozen=True)
class StackelbergScheme(LoadBalancingScheme):
    """Leader/follower scheme controlling a ``beta`` fraction of the flow.

    The returned profile models the leader as user 0 *pro rata*: the
    leader's flow is spread over the users proportionally to their demand
    (each user's traffic is split ``beta`` leader / ``1 - beta`` selfish),
    keeping the profile shape compatible with the common interface.
    """

    beta: float = 0.5
    strategy: Literal["nlp", "aloof"] = "nlp"
    name: str = "STACKELBERG"

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must lie in [0, 1]")

    def allocate(self, system: DistributedSystem) -> SchemeResult:
        total = system.total_arrival_rate
        leader_demand = self.beta * total
        follower_demand = total - leader_demand

        if is_zero(leader_demand, scale=total):
            leader_loads = np.zeros(system.n_computers)
        elif self.strategy == "aloof":
            leader_loads = sqrt_waterfill(system.service_rates, leader_demand).loads
        elif self.strategy == "nlp":
            leader_loads = _optimal_leader_loads(
                system, leader_demand, follower_demand
            )
        else:  # pragma: no cover - guarded by Literal
            raise ValueError(f"unknown leader strategy {self.strategy!r}")

        follower_loads = induced_equilibrium_loads(
            system, leader_loads, follower_demand
        )
        loads = leader_loads + follower_loads
        profile = StrategyProfile.from_loads(system, loads)
        return evaluate_profile(
            system,
            profile,
            self.name,
            extra={
                "beta": self.beta,
                "strategy": self.strategy,
                "leader_loads": leader_loads,
                "follower_loads": follower_loads,
            },
        )
