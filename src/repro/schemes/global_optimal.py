"""GOS — the Global Optimal Scheme baseline (Kim & Kameda 1992).

GOS minimizes the *overall* expected response time

    D(s) = (1/Phi) sum_i lambda_i / (mu_i - lambda_i)

over all feasible profiles — the classical single-decision-maker optimum
(Tantawi & Towsley 1985; Tang & Chanson 2000).  The optimal **aggregate**
loads ``lambda*`` are unique and given by the same square-root water-fill
as the paper's Theorem 2.1 with the whole system's demand; but the
**per-user split** achieving them is not unique, and that freedom is
exactly why GOS is unfair: the solver can hand one user the fast machines
and another the slow ones without changing the overall mean.

Three split policies are provided:

* ``"sequential"`` (default) — a deterministic greedy split: computers are
  ordered fastest-first and users consume the optimal capacities in user
  order, so user 1 ends up on the fastest machines and the last user on
  the slowest.  This reproduces the large per-user disparities the paper
  shows for GOS in Figure 5, deterministically.
* ``"fair"`` — every user splits along ``lambda*/Phi``; same overall time,
  fairness index exactly 1.  (Used to demonstrate that GOS *could* be
  fair; the paper's NLP solver simply is not.)
* ``"slsqp"`` — solve the full nonlinear program over the ``(m, n)``
  fraction matrix with SciPy's SLSQP, mirroring how the paper obtains GOS
  ("solving the nonlinear optimization problem").  Cross-checks the
  closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from scipy import optimize

from repro._typing import ArrayLike, FloatArray
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import sqrt_waterfill
from repro.queueing.mm1 import marginal_delay, total_delay
from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile

__all__ = [
    "GlobalOptimalScheme",
    "global_optimal_loads",
    "sequential_fill_split",
    "solve_gos_nlp",
]

SplitPolicy = Literal["sequential", "fair", "slsqp"]


def global_optimal_loads(system: DistributedSystem) -> FloatArray:
    """Socially optimal aggregate loads ``lambda*`` (unique).

    The water-fill ``lambda*_i = max(0, mu_i - t sqrt(mu_i))`` with the
    threshold chosen so that the loads sum to ``Phi``.
    """
    loads: FloatArray = sqrt_waterfill(
        system.service_rates, system.total_arrival_rate
    ).loads
    return loads


def sequential_fill_split(system: DistributedSystem, loads: ArrayLike) -> FloatArray:
    """Deterministic unfair split of aggregate loads among users.

    Computers are visited fastest-first; each user in index order consumes
    capacity from the current computer until either its demand ``phi_j`` is
    exhausted (next user continues on the same computer) or the computer's
    optimal load is exhausted (the user continues on the next computer).
    The result is a feasible ``(m, n)`` fraction matrix whose column sums
    reproduce ``loads`` exactly.

    Vectorized via interval intersection: user ``j`` owns the demand
    interval ``[P_{j-1}, P_j)`` of the cumulative demand line and computer
    ``i`` owns ``[L_{i-1}, L_i)`` of the cumulative (sorted) load line; the
    amount user ``j`` places on computer ``i`` is the overlap length.
    """
    lam: FloatArray = np.asarray(loads, dtype=float)
    if lam.shape != (system.n_computers,):
        raise ValueError("loads must have one entry per computer")
    order = np.argsort(-system.service_rates, kind="stable")
    lam_sorted = lam[order]

    user_edges = np.concatenate(([0.0], np.cumsum(system.arrival_rates)))
    comp_edges = np.concatenate(([0.0], np.cumsum(lam_sorted)))
    # Guard against round-off mismatch between the two cumulative lines.
    comp_edges[-1] = user_edges[-1] = min(comp_edges[-1], user_edges[-1])

    lo = np.maximum(user_edges[:-1, None], comp_edges[None, :-1])
    hi = np.minimum(user_edges[1:, None], comp_edges[None, 1:])
    overlap = np.clip(hi - lo, 0.0, None)  # (m, n_sorted) job-rate mass

    fractions_sorted = overlap / system.arrival_rates[:, None]
    fractions: FloatArray = np.empty_like(fractions_sorted)
    fractions[:, order] = fractions_sorted
    # Normalize away accumulated round-off so conservation holds exactly.
    fractions /= fractions.sum(axis=1, keepdims=True)
    return fractions


def solve_gos_nlp(
    system: DistributedSystem,
    *,
    start: StrategyProfile | None = None,
    max_iterations: int = 300,
) -> StrategyProfile:
    """Solve the full GOS nonlinear program with SLSQP (paper's method).

    Minimizes the overall expected response time over the ``(m, n)``
    fraction matrix subject to positivity and per-user conservation; the
    stability constraint is enforced through a barrier-style bound on the
    per-computer load implied by the objective blowing up at saturation.
    """
    m, n = system.n_users, system.n_computers
    phi = system.arrival_rates
    mu = system.service_rates
    total = system.total_arrival_rate

    if start is None:
        start = StrategyProfile.proportional(system)
    x0 = start.fractions.ravel()

    def objective(x: FloatArray) -> float:
        s = x.reshape(m, n)
        lam: FloatArray = phi @ s
        if np.any(mu - lam <= 0.0) or np.any(lam < 0.0):
            return 1e12
        return float(total_delay(lam, mu).sum() / total)

    def gradient(x: FloatArray) -> FloatArray:
        s = x.reshape(m, n)
        lam: FloatArray = phi @ s
        if np.any(mu - lam <= 0.0) or np.any(lam < 0.0):
            out: FloatArray = np.zeros_like(x)
            return out
        # d D / d s_ji = phi_j * mu_i / (mu_i - lambda_i)^2 / total
        per_computer = marginal_delay(lam, mu) / total
        grad: FloatArray = (phi[:, None] * per_computer[None, :]).ravel()
        return grad

    constraints = [
        {
            "type": "eq",
            "fun": lambda x: x.reshape(m, n).sum(axis=1) - 1.0,
            "jac": lambda x: np.repeat(np.eye(m), n, axis=1),
        }
    ]
    bounds = [(0.0, 1.0)] * (m * n)
    solution = optimize.minimize(
        objective,
        x0,
        jac=gradient,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-12},
    )
    fractions = solution.x.reshape(m, n)
    fractions = np.clip(fractions, 0.0, None)
    fractions /= fractions.sum(axis=1, keepdims=True)
    return StrategyProfile(fractions)


@dataclass(frozen=True)
class GlobalOptimalScheme(LoadBalancingScheme):
    """The GOS baseline with a selectable per-user split policy."""

    split: SplitPolicy = "sequential"
    name: str = "GOS"

    def allocate(self, system: DistributedSystem) -> SchemeResult:
        loads = global_optimal_loads(system)
        if self.split == "sequential":
            profile = StrategyProfile(sequential_fill_split(system, loads))
        elif self.split == "fair":
            profile = StrategyProfile.from_loads(system, loads)
        elif self.split == "slsqp":
            profile = solve_gos_nlp(system)
        else:  # pragma: no cover - guarded by Literal
            raise ValueError(f"unknown split policy {self.split!r}")
        return evaluate_profile(
            system,
            profile,
            self.name,
            extra={"split": self.split, "optimal_loads": loads},
        )
