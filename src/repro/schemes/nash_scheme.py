"""NASH — the paper's noncooperative scheme behind the common interface.

Wraps the best-reply iteration of :mod:`repro.core.nash` as a
:class:`~repro.schemes.base.LoadBalancingScheme`, so the evaluation
harness can sweep NASH next to PS, GOS and IOS.  The resulting profile is
verified to be an epsilon-Nash equilibrium before being reported — the
scheme's defining guarantee ("optimality of allocation for each user").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.classes import (
    ClassNashSolver,
    aggregate_users,
    class_best_response_regrets,
)
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashSolver,
)
from repro.core.strategy import StrategyProfile
from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile

__all__ = ["NashScheme"]


@dataclass(frozen=True)
class NashScheme(LoadBalancingScheme):
    """The paper's distributed noncooperative scheme.

    Parameters
    ----------
    init:
        ``"proportional"`` for NASH_P (default — the faster variant the
        paper recommends), ``"zero"`` for NASH_0, or a feasible
        :class:`~repro.core.strategy.StrategyProfile` to warm-start the
        best-reply iteration from (continuation across sweep points; see
        :mod:`repro.core.continuation`).  Warm starts converge to the
        same tolerance and are certified by the same
        :func:`~repro.core.equilibrium.best_response_regrets` check.
    tolerance, max_sweeps:
        Forwarded to :class:`~repro.core.nash.NashSolver`.
    aggregate:
        Solve in user-class space (:mod:`repro.core.classes`): users are
        grouped by job rate, the best-reply iteration runs with
        ``(c, n)`` state, and the reported epsilon is the class-space
        certificate — which *is* the per-user epsilon for exact
        grouping.  Identical results on seed sizes, and the only path
        that scales to millions of users (see docs/PERFORMANCE.md).
        Warm starts are contracted into class space first, so sweep
        continuation composes with aggregation.
    """

    init: Initialization | StrategyProfile = "proportional"
    tolerance: float = DEFAULT_TOLERANCE
    max_sweeps: int = DEFAULT_MAX_SWEEPS
    aggregate: bool = False
    name: str = "NASH"

    def warm_started(self, profile: StrategyProfile) -> "NashScheme":
        """This scheme, seeded with ``profile`` instead of its named init."""
        return dataclasses.replace(self, init=profile)

    def allocate(self, system: DistributedSystem) -> SchemeResult:
        if self.aggregate:
            return self._allocate_aggregate(system)
        solver = NashSolver(tolerance=self.tolerance, max_sweeps=self.max_sweeps)
        result = solver.solve(system, self.init)
        certificate = best_response_regrets(system, result.profile)
        return evaluate_profile(
            system,
            result.profile,
            self.name,
            extra={
                "init": (
                    self.init
                    if isinstance(self.init, str)
                    else "warm-start"
                ),
                "iterations": result.iterations,
                "converged": result.converged,
                "final_norm": result.final_norm,
                "epsilon": certificate.epsilon,
            },
        )

    def _allocate_aggregate(self, system: DistributedSystem) -> SchemeResult:
        """Class-space solve: aggregate, iterate on ``(c, n)``, expand."""
        aggregation = aggregate_users(system)
        solver = ClassNashSolver(
            tolerance=self.tolerance, max_sweeps=self.max_sweeps
        )
        if isinstance(self.init, StrategyProfile):
            # Contract a user-space warm start (e.g. sweep continuation)
            # into per-class rows before iterating in class space.
            result = solver.solve(
                aggregation, init=aggregation.contract(self.init)
            )
        else:
            result = solver.solve(aggregation, init=self.init)
        certificate = class_best_response_regrets(
            aggregation, result.class_fractions
        )
        return evaluate_profile(
            system,
            result.expand(),
            self.name,
            extra={
                "init": (
                    self.init
                    if isinstance(self.init, str)
                    else "warm-start"
                ),
                "iterations": result.iterations,
                "converged": result.converged,
                "final_norm": result.final_norm,
                "epsilon": certificate.epsilon,
                "aggregate": True,
                "n_classes": aggregation.n_classes,
                "compression": aggregation.compression,
                "backend": result.backend,
            },
        )
