"""Static load balancing schemes: NASH and the paper's baselines."""

from repro.schemes.base import LoadBalancingScheme, SchemeResult, evaluate_profile
from repro.schemes.cooperative import CooperativeScheme, nash_bargaining_profile
from repro.schemes.global_optimal import (
    GlobalOptimalScheme,
    global_optimal_loads,
    sequential_fill_split,
    solve_gos_nlp,
)
from repro.schemes.individual_optimal import (
    IndividualOptimalScheme,
    flow_deviation_loads,
    wardrop_loads,
    wardrop_response_time,
)
from repro.schemes.nash_scheme import NashScheme
from repro.schemes.proportional import ProportionalScheme, proportional_response_time
from repro.schemes.stackelberg import (
    StackelbergScheme,
    induced_equilibrium_loads,
    stackelberg_total_cost,
)

__all__ = [
    "LoadBalancingScheme",
    "SchemeResult",
    "evaluate_profile",
    "CooperativeScheme",
    "nash_bargaining_profile",
    "GlobalOptimalScheme",
    "global_optimal_loads",
    "sequential_fill_split",
    "solve_gos_nlp",
    "IndividualOptimalScheme",
    "flow_deviation_loads",
    "wardrop_loads",
    "wardrop_response_time",
    "NashScheme",
    "ProportionalScheme",
    "proportional_response_time",
    "StackelbergScheme",
    "induced_equilibrium_loads",
    "stackelberg_total_cost",
    "standard_schemes",
]


def standard_schemes() -> tuple[LoadBalancingScheme, ...]:
    """The four schemes compared throughout the paper's Section 4."""
    return (
        NashScheme(),
        GlobalOptimalScheme(),
        IndividualOptimalScheme(),
        ProportionalScheme(),
    )
