"""System configurations used in the paper's evaluation (Sec. 4.2).

The central configuration is **Table 1**: a heterogeneous system of 16
computers in four speed classes shared by 10 users.  The OCR of the paper
garbles the exact numbers; they are reconstructed here from the legible
fragments ("16 computers with four different processing rates", "at most
ten times faster than the slowest", relative-rate row, jobs/sec row) and
cross-checked against the authors' journal version:

=======================  ====  ====  ====  ====
Relative processing rate    1     2     5    10
Number of computers         6     5     3     2
Processing rate (jobs/s)   10    20    50   100
=======================  ====  ====  ====  ====

Aggregate processing rate: 510 jobs/sec.  Section 4.2.3's heterogeneity
study uses a second family: 16 computers, 2 fast and 14 slow, with the
fast/slow speed ratio (the *speed skewness*) swept from 1 to 20 at
constant 60% utilization.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DistributedSystem

__all__ = [
    "TABLE1_RELATIVE_RATES",
    "TABLE1_COUNTS",
    "TABLE1_BASE_RATE",
    "table1_service_rates",
    "paper_table1_system",
    "skewed_system",
    "user_arrival_rates",
    "homogeneous_system",
    "random_system",
]

#: Table 1, row 1 — relative processing rate of each computer type.
TABLE1_RELATIVE_RATES: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0)
#: Table 1, row 2 — number of computers of each type.
TABLE1_COUNTS: tuple[int, ...] = (6, 5, 3, 2)
#: Processing rate of the slowest computer type (jobs/sec).
TABLE1_BASE_RATE: float = 10.0


def table1_service_rates() -> np.ndarray:
    """The 16 per-computer service rates of Table 1 (fast machines first)."""
    rates = [
        relative * TABLE1_BASE_RATE
        for relative, count in zip(TABLE1_RELATIVE_RATES, TABLE1_COUNTS)
        for _ in range(count)
    ]
    return np.asarray(sorted(rates, reverse=True), dtype=float)


def user_arrival_rates(
    n_users: int, total_rate: float, *, pattern: str = "uniform"
) -> np.ndarray:
    """Split a total arrival rate among users.

    Patterns
    --------
    ``"uniform"``
        Every user generates the same rate (the paper's setting).
    ``"linear"``
        Rates proportional to ``1, 2, ..., m`` — a skewed population used
        by the extension experiments.
    """
    if n_users <= 0:
        raise ValueError("n_users must be positive")
    if total_rate <= 0.0:
        raise ValueError("total rate must be positive")
    if pattern == "uniform":
        return np.full(n_users, total_rate / n_users)
    if pattern == "linear":
        weights = np.arange(1, n_users + 1, dtype=float)
        return total_rate * weights / weights.sum()
    raise ValueError(f"unknown pattern {pattern!r}")


def paper_table1_system(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    pattern: str = "uniform",
) -> DistributedSystem:
    """The Table-1 system at a given utilization (default: Sec. 4.2's 60%).

    ``utilization`` is ``rho = Phi / sum(mu)``, the x-axis of Figure 4.
    """
    mu = table1_service_rates()
    total = utilization * mu.sum()
    phi = user_arrival_rates(n_users, total, pattern=pattern)
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


def skewed_system(
    skewness: float,
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    n_fast: int = 2,
    n_slow: int = 14,
    slow_rate: float = TABLE1_BASE_RATE,
) -> DistributedSystem:
    """The Sec. 4.2.3 heterogeneity family: ``n_fast`` fast + ``n_slow`` slow.

    ``skewness`` is the fast/slow speed ratio (1 = homogeneous).  The
    utilization is held constant as skewness varies, as in Figure 6.
    """
    if skewness < 1.0:
        raise ValueError("speed skewness must be >= 1")
    if n_fast <= 0 or n_slow <= 0:
        raise ValueError("computer counts must be positive")
    mu = np.concatenate(
        [
            np.full(n_fast, skewness * slow_rate),
            np.full(n_slow, slow_rate),
        ]
    )
    total = utilization * mu.sum()
    phi = user_arrival_rates(n_users, total)
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


def homogeneous_system(
    *,
    n_computers: int = 16,
    rate: float = TABLE1_BASE_RATE,
    utilization: float = 0.6,
    n_users: int = 10,
) -> DistributedSystem:
    """All computers identical — the degenerate end of the skewness sweep."""
    mu = np.full(n_computers, float(rate))
    phi = user_arrival_rates(n_users, utilization * mu.sum())
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


def random_system(
    rng: np.random.Generator,
    *,
    n_computers: int = 16,
    n_users: int = 10,
    utilization: float = 0.6,
    rate_range: tuple[float, float] = (10.0, 100.0),
) -> DistributedSystem:
    """Randomized heterogeneous system for property-based testing.

    Service rates are drawn log-uniformly in ``rate_range``; user rates
    are drawn from a Dirichlet split of the target total so the population
    is heterogeneous too.
    """
    lo, hi = rate_range
    if not 0.0 < lo <= hi:
        raise ValueError("invalid rate range")
    mu = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_computers))
    total = utilization * mu.sum()
    shares = rng.dirichlet(np.full(n_users, 2.0))
    phi = np.maximum(shares, 1e-3 / n_users) * total
    phi *= total / phi.sum()
    return DistributedSystem(service_rates=mu, arrival_rates=phi)
