"""Parameter sweeps behind the paper's figures.

Each generator yields ``(parameter_value, DistributedSystem)`` pairs for
one experimental axis:

* :func:`utilization_sweep` — Figure 4 (rho from 10% to 90%);
* :func:`user_count_sweep` — Figure 3 (4 to 32 users);
* :func:`skewness_sweep` — Figure 6 (speed skewness 1 to 20).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.model import DistributedSystem
from repro.workloads.configs import paper_table1_system, skewed_system

__all__ = [
    "DEFAULT_UTILIZATIONS",
    "DEFAULT_USER_COUNTS",
    "DEFAULT_SKEWNESSES",
    "SWEEPS",
    "utilization_sweep",
    "user_count_sweep",
    "skewness_sweep",
    "sweep_points",
]

#: Figure 4's x-axis: system utilization from 10% to 90%.
DEFAULT_UTILIZATIONS: tuple[float, ...] = tuple(
    round(x, 2) for x in np.arange(0.1, 0.91, 0.1)
)
#: Figure 3's x-axis: number of users from 4 to 32.
DEFAULT_USER_COUNTS: tuple[int, ...] = (4, 8, 12, 16, 20, 24, 28, 32)
#: Figure 6's x-axis: max/min speed ratio.
DEFAULT_SKEWNESSES: tuple[float, ...] = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0)


def utilization_sweep(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    *,
    n_users: int = 10,
) -> Iterator[tuple[float, DistributedSystem]]:
    """Table-1 systems across a range of system utilizations (Figure 4)."""
    for rho in utilizations:
        yield float(rho), paper_table1_system(utilization=float(rho), n_users=n_users)


def user_count_sweep(
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    *,
    utilization: float = 0.6,
) -> Iterator[tuple[int, DistributedSystem]]:
    """Table-1 systems with a varying user population (Figure 3).

    The total arrival rate is held constant (fixed utilization); adding
    users divides the same traffic among more selfish decision makers.
    """
    for m in user_counts:
        yield int(m), paper_table1_system(utilization=utilization, n_users=int(m))


def skewness_sweep(
    skewnesses: Sequence[float] = DEFAULT_SKEWNESSES,
    *,
    utilization: float = 0.6,
    n_users: int = 10,
) -> Iterator[tuple[float, DistributedSystem]]:
    """2-fast/14-slow systems across speed skewness values (Figure 6)."""
    for skew in skewnesses:
        yield float(skew), skewed_system(
            float(skew), utilization=utilization, n_users=n_users
        )


#: Registry of the sweep axes, keyed by the short name experiments use.
SWEEPS = {
    "utilization": utilization_sweep,
    "users": user_count_sweep,
    "skewness": skewness_sweep,
}


def sweep_points(
    kind: str, values: Sequence[float] | Sequence[int] | None = None, **kwargs
) -> list[tuple[float | int, DistributedSystem]]:
    """Materialize one sweep axis as a list of ``(parameter, system)`` pairs.

    The list form is what the batched evaluator
    (:func:`repro.experiments.common.run_schemes_sweep`) consumes: every
    pair is picklable, so the points can be fanned out over a process
    pool in one call.  ``kwargs`` pass through to the underlying sweep
    generator (e.g. ``n_users`` or ``utilization``).
    """
    try:
        generator = SWEEPS[kind]
    except KeyError:
        raise KeyError(
            f"unknown sweep {kind!r}; available: {sorted(SWEEPS)}"
        ) from None
    if values is None:
        return list(generator(**kwargs))
    return list(generator(values, **kwargs))
