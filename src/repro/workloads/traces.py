"""Synthetic time-varying workload traces.

The dynamic re-balancing driver (:mod:`repro.core.dynamics`) consumes a
sequence of system snapshots; these generators produce the standard
shapes of demand over time, expressed as per-epoch *system utilizations*
applied to any base system:

* :func:`diurnal_utilizations` — the smooth day/night sinusoid;
* :func:`flash_crowd_utilizations` — a baseline with a sudden plateau
  spike (the "slashdot" event);
* :func:`random_walk_utilizations` — mean-reverting noisy drift
  (Ornstein-Uhlenbeck, discretized), for stress-testing warm starts.

All stay strictly inside the stable region ``(0, 1)`` by construction.

The online engine (:mod:`repro.engine`) consumes *churn traces* instead
of snapshots — lists of event epochs; the ``*_churn_trace`` generators
below compose the same demand shapes with computer failures/reopenings,
per-user demand drift, and flash-crowd arrivals/departures.
:func:`day_in_production_trace` is the canonical composition: a multi-day
diurnal curve with a failure/reopen window, mean-reverting phi drift,
and a flash crowd — every epoch feasible on the surviving fleet by
construction (so a full run certifies end to end).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.model import DistributedSystem
from repro.engine.events import (
    ChurnEpoch,
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetUtilization,
    UserArrival,
    UserDeparture,
)
from repro.workloads.configs import paper_table1_system

__all__ = [
    "day_in_production_trace",
    "diurnal_utilizations",
    "failure_reopen_churn_trace",
    "flash_crowd_churn_trace",
    "flash_crowd_utilizations",
    "merge_churn_traces",
    "phi_drift_churn_trace",
    "random_walk_utilizations",
    "systems_from_utilizations",
    "utilization_churn_trace",
]

_EPS = 1e-3


def _check_band(low: float, high: float) -> None:
    if not 0.0 < low <= high < 1.0:
        raise ValueError("utilization band must satisfy 0 < low <= high < 1")


def diurnal_utilizations(
    n_epochs: int = 24, *, low: float = 0.3, high: float = 0.85
) -> np.ndarray:
    """One day of sinusoidal load: trough ``low``, peak ``high``."""
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    _check_band(low, high)
    phase = np.linspace(0.0, 2.0 * np.pi, n_epochs, endpoint=False)
    mid = 0.5 * (low + high)
    amplitude = 0.5 * (high - low)
    return mid + amplitude * np.sin(phase)


def flash_crowd_utilizations(
    n_epochs: int = 24,
    *,
    baseline: float = 0.4,
    peak: float = 0.9,
    start: int | None = None,
    duration: int | None = None,
) -> np.ndarray:
    """Steady baseline with a sustained spike (defaults: middle third)."""
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    _check_band(baseline, peak)
    if start is None:
        start = n_epochs // 3
    if duration is None:
        duration = max(1, n_epochs // 3)
    if not 0 <= start < n_epochs or duration < 1:
        raise ValueError("spike must lie inside the trace")
    trace = np.full(n_epochs, baseline)
    trace[start : min(n_epochs, start + duration)] = peak
    return trace


def random_walk_utilizations(
    n_epochs: int = 24,
    *,
    mean: float = 0.6,
    volatility: float = 0.08,
    reversion: float = 0.3,
    seed: int | np.random.SeedSequence | np.random.Generator = 0,
    low: float = 0.05,
    high: float = 0.95,
) -> np.ndarray:
    """Mean-reverting noisy load (discretized Ornstein-Uhlenbeck).

    ``rho_{k+1} = rho_k + reversion (mean - rho_k) + volatility xi_k``,
    clipped to ``[low, high]``.

    ``seed`` may be an integer, a :class:`numpy.random.SeedSequence`, or
    an already-constructed :class:`numpy.random.Generator` — callers
    threading a single seeded stream through a whole experiment pass the
    generator directly.
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    _check_band(low, high)
    if not low <= mean <= high:
        raise ValueError("mean must lie inside the clip band")
    if volatility < 0.0 or not 0.0 <= reversion <= 1.0:
        raise ValueError("invalid volatility or reversion")
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = np.random.default_rng(seed)
    trace = np.empty(n_epochs)
    level = mean
    for k in range(n_epochs):
        level += reversion * (mean - level) + volatility * rng.standard_normal()
        level = float(np.clip(level, low, high))
        trace[k] = level
    return trace


def utilization_churn_trace(utilizations) -> list[ChurnEpoch]:
    """Demand curve as a churn trace: one ``SetUtilization`` per epoch."""
    trace: list[ChurnEpoch] = []
    for rho in np.asarray(utilizations, dtype=float):
        if not 0.0 < rho < 1.0:
            raise ValueError("trace utilizations must lie in (0, 1)")
        trace.append((SetUtilization(float(rho)),))
    return trace


def phi_drift_churn_trace(
    n_epochs: int,
    *,
    volatility: float = 0.03,
    reversion: float = 0.3,
    seed: int | np.random.SeedSequence | np.random.Generator = 0,
) -> list[ChurnEpoch]:
    """Mean-reverting multiplicative demand drift, one ``PhiDrift`` per epoch.

    The *log* of the cumulative drift follows a discretized
    Ornstein-Uhlenbeck process around 0, so the per-epoch factors are
    strictly positive and the cumulative drift stays bounded (it never
    walks the system out of the stable region on its own).
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    if volatility < 0.0 or not 0.0 <= reversion <= 1.0:
        raise ValueError("invalid volatility or reversion")
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = np.random.default_rng(seed)
    trace: list[ChurnEpoch] = []
    log_level = 0.0
    for _ in range(n_epochs):
        step = reversion * (0.0 - log_level) + volatility * rng.standard_normal()
        log_level += step
        trace.append((PhiDrift(factor=float(np.exp(step))),))
    return trace


def failure_reopen_churn_trace(
    n_epochs: int,
    failures: Iterable[tuple[int, int, int | None]] = (),
) -> list[ChurnEpoch]:
    """Computer failure/reopen windows as a churn trace.

    ``failures`` is a sequence of ``(computer, fail_epoch, reopen_epoch)``
    triples: the computer goes offline at ``fail_epoch`` and comes back
    at ``reopen_epoch`` (``None`` or past the trace end: never within
    this trace).
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    epochs: list[list[ComputerFailure | ComputerReopen]] = [
        [] for _ in range(n_epochs)
    ]
    for computer, fail_epoch, reopen_epoch in failures:
        if not 0 <= fail_epoch < n_epochs:
            raise ValueError("fail_epoch must lie inside the trace")
        if reopen_epoch is not None and reopen_epoch <= fail_epoch:
            raise ValueError("reopen_epoch must come after fail_epoch")
        epochs[fail_epoch].append(ComputerFailure(computer))
        if reopen_epoch is not None and reopen_epoch < n_epochs:
            epochs[reopen_epoch].append(ComputerReopen(computer))
    return [tuple(events) for events in epochs]


def flash_crowd_churn_trace(
    n_epochs: int,
    *,
    arrival_rates: Sequence[float] = (12.0, 8.0),
    start: int | None = None,
    duration: int | None = None,
    name_prefix: str = "flash",
) -> list[ChurnEpoch]:
    """A flash crowd as population churn: arrival burst, later departure.

    ``len(arrival_rates)`` users named ``{name_prefix}-0..`` arrive
    together at ``start`` and all depart at ``start + duration``
    (defaults: the middle third of the trace, mirroring
    :func:`flash_crowd_utilizations`).  The rates are absolute (jobs/s);
    tune them to the base system's capacity scale.
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    if start is None:
        start = n_epochs // 3
    if duration is None:
        duration = max(1, n_epochs // 3)
    if not 0 <= start < n_epochs or duration < 1:
        raise ValueError("flash crowd must start inside the trace")
    names = tuple(f"{name_prefix}-{j}" for j in range(len(arrival_rates)))
    trace: list[ChurnEpoch] = [() for _ in range(n_epochs)]
    trace[start] = (UserArrival(tuple(float(r) for r in arrival_rates), names),)
    end = start + duration
    if end < n_epochs:
        trace[end] = (UserDeparture(names=names),)
    return trace


def merge_churn_traces(*traces: Sequence[ChurnEpoch]) -> list[ChurnEpoch]:
    """Overlay churn traces epoch by epoch (shorter traces pad with
    empty epochs; within an epoch, events keep argument order)."""
    length = max((len(trace) for trace in traces), default=0)
    merged: list[ChurnEpoch] = []
    for k in range(length):
        events: list = []
        for trace in traces:
            if k < len(trace):
                events.extend(trace[k])
        merged.append(tuple(events))
    return merged


def day_in_production_trace(
    n_epochs: int = 200,
    *,
    low: float = 0.35,
    high: float = 0.8,
    period: int = 24,
    seed: int | np.random.SeedSequence | np.random.Generator = 0,
    drift_volatility: float = 0.03,
    failures: Iterable[tuple[int, int, int | None]] | None = None,
    flash_start: int | None = None,
    flash_duration: int | None = None,
    flash_rates: Sequence[float] = (12.0, 8.0),
) -> list[ChurnEpoch]:
    """The canonical "day in production" churn composition.

    Per epoch, in order: the diurnal ``SetUtilization`` (the ``period``-
    epoch day tiled across the trace), a mean-reverting ``PhiDrift``,
    then any failure/reopen events and flash-crowd churn.  Defaults are
    tuned to the Table-1 fleet: the failed computer is index 15 (the
    slowest, 10 jobs/s), so even the diurnal peak plus drift stays
    strictly feasible on the 15 survivors and every epoch of the run
    certifies.

    ``failures`` defaults to one failure/reopen window in the second
    quarter of the trace; the flash crowd lands in the final third.
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    if period < 1:
        raise ValueError("period must be at least one epoch")
    day = diurnal_utilizations(min(period, n_epochs), low=low, high=high)
    curve = np.resize(day, n_epochs)
    if failures is None:
        fail_at = n_epochs // 4
        reopen_at = fail_at + max(2, n_epochs // 10)
        failures = ((15, fail_at, min(reopen_at, n_epochs - 1)),)
    if flash_start is None:
        flash_start = (2 * n_epochs) // 3
    if flash_duration is None:
        flash_duration = max(2, n_epochs // 12)
    return merge_churn_traces(
        utilization_churn_trace(curve),
        phi_drift_churn_trace(n_epochs, seed=seed, volatility=drift_volatility),
        failure_reopen_churn_trace(n_epochs, failures),
        flash_crowd_churn_trace(
            n_epochs,
            arrival_rates=flash_rates,
            start=flash_start,
            duration=flash_duration,
        ),
    )


def systems_from_utilizations(
    utilizations, *, n_users: int = 10, base: DistributedSystem | None = None
) -> list[DistributedSystem]:
    """Materialize a utilization trace into system snapshots.

    ``base`` defaults to the Table-1 system; its computers are kept and
    the user population rescaled per epoch.
    """
    snapshots = []
    for rho in np.asarray(utilizations, dtype=float):
        if not 0.0 < rho < 1.0:
            raise ValueError("trace utilizations must lie in (0, 1)")
        if base is None:
            snapshots.append(
                paper_table1_system(utilization=float(rho), n_users=n_users)
            )
        else:
            snapshots.append(base.with_utilization(float(rho)))
    return snapshots
