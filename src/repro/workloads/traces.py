"""Synthetic time-varying workload traces.

The dynamic re-balancing driver (:mod:`repro.core.dynamics`) consumes a
sequence of system snapshots; these generators produce the standard
shapes of demand over time, expressed as per-epoch *system utilizations*
applied to any base system:

* :func:`diurnal_utilizations` — the smooth day/night sinusoid;
* :func:`flash_crowd_utilizations` — a baseline with a sudden plateau
  spike (the "slashdot" event);
* :func:`random_walk_utilizations` — mean-reverting noisy drift
  (Ornstein-Uhlenbeck, discretized), for stress-testing warm starts.

All stay strictly inside the stable region ``(0, 1)`` by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DistributedSystem
from repro.workloads.configs import paper_table1_system

__all__ = [
    "diurnal_utilizations",
    "flash_crowd_utilizations",
    "random_walk_utilizations",
    "systems_from_utilizations",
]

_EPS = 1e-3


def _check_band(low: float, high: float) -> None:
    if not 0.0 < low <= high < 1.0:
        raise ValueError("utilization band must satisfy 0 < low <= high < 1")


def diurnal_utilizations(
    n_epochs: int = 24, *, low: float = 0.3, high: float = 0.85
) -> np.ndarray:
    """One day of sinusoidal load: trough ``low``, peak ``high``."""
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    _check_band(low, high)
    phase = np.linspace(0.0, 2.0 * np.pi, n_epochs, endpoint=False)
    mid = 0.5 * (low + high)
    amplitude = 0.5 * (high - low)
    return mid + amplitude * np.sin(phase)


def flash_crowd_utilizations(
    n_epochs: int = 24,
    *,
    baseline: float = 0.4,
    peak: float = 0.9,
    start: int | None = None,
    duration: int | None = None,
) -> np.ndarray:
    """Steady baseline with a sustained spike (defaults: middle third)."""
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    _check_band(baseline, peak)
    if start is None:
        start = n_epochs // 3
    if duration is None:
        duration = max(1, n_epochs // 3)
    if not 0 <= start < n_epochs or duration < 1:
        raise ValueError("spike must lie inside the trace")
    trace = np.full(n_epochs, baseline)
    trace[start : min(n_epochs, start + duration)] = peak
    return trace


def random_walk_utilizations(
    n_epochs: int = 24,
    *,
    mean: float = 0.6,
    volatility: float = 0.08,
    reversion: float = 0.3,
    seed: int | np.random.SeedSequence | np.random.Generator = 0,
    low: float = 0.05,
    high: float = 0.95,
) -> np.ndarray:
    """Mean-reverting noisy load (discretized Ornstein-Uhlenbeck).

    ``rho_{k+1} = rho_k + reversion (mean - rho_k) + volatility xi_k``,
    clipped to ``[low, high]``.

    ``seed`` may be an integer, a :class:`numpy.random.SeedSequence`, or
    an already-constructed :class:`numpy.random.Generator` — callers
    threading a single seeded stream through a whole experiment pass the
    generator directly.
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    _check_band(low, high)
    if not low <= mean <= high:
        raise ValueError("mean must lie inside the clip band")
    if volatility < 0.0 or not 0.0 <= reversion <= 1.0:
        raise ValueError("invalid volatility or reversion")
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = np.random.default_rng(seed)
    trace = np.empty(n_epochs)
    level = mean
    for k in range(n_epochs):
        level += reversion * (mean - level) + volatility * rng.standard_normal()
        level = float(np.clip(level, low, high))
        trace[k] = level
    return trace


def systems_from_utilizations(
    utilizations, *, n_users: int = 10, base: DistributedSystem | None = None
) -> list[DistributedSystem]:
    """Materialize a utilization trace into system snapshots.

    ``base`` defaults to the Table-1 system; its computers are kept and
    the user population rescaled per epoch.
    """
    snapshots = []
    for rho in np.asarray(utilizations, dtype=float):
        if not 0.0 < rho < 1.0:
            raise ValueError("trace utilizations must lie in (0, 1)")
        if base is None:
            snapshots.append(
                paper_table1_system(utilization=float(rho), n_users=n_users)
            )
        else:
            snapshots.append(base.with_utilization(float(rho)))
    return snapshots
