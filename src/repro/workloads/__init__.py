"""Workload and system configuration generators (paper Sec. 4.2, Table 1)."""

from repro.workloads.configs import (
    TABLE1_BASE_RATE,
    TABLE1_COUNTS,
    TABLE1_RELATIVE_RATES,
    homogeneous_system,
    paper_table1_system,
    random_system,
    skewed_system,
    table1_service_rates,
    user_arrival_rates,
)
from repro.workloads.traces import (
    diurnal_utilizations,
    flash_crowd_utilizations,
    random_walk_utilizations,
    systems_from_utilizations,
)
from repro.workloads.sweeps import (
    DEFAULT_SKEWNESSES,
    DEFAULT_USER_COUNTS,
    DEFAULT_UTILIZATIONS,
    skewness_sweep,
    user_count_sweep,
    utilization_sweep,
)

__all__ = [
    "TABLE1_BASE_RATE",
    "TABLE1_COUNTS",
    "TABLE1_RELATIVE_RATES",
    "homogeneous_system",
    "paper_table1_system",
    "random_system",
    "skewed_system",
    "table1_service_rates",
    "user_arrival_rates",
    "DEFAULT_SKEWNESSES",
    "DEFAULT_USER_COUNTS",
    "DEFAULT_UTILIZATIONS",
    "skewness_sweep",
    "user_count_sweep",
    "utilization_sweep",
    "diurnal_utilizations",
    "flash_crowd_utilizations",
    "random_walk_utilizations",
    "systems_from_utilizations",
]
