"""JSON persistence for systems, profiles and results.

A reproduction is only useful if its artifacts can be archived and
compared across runs.  This module round-trips the library's core value
types through plain JSON-compatible dictionaries:

* :class:`~repro.core.model.DistributedSystem`  — rates and names;
* :class:`~repro.core.strategy.StrategyProfile` — the fraction matrix;
* :class:`~repro.schemes.base.SchemeResult`     — allocation + metrics
  (scheme-specific ``extra`` diagnostics are kept when JSON-representable
  and dropped otherwise, recorded under ``"dropped_extras"``);
* :class:`~repro.experiments.common.ExperimentTable` — full artifacts.

Floats survive exactly (JSON carries full double precision); numpy arrays
become nested lists and come back as arrays.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.experiments.common import ExperimentTable
from repro.schemes.base import SchemeResult

__all__ = [
    "system_to_dict",
    "system_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "scheme_result_to_dict",
    "scheme_result_from_dict",
    "table_to_dict",
    "table_from_dict",
    "dump_json",
    "load_json",
]


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to a JSON-compatible value, or raise."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    raise TypeError(f"not JSON-representable: {type(value).__name__}")


# ----------------------------------------------------------------------
# DistributedSystem
# ----------------------------------------------------------------------
def system_to_dict(system: DistributedSystem) -> dict[str, Any]:
    return {
        "kind": "DistributedSystem",
        "service_rates": system.service_rates.tolist(),
        "arrival_rates": system.arrival_rates.tolist(),
        "computer_names": list(system.computer_names),
        "user_names": list(system.user_names),
    }


def system_from_dict(payload: dict[str, Any]) -> DistributedSystem:
    if payload.get("kind") != "DistributedSystem":
        raise ValueError("payload is not a serialized DistributedSystem")
    return DistributedSystem(
        service_rates=np.asarray(payload["service_rates"], dtype=float),
        arrival_rates=np.asarray(payload["arrival_rates"], dtype=float),
        computer_names=tuple(payload.get("computer_names", ())),
        user_names=tuple(payload.get("user_names", ())),
    )


# ----------------------------------------------------------------------
# StrategyProfile
# ----------------------------------------------------------------------
def profile_to_dict(profile: StrategyProfile) -> dict[str, Any]:
    return {
        "kind": "StrategyProfile",
        "fractions": profile.fractions.tolist(),
    }


def profile_from_dict(payload: dict[str, Any]) -> StrategyProfile:
    if payload.get("kind") != "StrategyProfile":
        raise ValueError("payload is not a serialized StrategyProfile")
    return StrategyProfile(np.asarray(payload["fractions"], dtype=float))


# ----------------------------------------------------------------------
# SchemeResult
# ----------------------------------------------------------------------
def scheme_result_to_dict(result: SchemeResult) -> dict[str, Any]:
    extras: dict[str, Any] = {}
    dropped: list[str] = []
    for key, value in result.extra.items():
        try:
            extras[key] = _jsonable(value)
        except TypeError:
            dropped.append(key)
    return {
        "kind": "SchemeResult",
        "scheme": result.scheme,
        "profile": profile_to_dict(result.profile),
        "user_times": result.user_times.tolist(),
        "overall_time": float(result.overall_time),
        "fairness": float(result.fairness),
        "extra": extras,
        "dropped_extras": dropped,
    }


def scheme_result_from_dict(payload: dict[str, Any]) -> SchemeResult:
    if payload.get("kind") != "SchemeResult":
        raise ValueError("payload is not a serialized SchemeResult")
    return SchemeResult(
        scheme=payload["scheme"],
        profile=profile_from_dict(payload["profile"]),
        user_times=np.asarray(payload["user_times"], dtype=float),
        overall_time=float(payload["overall_time"]),
        fairness=float(payload["fairness"]),
        extra=dict(payload.get("extra", {})),
    )


# ----------------------------------------------------------------------
# ExperimentTable
# ----------------------------------------------------------------------
def table_to_dict(table: ExperimentTable) -> dict[str, Any]:
    return {
        "kind": "ExperimentTable",
        "experiment_id": table.experiment_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [_jsonable(dict(row)) for row in table.rows],
        "notes": list(table.notes),
    }


def table_from_dict(payload: dict[str, Any]) -> ExperimentTable:
    if payload.get("kind") != "ExperimentTable":
        raise ValueError("payload is not a serialized ExperimentTable")
    return ExperimentTable(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        columns=tuple(payload["columns"]),
        rows=tuple(payload["rows"]),
        notes=tuple(payload.get("notes", ())),
    )


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
_SERIALIZERS = {
    DistributedSystem: system_to_dict,
    StrategyProfile: profile_to_dict,
    SchemeResult: scheme_result_to_dict,
    ExperimentTable: table_to_dict,
}
_DESERIALIZERS = {
    "DistributedSystem": system_from_dict,
    "StrategyProfile": profile_from_dict,
    "SchemeResult": scheme_result_from_dict,
    "ExperimentTable": table_from_dict,
}


def dump_json(obj, path) -> None:
    """Serialize a supported object to a JSON file."""
    serializer = _SERIALIZERS.get(type(obj))
    if serializer is None:
        raise TypeError(f"cannot serialize {type(obj).__name__}")
    with open(path, "w") as handle:
        json.dump(serializer(obj), handle, indent=2)


def load_json(path):
    """Load any object previously written by :func:`dump_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    kind = payload.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise ValueError(f"unknown payload kind {kind!r}")
    return deserializer(payload)
