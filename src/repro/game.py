"""High-level facade over the load balancing game.

:class:`LoadBalancingGame` bundles the system model, the solvers and the
baselines behind one object so downstream code can ask the natural
questions in one line each::

    game = LoadBalancingGame.from_rates([100, 50, 20], [60, 30])
    eq = game.nash()                      # the paper's equilibrium
    game.price_of_anarchy()               # vs the social optimum
    game.compare()                        # all schemes, one table

Everything here delegates to the underlying modules — the facade adds no
new semantics, only ergonomics — so library users who need control keep
using :mod:`repro.core` and :mod:`repro.schemes` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, TypeVar, cast

import numpy as np

from repro._typing import ArrayLike
from repro.core.equilibrium import EquilibriumCertificate, best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import NashResult, NashSolver
from repro.core.strategy import StrategyProfile
from repro.queueing.metrics import price_of_anarchy as _poa
from repro.schemes import (
    CooperativeScheme,
    GlobalOptimalScheme,
    IndividualOptimalScheme,
    NashScheme,
    ProportionalScheme,
)
from repro.schemes.base import SchemeResult

if TYPE_CHECKING:
    from repro.core.best_response import BestResponse

__all__ = ["LoadBalancingGame"]

_T = TypeVar("_T")


@dataclass
class LoadBalancingGame:
    """One distributed system, all the paper's questions.

    Results of the heavier solvers are memoized per instance; create a
    fresh game (or call :meth:`invalidate`) after changing your mind
    about the system.
    """

    system: DistributedSystem
    tolerance: float = 1e-8
    _cache: dict[str, Any] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(
        cls,
        service_rates: ArrayLike,
        arrival_rates: ArrayLike,
        **kwargs: Any,
    ) -> "LoadBalancingGame":
        """Build straight from rate vectors (jobs/second)."""
        return cls(
            DistributedSystem(
                service_rates=np.asarray(service_rates, dtype=float),
                arrival_rates=np.asarray(arrival_rates, dtype=float),
            ),
            **kwargs,
        )

    def invalidate(self) -> None:
        """Drop memoized solver results."""
        self._cache.clear()

    def _memo(self, key: str, compute: Callable[[], _T]) -> _T:
        if key not in self._cache:
            self._cache[key] = compute()
        return cast(_T, self._cache[key])

    # ------------------------------------------------------------------
    # Solutions
    # ------------------------------------------------------------------
    def nash(self, *, init: str = "proportional") -> NashResult:
        """The noncooperative (Nash) equilibrium — the paper's scheme."""
        return self._memo(
            f"nash:{init}",
            lambda: NashSolver(tolerance=self.tolerance).solve(
                self.system, init  # type: ignore[arg-type]
            ),
        )

    def nash_allocation(self) -> SchemeResult:
        return self._memo(
            "nash_result",
            lambda: NashScheme(tolerance=self.tolerance).allocate(self.system),
        )

    def global_optimal(self, *, split: str = "sequential") -> SchemeResult:
        return self._memo(
            f"gos:{split}",
            lambda: GlobalOptimalScheme(split=split).allocate(  # type: ignore[arg-type]
                self.system
            ),
        )

    def wardrop(self) -> SchemeResult:
        """The individually-optimal (IOS / Wardrop) allocation."""
        return self._memo(
            "ios", lambda: IndividualOptimalScheme().allocate(self.system)
        )

    def proportional(self) -> SchemeResult:
        return self._memo(
            "ps", lambda: ProportionalScheme().allocate(self.system)
        )

    def bargaining(self) -> SchemeResult:
        """The cooperative Nash Bargaining Solution (PS disagreement)."""
        return self._memo(
            "nbs", lambda: CooperativeScheme().allocate(self.system)
        )

    # ------------------------------------------------------------------
    # Questions
    # ------------------------------------------------------------------
    def best_response(self, user: int, profile: StrategyProfile) -> "BestResponse":
        """One user's optimal reply against a profile (OPTIMAL algorithm)."""
        from repro.core.best_response import best_response

        return best_response(self.system, profile, user)

    def verify(self, profile: StrategyProfile) -> EquilibriumCertificate:
        """Constructive equilibrium certificate for any feasible profile."""
        return best_response_regrets(self.system, profile)

    def price_of_anarchy(self) -> float:
        """D(NASH)/D(GOS) — the efficiency cost of selfishness."""
        return _poa(
            self.nash_allocation().overall_time,
            self.global_optimal().overall_time,
        )

    def compare(self) -> dict[str, SchemeResult]:
        """All five schemes' allocations, keyed by scheme name."""
        results = [
            self.nash_allocation(),
            self.global_optimal(),
            self.wardrop(),
            self.proportional(),
            self.bargaining(),
        ]
        return {result.scheme: result for result in results}

    def summary(self) -> str:
        """Human-readable comparison of all schemes."""
        lines = [
            f"LoadBalancingGame: {self.system.n_computers} computers, "
            f"{self.system.n_users} users, "
            f"utilization {self.system.system_utilization:.0%}",
            f"{'scheme':8s} {'overall time':>14s} {'fairness':>9s} "
            f"{'worst user':>11s}",
        ]
        for name, result in self.compare().items():
            lines.append(
                f"{name:8s} {result.overall_time:14.6f} "
                f"{result.fairness:9.4f} "
                f"{float(result.user_times.max()):11.6f}"
            )
        lines.append(f"price of anarchy: {self.price_of_anarchy():.4f}")
        return "\n".join(lines)
