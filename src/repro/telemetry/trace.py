"""The tracer: one handle bundling a sink and a metrics registry.

Instrumented code takes an optional ``tracer`` argument and falls back
to the *ambient* tracer (:func:`current_tracer`), which defaults to the
module-level :data:`DISABLED` singleton.  Every tracer method starts
with an ``enabled`` check, so disabled telemetry costs a single branch —
the no-op path the bench gate protects (docs/PERFORMANCE.md).

Typical wiring::

    from repro.telemetry import trace_to_file, use_tracer

    with trace_to_file("run.trace.jsonl") as tracer, use_tracer(tracer):
        compute_nash_equilibrium(system)   # picks the tracer up ambiently

or explicitly, without touching the ambient state::

    tracer = Tracer(InMemorySink())
    solver.solve(system, tracer=tracer)
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import JsonlSink, NullSink, TraceSink
from repro.telemetry.events import TraceEvent

__all__ = [
    "Tracer",
    "DISABLED",
    "current_tracer",
    "use_tracer",
    "trace_to_file",
]


class Tracer:
    """Emit structured events to a sink and aggregate metrics.

    Parameters
    ----------
    sink:
        Destination for emitted events; ``None`` means a fresh
        :class:`~repro.telemetry.sinks.NullSink` (metrics-only tracing).
    registry:
        Metrics namespace; a fresh one is created when omitted.
    enabled:
        A disabled tracer ignores every call; instrumentation guards its
        own hot loops with :attr:`enabled` so field construction is also
        skipped.
    """

    __slots__ = ("sink", "registry", "enabled", "_seq")

    def __init__(
        self,
        sink: TraceSink | None = None,
        *,
        registry: MetricsRegistry | None = None,
        enabled: bool = True,
    ):
        self.sink: TraceSink = sink if sink is not None else NullSink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.enabled = bool(enabled)
        self._seq = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def emit(self, name: str, /, **fields: Any) -> None:
        """Emit one structured event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(seq=self._seq, name=name, fields=fields)
        self._seq += 1
        self.sink.emit(event)

    @property
    def events_emitted(self) -> int:
        return self._seq

    # ------------------------------------------------------------------
    # Metrics conveniences
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.histogram(name).observe(value)

    def flush_metrics(self) -> None:
        """Emit the registry snapshot as a ``telemetry.metrics`` event."""
        if self.enabled and len(self.registry):
            self.emit("telemetry.metrics", **self.registry.snapshot())

    def close(self) -> None:
        self.sink.close()


#: The ambient default: a permanently disabled tracer.
DISABLED = Tracer(enabled=False)

#: Ambient tracer stack; the top is what :func:`current_tracer` returns.
_ACTIVE: list[Tracer] = [DISABLED]


def current_tracer() -> Tracer:
    """The innermost tracer installed by :func:`use_tracer` (or DISABLED)."""
    return _ACTIVE[-1]


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient default within the block."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()


@contextmanager
def trace_to_file(
    path: str | Path, *, registry: MetricsRegistry | None = None
) -> Iterator[Tracer]:
    """A tracer writing JSONL to ``path`` for the duration of the block.

    On exit the metrics snapshot is flushed into the trace as its final
    event and the file is closed.  Compose with :func:`use_tracer` to
    also make it the ambient default.
    """
    tracer = Tracer(JsonlSink(path), registry=registry)
    try:
        yield tracer
    finally:
        tracer.flush_metrics()
        tracer.close()
