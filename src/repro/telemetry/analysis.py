"""Trace post-processing: the read side of the observability layer.

Pure functions from an ordered event sequence (as loaded by
:func:`repro.telemetry.sinks.read_trace`) to the summaries the
``repro-trace`` CLI renders.  The key guarantee, pinned by the test
suite: a traced run's convergence history and per-kind message counts
are reconstructible from the JSONL trace *alone* — byte-identical norms
(floats round-trip exactly through JSON) and counts that sum to the
driver's ``ProtocolOutcome.messages_sent``.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.events import TraceEvent

__all__ = [
    "class_summary",
    "engine_summary",
    "event_counts",
    "metrics_snapshot",
    "reconstruct_norm_history",
    "pool_summary",
    "protocol_summary",
    "sim_summary",
    "solver_summary",
    "sweep_summary",
    "trace_summary",
]

#: Event names carrying one completed sweep's convergence norm.
_SWEEP_EVENTS = ("solver.sweep", "protocol.sweep", "solver.class_sweep")


def event_counts(events: Iterable[TraceEvent]) -> dict[str, int]:
    """How many times each event name occurs, sorted by name."""
    tally: TallyCounter[str] = TallyCounter(e.name for e in events)
    return dict(sorted(tally.items()))


def metrics_snapshot(
    events: Iterable[TraceEvent],
) -> Mapping[str, Any] | None:
    """The last ``telemetry.metrics`` snapshot in the trace, if any."""
    snapshot: Mapping[str, Any] | None = None
    for event in events:
        if event.name == "telemetry.metrics":
            snapshot = event.fields
    return snapshot


def reconstruct_norm_history(events: Sequence[TraceEvent]) -> list[float]:
    """Rebuild the run's ``norm_history`` from sweep events alone.

    ``solver.sweep`` / ``protocol.sweep`` events carry ``index`` (the
    history position) and ``norm``.  A ``protocol.restore`` of the
    initiator (rank 0) rolls its history back to the checkpointed prefix
    — ``norm_history_length`` — after which re-executed sweeps append
    again, exactly as :class:`~repro.distributed.checkpoint.CheckpointStore`
    replays the live object.
    """
    norms: list[float] = []
    for event in events:
        if event.name == "protocol.restore":
            if int(event.fields.get("rank", -1)) == 0:
                length = int(
                    event.fields.get("norm_history_length", len(norms))
                )
                del norms[length:]
        elif event.name in _SWEEP_EVENTS:
            index = int(event.fields["index"])
            norm = float(event.fields["norm"])
            if index == len(norms):
                norms.append(norm)
            elif index < len(norms):
                # Redo of a rolled-back sweep: overwrite and truncate.
                norms[index] = norm
                del norms[index + 1:]
            else:
                raise ValueError(
                    f"trace skips norm history index {len(norms)} "
                    f"(got {index}): events missing or out of order"
                )
    return norms


def protocol_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Message/overhead accounting of the distributed protocol run(s)."""
    per_kind: TallyCounter[str] = TallyCounter()
    token_hops = 0
    retransmissions = 0
    suspicions = 0
    checkpoints = 0
    restores = 0
    faults: list[dict[str, Any]] = []
    reopens = 0
    done: dict[str, Any] | None = None
    for event in events:
        if event.name == "protocol.deliver":
            kind = str(event.fields["kind"])
            per_kind[kind] += 1
            if kind == "token":
                token_hops += 1
        elif event.name == "protocol.sample":
            # One event per circulation of the sampled protocol, carrying
            # that sweep's ring-wide poll cost: folding the polls into the
            # per-kind tally makes ``messages_delivered`` equal the
            # sampled driver's honest ``messages_sent`` (bus + probes).
            per_kind["probe"] += int(event.fields.get("polls", 0))
        elif event.name == "protocol.retransmit":
            retransmissions += 1
        elif event.name == "protocol.suspect":
            suspicions += 1
        elif event.name == "protocol.checkpoint":
            checkpoints += 1
        elif event.name == "protocol.restore":
            restores += 1
        elif event.name == "protocol.fault":
            faults.append(dict(event.fields))
        elif event.name == "protocol.reopen":
            reopens += 1
        elif event.name == "protocol.done":
            done = dict(event.fields)
    return {
        "messages_by_kind": dict(sorted(per_kind.items())),
        "messages_delivered": int(sum(per_kind.values())),
        "token_hops": token_hops,
        "retransmissions": retransmissions,
        "suspicions": suspicions,
        "checkpoint_captures": checkpoints,
        "checkpoint_restores": restores,
        "faults": faults,
        "ring_reopens": reopens,
        "norm_history": reconstruct_norm_history(events),
        "outcome": done,
    }


def solver_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Convergence/timing view of the sequential solver's sweeps."""
    sweeps: list[dict[str, Any]] = []
    done: dict[str, Any] | None = None
    sample: dict[str, Any] | None = None
    for event in events:
        if event.name == "solver.sweep":
            sweeps.append(dict(event.fields))
        elif event.name == "solver.done":
            done = dict(event.fields)
        elif event.name == "solver.sample":
            sample = dict(event.fields)
    return {
        "sweeps": sweeps,
        "norm_history": [float(s["norm"]) for s in sweeps],
        "total_elapsed_s": float(
            sum(float(s.get("elapsed_s", 0.0)) for s in sweeps)
        ),
        "sample": sample,
        "outcome": done,
    }


def sim_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Arrival/completion/outage accounting of simulation runs."""
    outages: list[dict[str, Any]] = []
    runs: list[dict[str, Any]] = []
    for event in events:
        if event.name == "sim.outage":
            outages.append(dict(event.fields))
        elif event.name == "sim.run":
            runs.append(dict(event.fields))
    return {
        "runs": runs,
        "arrivals": int(sum(int(r.get("arrivals", 0)) for r in runs)),
        "completions": int(
            sum(int(r.get("completions", 0)) for r in runs)
        ),
        "warmup_discards": int(
            sum(int(r.get("warmup_discards", 0)) for r in runs)
        ),
        "outage_windows": outages,
    }


def sweep_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Parameter-sweep view: per-point solves recorded by the harness.

    Rolls up the ``sweep.point`` events
    :func:`repro.experiments.common.run_schemes_sweep` emits — one per
    (sweep point, scheme) — into per-scheme point/iteration/warm-start
    totals, so saved sweeps are visible in ``repro-trace summary``.
    """
    points: list[dict[str, Any]] = []
    for event in events:
        if event.name == "sweep.point":
            points.append(dict(event.fields))
    by_scheme: dict[str, dict[str, Any]] = {}
    for point in points:
        scheme = str(point.get("scheme", "?"))
        entry = by_scheme.setdefault(
            scheme, {"points": 0, "iterations": 0, "warm_started": 0}
        )
        entry["points"] += 1
        iterations = point.get("iterations")
        if iterations is not None:
            entry["iterations"] += int(iterations)
        if point.get("warm_started"):
            entry["warm_started"] += 1
    return {
        "points": points,
        "n_points": len(points),
        "by_scheme": by_scheme,
        "continuation": any(p.get("continuation") for p in points),
    }


def pool_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Zero-copy data-plane view (:mod:`repro.experiments.shm`).

    Rolls up the ``pool.shm.publish`` events (one per shared block) and
    the ``pool.shm.close`` events (one per plane lifetime, carrying the
    plane's final :class:`~repro.experiments.shm.PlaneStats`) into one
    overview: blocks and bytes actually shared, bytes saved by content
    dedupe and fan-out (versus re-pickling per task), and how often the
    plane fell back to inline arrays.
    """
    publishes: list[dict[str, Any]] = []
    closes: list[dict[str, Any]] = []
    for event in events:
        if event.name == "pool.shm.publish":
            publishes.append(dict(event.fields))
        elif event.name == "pool.shm.close":
            closes.append(dict(event.fields))
    return {
        "publishes": publishes,
        "n_blocks": len(publishes),
        "bytes_published": sum(int(p.get("nbytes", 0)) for p in publishes),
        "n_planes": len(closes),
        "bytes_shared": sum(int(c.get("bytes_shared", 0)) for c in closes),
        "bytes_saved": sum(int(c.get("bytes_saved", 0)) for c in closes),
        "cache_hits": sum(int(c.get("cache_hits", 0)) for c in closes),
        "fallbacks": sum(int(c.get("fallbacks", 0)) for c in closes),
    }


def class_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Class-space solver and sharded-solve view.

    Rolls up the ``solver.class_*`` events a
    :class:`~repro.core.classes.ClassNashSolver` run emits (start /
    per-sweep norms / done) and the coordinator-side ``shard.round`` /
    ``shard.solve`` events of :func:`~repro.core.sharding.solve_sharded`
    into one overview: aggregation shape (classes, users, compression),
    the user-weighted norm history (reconstructible exactly — the same
    float round-trip guarantee the per-user solver enjoys), the chosen
    kernel backend, and the per-round global certificate epsilons of a
    sharded run.
    """
    starts: list[dict[str, Any]] = []
    sweeps: list[dict[str, Any]] = []
    dones: list[dict[str, Any]] = []
    rounds: list[dict[str, Any]] = []
    shard_solves: list[dict[str, Any]] = []
    for event in events:
        if event.name == "solver.class_start":
            starts.append(dict(event.fields))
        elif event.name == "solver.class_sweep":
            sweeps.append(dict(event.fields))
        elif event.name == "solver.class_done":
            dones.append(dict(event.fields))
        elif event.name == "shard.round":
            rounds.append(dict(event.fields))
        elif event.name == "shard.solve":
            shard_solves.append(dict(event.fields))
    last_start = starts[-1] if starts else {}
    return {
        "solves": dones,
        "n_solves": len(dones),
        "classes": int(last_start.get("classes", 0)),
        "users": int(last_start.get("users", 0)),
        "compression": float(last_start.get("compression", 0.0)),
        "backend": str(last_start.get("backend", "numpy")),
        "norm_history": [float(s["norm"]) for s in sweeps],
        "total_sweeps": len(sweeps),
        "total_elapsed_s": float(
            sum(float(s.get("elapsed_s", 0.0)) for s in sweeps)
        ),
        "shard_rounds": rounds,
        "n_rounds": len(rounds),
        "n_shard_solves": len(shard_solves),
        "epsilon_history": [float(r["epsilon"]) for r in rounds],
        "final_epsilon": (
            float(rounds[-1]["epsilon"]) if rounds else None
        ),
    }


#: Sweeps-per-epoch histogram bucket upper edges (powers of two).
_SWEEP_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


def _sweep_bucket_label(sweeps: int) -> str:
    previous = None
    for edge in _SWEEP_BUCKETS:
        if sweeps <= edge:
            if previous is None or previous + 1 == edge:
                return str(edge)
            return f"{previous + 1}-{edge}"
        previous = edge
    return f">{_SWEEP_BUCKETS[-1]}"


def engine_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Online-engine view: epoch statuses, degraded windows, SLA totals.

    Rolls up the ``engine.epoch`` events the
    :class:`repro.engine.OnlineEquilibriumEngine` emits — one per
    processed epoch — into the operational overview ``repro-trace
    engine`` renders: status counts, contiguous degraded-mode windows
    (epoch index ranges where part or all of the fleet was down),
    SLA-violation totals, warm-start/certification coverage, and a
    power-of-two sweeps-per-epoch histogram.
    """
    epochs: list[dict[str, Any]] = []
    for event in events:
        if event.name == "engine.epoch":
            epochs.append(dict(event.fields))
    statuses = [str(e.get("status", "?")) for e in epochs]
    status_counts: TallyCounter[str] = TallyCounter(statuses)
    windows: list[tuple[int, int]] = []
    for epoch, status in zip(epochs, statuses):
        index = int(epoch.get("index", len(windows)))
        if status in ("degraded", "exhausted"):
            if windows and windows[-1][1] == index - 1:
                windows[-1] = (windows[-1][0], index)
            else:
                windows.append((index, index))
    solvable = [e for e, s in zip(epochs, statuses) if s in ("ok", "degraded")]
    histogram: TallyCounter[str] = TallyCounter(
        _sweep_bucket_label(int(e.get("sweeps", 0))) for e in epochs
    )
    latencies = [float(e.get("latency_s", 0.0)) for e in epochs]
    return {
        "epochs": epochs,
        "n_epochs": len(epochs),
        "status_counts": dict(sorted(status_counts.items())),
        "degraded_windows": [list(window) for window in windows],
        "degraded_mode_epochs": int(
            status_counts["degraded"] + status_counts["exhausted"]
        ),
        "sla_violations": int(
            sum(int(e.get("sla_violations", 0)) for e in epochs)
        ),
        "sla_violation_epochs": int(
            sum(1 for e in epochs if e.get("sla_violations"))
        ),
        "warm_started": int(sum(1 for e in epochs if e.get("warm_started"))),
        "certified": int(sum(1 for e in solvable if e.get("certified"))),
        "solvable_epochs": len(solvable),
        "all_certified": all(e.get("certified") for e in solvable),
        "total_sweeps": int(sum(int(e.get("sweeps", 0)) for e in epochs)),
        "sweeps_histogram": dict(
            sorted(
                histogram.items(),
                key=lambda item: float(
                    item[0].lstrip(">").split("-")[-1]
                ),
            )
        ),
        "total_latency_s": float(sum(latencies)),
        "max_latency_s": float(max(latencies, default=0.0)),
        "errors": [
            str(e["error"]) for e in epochs if e.get("error") is not None
        ],
    }


def trace_summary(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Top-level overview: event counts plus the final metrics snapshot."""
    return {
        "n_events": len(events),
        "event_counts": event_counts(events),
        "metrics": metrics_snapshot(events),
    }
