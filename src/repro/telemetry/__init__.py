"""repro.telemetry — first-class observability for solver, protocol, sim.

The paper's whole Section 4 is measurement: convergence norms per
iteration (Fig. 2), message counts for the distributed NASH protocol,
simulated response times.  This package makes those observations a
structural part of the codebase instead of ad hoc prints:

* a metrics registry (:mod:`repro.telemetry.metrics`) — deterministic
  counters, gauges and fixed-bound histograms;
* a structured trace-event API (:mod:`repro.telemetry.events`,
  :mod:`repro.telemetry.sinks`) — JSONL on disk, in-memory for tests,
  a no-op sink as the zero-cost default;
* a :class:`~repro.telemetry.trace.Tracer` handle threaded through the
  three hot layers (``NashSolver.solve``, the distributed runtime, the
  sim engine), ambient via :func:`~repro.telemetry.trace.use_tracer`;
* read-side analysis (:mod:`repro.telemetry.analysis`) and the
  ``repro-trace`` CLI (:mod:`repro.telemetry.cli`).

See docs/OBSERVABILITY.md for the trace schema and usage tour.

>>> from repro import compute_nash_equilibrium, paper_table1_system
>>> from repro.telemetry import InMemorySink, Tracer, use_tracer
>>> sink = InMemorySink()
>>> with use_tracer(Tracer(sink)):
...     result = compute_nash_equilibrium(paper_table1_system(utilization=0.6))
>>> [e.fields["norm"] for e in sink.events if e.name == "solver.sweep"] == list(result.norm_history)
True
"""

from repro.telemetry.analysis import (
    event_counts,
    metrics_snapshot,
    protocol_summary,
    reconstruct_norm_history,
    sim_summary,
    solver_summary,
    sweep_summary,
    trace_summary,
)
from repro.telemetry.events import TraceEvent, jsonable
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TraceSink,
    iter_trace,
    read_trace,
)
from repro.telemetry.trace import (
    DISABLED,
    Tracer,
    current_tracer,
    trace_to_file,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "jsonable",
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "read_trace",
    "iter_trace",
    "Tracer",
    "DISABLED",
    "current_tracer",
    "use_tracer",
    "trace_to_file",
    "event_counts",
    "metrics_snapshot",
    "reconstruct_norm_history",
    "protocol_summary",
    "sim_summary",
    "solver_summary",
    "sweep_summary",
    "trace_summary",
]
