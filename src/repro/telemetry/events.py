"""Structured trace events.

A trace is an ordered sequence of :class:`TraceEvent` records; each
carries a monotone sequence number (assigned by the
:class:`~repro.telemetry.trace.Tracer`), a dotted event name
(``solver.sweep``, ``protocol.deliver``, ``sim.outage`` …) and a flat
mapping of JSON-serializable fields.  The JSONL wire form flattens the
fields into the top-level object next to the two reserved keys::

    {"seq": 12, "event": "solver.sweep", "index": 3, "norm": 0.0125}

Floats survive the round-trip exactly: ``json`` serializes them with
``repr``, whose shortest-round-trip guarantee means a reloaded trace
reconstructs the very ``norm_history`` values the solver recorded — the
property the acceptance tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["DECLARED_EVENTS", "RESERVED_KEYS", "TraceEvent", "jsonable"]

#: Top-level JSONL keys that belong to the envelope, not the payload.
RESERVED_KEYS: frozenset[str] = frozenset({"seq", "event"})

#: The trace vocabulary: every event kind any instrumented layer may
#: emit, mapped to the ``repro-trace`` view that surfaces it.  This is
#: the observability contract repro-lint's R010 enforces — an event
#: emitted under a name missing from this mapping is invisible to all
#: trace analysis, so adding an emit site requires declaring the kind
#: here (and teaching the covering view about it).
DECLARED_EVENTS: dict[str, str] = {
    # online equilibrium engine (docs/OPERATIONS.md)
    "engine.start": "engine",
    "engine.event": "engine",
    "engine.epoch": "engine",
    # distributed NASH protocol drivers (faults/chaos/node)
    "protocol.start": "protocol",
    "protocol.sweep": "protocol",
    "protocol.deliver": "protocol",
    "protocol.retransmit": "protocol",
    "protocol.suspect": "protocol",
    "protocol.checkpoint": "protocol",
    "protocol.restore": "protocol",
    "protocol.fault": "protocol",
    "protocol.reopen": "protocol",
    # sampled (power-of-k) protocol: per-circulation poll accounting
    "protocol.sample": "protocol",
    "protocol.done": "protocol",
    # NashSolver.solve instrumentation
    "solver.start": "summary",
    "solver.sweep": "convergence",
    "solver.done": "summary",
    # sampled (power-of-k) solve certificate: k, polls, true epsilon
    "solver.sample": "summary",
    # ClassNashSolver (class-space) instrumentation
    "solver.class_start": "summary",
    "solver.class_sweep": "convergence",
    "solver.class_done": "summary",
    # sharded class-space solve (coordinator-side)
    "shard.solve": "summary",
    "shard.round": "summary",
    # simulation engine
    "sim.run": "summary",
    "sim.outage": "summary",
    # sweep evaluator and metrics flushes
    "sweep.point": "summary",
    "telemetry.metrics": "summary",
    # zero-copy shared-memory data plane (repro.experiments.shm)
    "pool.shm.publish": "summary",
    "pool.shm.close": "summary",
}


def jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (recursively) into JSON-native types."""
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured observation in a trace."""

    seq: int
    name: str
    fields: Mapping[str, Any]

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("sequence numbers are nonnegative")
        if not self.name:
            raise ValueError("event name must be nonempty")
        clash = RESERVED_KEYS & set(self.fields)
        if clash:
            raise ValueError(
                f"fields shadow reserved keys: {sorted(clash)}"
            )

    def to_json_object(self) -> dict[str, Any]:
        """The flat JSONL object form."""
        record: dict[str, Any] = {"seq": self.seq, "event": self.name}
        for key, value in self.fields.items():
            record[key] = jsonable(value)
        return record

    @classmethod
    def from_json_object(cls, record: Mapping[str, Any]) -> "TraceEvent":
        try:
            seq = int(record["seq"])
            name = str(record["event"])
        except KeyError as missing:
            raise ValueError(
                f"trace record is missing reserved key {missing}"
            ) from None
        fields = {
            key: value
            for key, value in record.items()
            if key not in RESERVED_KEYS
        }
        return cls(seq=seq, name=name, fields=fields)
