"""Lightweight, deterministic metrics primitives.

The observability layer (docs/OBSERVABILITY.md) needs aggregates that are
a pure function of the instrumented run: a replayed ``(model, seed)``
configuration must produce bit-identical counters and histogram buckets,
so CI can diff snapshots across machines.  Everything here is therefore
plain in-process arithmetic — no clocks, no sampling, no background
threads — and every snapshot is emitted with sorted keys.

Three primitives, mirroring the conventional metrics vocabulary:

* :class:`Counter` — monotonically increasing count (messages sent,
  sweeps executed, jobs completed);
* :class:`Gauge` — last-written value (current sweep, online computers);
* :class:`Histogram` — fixed-bound bucket counts plus exact ``count`` /
  ``total`` / ``min`` / ``max`` moments (kernel timings, per-sweep
  norms).  Bounds are fixed at construction, so aggregation never
  depends on the order or range of observations.

:class:`MetricsRegistry` is a get-or-create namespace for all three; the
:class:`~repro.telemetry.trace.Tracer` owns one and serializes its
snapshot into the trace as a ``telemetry.metrics`` event.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIMING_BOUNDS",
]

#: Default histogram bounds for kernel timings (seconds): powers of ten
#: from a microsecond to ten seconds — fixed so aggregation is stable.
DEFAULT_TIMING_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bound bucketed distribution with exact moments.

    ``bounds`` are inclusive upper bucket edges in strictly increasing
    order; an observation larger than the last bound lands in the
    overflow bucket.  Because the bounds never adapt to the data, two
    runs that observe the same multiset of values — in any order —
    produce identical snapshots (the "fixed seeds-safe aggregation" the
    experiments rely on).
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self, name: str, bounds: Iterable[float] = DEFAULT_TIMING_BOUNDS
    ):
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("histogram bounds must strictly increase")
        self.name = name
        self.bounds = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create namespace for counters, gauges and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._require_free(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._require_free(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_TIMING_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._require_free(name)
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def _require_free(self, name: str) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                raise ValueError(
                    f"metric name {name!r} already registered with a "
                    "different type"
                )

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def snapshot(self) -> dict[str, object]:
        """JSON-ready snapshot of every metric, keys sorted."""
        return {
            "counters": {
                name: metric.snapshot()
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.snapshot()
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.snapshot()
                for name, metric in sorted(self._histograms.items())
            },
        }
