"""Trace sinks: where emitted events go.

Three implementations cover the whole lifecycle:

* :class:`NullSink` — swallows everything; the default, so instrumented
  code paths cost one predictable branch when telemetry is off;
* :class:`InMemorySink` — keeps :class:`~repro.telemetry.events.TraceEvent`
  objects in a list, for tests and programmatic analysis;
* :class:`JsonlSink` — appends one JSON object per line to a file (or
  any writable text handle), the durable form read back by
  :func:`read_trace` and the ``repro-trace`` CLI.

Sinks never timestamp events: a trace is a pure function of the run that
produced it, so replays diff cleanly (wall-clock durations appear only
as explicit *fields* written by instrumentation that is allowed to read
the host clock, e.g. the solver's kernel timings).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator

from repro.telemetry.events import TraceEvent

__all__ = [
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "read_trace",
    "iter_trace",
]


class TraceSink:
    """Base sink: accepts events, optionally flushes/closes resources."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:  # noqa: B027 - optional hook
        """Release any resource held by the sink (idempotent)."""


class NullSink(TraceSink):
    """Discards every event — the zero-cost default."""

    __slots__ = ()

    def emit(self, event: TraceEvent) -> None:
        pass


class InMemorySink(TraceSink):
    """Accumulates events in memory (tests, inline analysis)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Writes one JSON object per event line to ``path`` (or a handle).

    The sink owns (and closes) handles it opened itself; a caller-provided
    handle is left open on :meth:`close` so it can keep writing around the
    traced region.
    """

    __slots__ = ("_handle", "_owns_handle")

    def __init__(self, target: str | Path | IO[str]):
        if isinstance(target, (str, Path)):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(
            json.dumps(event.to_json_object(), sort_keys=False) + "\n"
        )

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def iter_trace(path: str | Path) -> Iterator[TraceEvent]:
    """Stream the events of a JSONL trace file in order."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: invalid trace line: {exc}"
                ) from None
            yield TraceEvent.from_json_object(record)


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Load a whole JSONL trace file into memory."""
    return list(iter_trace(path))
