"""The ``repro-trace`` command-line interface.

Renders summaries of a JSONL trace file (see docs/OBSERVABILITY.md)::

    repro-trace summary run.trace.jsonl          # event/metric overview
    repro-trace convergence run.trace.jsonl      # norm history per sweep
    repro-trace protocol run.trace.jsonl --json  # message accounting

Exit status: 0 on success, 1 when the trace holds no data for the
requested view, 2 on usage errors (missing/corrupt trace file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.telemetry.analysis import (
    class_summary,
    engine_summary,
    pool_summary,
    protocol_summary,
    reconstruct_norm_history,
    sim_summary,
    solver_summary,
    sweep_summary,
    trace_summary,
)
from repro.telemetry.events import TraceEvent
from repro.telemetry.sinks import read_trace

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Summarize a repro telemetry trace (JSONL) — convergence "
            "norms, protocol message accounting, simulation counters."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command, description in (
        ("summary", "event counts, metrics snapshot, per-layer overview"),
        ("convergence", "reconstructed norm history, one line per sweep"),
        ("protocol", "per-kind message counts and overhead accounting"),
        ("engine", "online-engine epochs, degraded windows, SLA totals"),
    ):
        sub = subparsers.add_parser(command, help=description)
        sub.add_argument("trace", help="path to a .trace.jsonl file")
        sub.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of text",
        )
    return parser


def _format_bytes(n: int) -> str:
    """Human-scale byte count (binary units, one decimal)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{n}B"
        value /= 1024.0
    return f"{n}B"  # pragma: no cover - unreachable


def _render_summary(events: list[TraceEvent]) -> tuple[dict[str, Any], str]:
    payload: dict[str, Any] = trace_summary(events)
    solver = solver_summary(events)
    protocol = protocol_summary(events)
    sim = sim_summary(events)
    lines = [f"events: {payload['n_events']}"]
    for name, count in payload["event_counts"].items():
        lines.append(f"  {name:<24} {count}")
    if solver["sweeps"]:
        lines.append(
            f"solver: {len(solver['sweeps'])} sweeps, "
            f"final norm {solver['norm_history'][-1]:.3g}, "
            f"{solver['total_elapsed_s']:.4f}s in best replies"
        )
    if solver["sample"] is not None:
        sample = solver["sample"]
        lines.append(
            f"sampled: k={sample.get('k')}/{sample.get('computers')} "
            f"computers, {sample.get('polls')} polls, "
            f"true epsilon {float(sample.get('epsilon', 0.0)):.3g}"
        )
    if protocol["messages_delivered"]:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in protocol["messages_by_kind"].items()
        )
        lines.append(
            f"protocol: {protocol['messages_delivered']} messages "
            f"({kinds}), {protocol['retransmissions']} retransmissions"
        )
    if sim["runs"]:
        lines.append(
            f"sim: {len(sim['runs'])} runs, {sim['arrivals']} arrivals, "
            f"{sim['completions']} completions "
            f"({sim['warmup_discards']} warm-up discards), "
            f"{len(sim['outage_windows'])} outage edges"
        )
    sweeps = sweep_summary(events)
    if sweeps["n_points"]:
        per_scheme = ", ".join(
            f"{scheme}={entry['points']}p/{entry['iterations']}it"
            + (f"/{entry['warm_started']}warm" if entry["warm_started"] else "")
            for scheme, entry in sorted(sweeps["by_scheme"].items())
        )
        mode = "continuation" if sweeps["continuation"] else "cold"
        lines.append(
            f"sweeps: {sweeps['n_points']} point solves ({mode}): {per_scheme}"
        )
    classes = class_summary(events)
    if classes["n_solves"] or classes["n_rounds"]:
        shape = (
            f"{classes['classes']} classes / {classes['users']} users "
            f"({classes['compression']:.0f}x, {classes['backend']})"
        )
        if classes["n_rounds"]:
            lines.append(
                f"class-space: {classes['n_solves']} solves, "
                f"{classes['total_sweeps']} sweeps, {shape}; "
                f"sharded: {classes['n_rounds']} rounds / "
                f"{classes['n_shard_solves']} shard solves, "
                f"final epsilon {classes['final_epsilon']:.3g}"
            )
        else:
            final = (
                f"final norm {classes['norm_history'][-1]:.3g}, "
                if classes["norm_history"]
                else ""
            )
            lines.append(
                f"class-space: {classes['n_solves']} solves, "
                f"{classes['total_sweeps']} sweeps, {final}{shape}"
            )
    pool = pool_summary(events)
    if pool["n_blocks"] or pool["n_planes"]:
        lines.append(
            f"shm-plane: {pool['n_planes']} planes, "
            f"{pool['n_blocks']} blocks / "
            f"{_format_bytes(pool['bytes_shared'])} shared, "
            f"{_format_bytes(pool['bytes_saved'])} saved "
            f"({pool['cache_hits']} dedupe hits, "
            f"{pool['fallbacks']} fallbacks)"
        )
    engine = engine_summary(events)
    if engine["n_epochs"]:
        lines.append(
            f"engine: {engine['n_epochs']} epochs "
            f"({engine['degraded_mode_epochs']} degraded-mode), "
            f"{engine['sla_violations']} SLA violations, "
            f"{engine['total_sweeps']} sweeps"
        )
    if payload["metrics"] is not None:
        counters = payload["metrics"].get("counters", {})
        for name, value in counters.items():
            lines.append(f"  counter {name:<28} {value:g}")
    return payload, "\n".join(lines)


def _render_convergence(
    events: list[TraceEvent],
) -> tuple[dict[str, Any], str]:
    norms = reconstruct_norm_history(events)
    payload = {
        "iterations": len(norms),
        "norm_history": norms,
        "final_norm": norms[-1] if norms else None,
    }
    lines = [f"{'iteration':>9}  norm"]
    for index, norm in enumerate(norms, start=1):
        lines.append(f"{index:>9}  {norm:.6e}")
    return payload, "\n".join(lines)


def _render_protocol(
    events: list[TraceEvent],
) -> tuple[dict[str, Any], str]:
    payload = protocol_summary(events)
    lines = ["messages by kind:"]
    for kind, count in payload["messages_by_kind"].items():
        lines.append(f"  {kind:<12} {count}")
    lines.append(f"delivered total: {payload['messages_delivered']}")
    lines.append(f"token hops: {payload['token_hops']}")
    lines.append(f"retransmissions: {payload['retransmissions']}")
    if payload["suspicions"] or payload["faults"]:
        lines.append(
            f"suspicions: {payload['suspicions']}, "
            f"faults applied: {len(payload['faults'])}, "
            f"ring reopens: {payload['ring_reopens']}"
        )
        lines.append(
            f"checkpoints: {payload['checkpoint_captures']} captured, "
            f"{payload['checkpoint_restores']} restored"
        )
    if payload["outcome"] is not None:
        lines.append(f"outcome: {payload['outcome']}")
    return payload, "\n".join(lines)


def _render_engine(
    events: list[TraceEvent],
) -> tuple[dict[str, Any], str]:
    payload = engine_summary(events)
    status_counts = ", ".join(
        f"{status}={count}"
        for status, count in payload["status_counts"].items()
    )
    lines = [
        f"epochs: {payload['n_epochs']} ({status_counts})",
        f"warm-started: {payload['warm_started']}, certified: "
        f"{payload['certified']}/{payload['solvable_epochs']} "
        f"({'all' if payload['all_certified'] else 'NOT all'} certified)",
    ]
    if payload["degraded_windows"]:
        windows = ", ".join(
            f"[{start}..{end}]" for start, end in payload["degraded_windows"]
        )
        lines.append(
            f"degraded-mode windows: {windows} "
            f"({payload['degraded_mode_epochs']} epochs)"
        )
    lines.append(
        f"SLA: {payload['sla_violations']} violations over "
        f"{payload['sla_violation_epochs']} epochs"
    )
    lines.append(
        f"sweeps: {payload['total_sweeps']} total; per-epoch histogram:"
    )
    for bucket, count in payload["sweeps_histogram"].items():
        lines.append(f"  {bucket:>8}  {count}")
    lines.append(
        f"re-equilibration latency: {payload['total_latency_s']:.4f}s total, "
        f"{payload['max_latency_s']:.4f}s worst epoch"
    )
    for error in payload["errors"]:
        lines.append(f"error: {error}")
    return payload, "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        events = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2

    if args.command == "summary":
        payload, text = _render_summary(events)
        empty = not events
    elif args.command == "convergence":
        payload, text = _render_convergence(events)
        empty = not payload["norm_history"]
    elif args.command == "engine":
        payload, text = _render_engine(events)
        empty = not payload["n_epochs"]
    else:
        payload, text = _render_protocol(events)
        empty = not payload["messages_delivered"]

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)
    if empty:
        print(
            f"repro-trace: no {args.command} data in {args.trace}",
            file=sys.stderr,
        )
        return 1
    return 0
