"""Message vocabulary of the NASH distributed protocol (paper Sec. 3).

The algorithm circulates a token ``(l, norm)`` around a logical ring of
user agents: ``l`` is the sweep (iteration) counter and ``norm``
accumulates ``|D_j^{(l)} - D_j^{(l-1)}|`` as each user updates.  When a
full circulation keeps the norm below the acceptance tolerance, the
initiator circulates a TERMINATE instead and every agent exits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["MessageKind", "Message"]


class MessageKind(Enum):
    """Protocol message types."""

    #: The best-reply token: "it is your turn to update".
    TOKEN = auto()
    #: Convergence reached; forward and stop.
    TERMINATE = auto()


@dataclass(frozen=True, slots=True)
class Message:
    """A protocol message travelling the ring.

    Attributes
    ----------
    kind:
        TOKEN or TERMINATE.
    sender, receiver:
        User indices (ring neighbours).
    sweep:
        The iteration counter ``l``.
    norm:
        Accumulated convergence norm for the current sweep.
    polls:
        Availability probes accumulated along the current circulation —
        the sampled (power-of-k) protocol's analogue of ``norm``: each
        agent adds the probes its update spent before forwarding the
        token, so the initiator reads the ring-wide poll cost of every
        sweep off the returning token.  Always zero in the
        full-information protocol.
    """

    kind: MessageKind
    sender: int
    receiver: int
    sweep: int
    norm: float = 0.0
    polls: int = 0

    def __post_init__(self) -> None:
        if self.sweep < 0:
            raise ValueError("sweep counter must be nonnegative")
        if self.norm < 0.0:
            raise ValueError("norm must be nonnegative")
        if self.polls < 0:
            raise ValueError("polls must be nonnegative")
