"""In-process message bus emulating the distributed system's network.

The reproduction cannot run on physical machines, so the Send/Recv calls
of the paper's pseudocode are realized over per-agent FIFO mailboxes.
The bus is deliberately MPI-flavoured (explicit ``send``/``recv`` with
integer ranks, as in the mpi4py idiom): a port of the agents to real MPI
ranks would only replace this class.

The bus also keeps a transcript of every delivered message, which the
tests use to check the protocol's message complexity (one token hop per
user per sweep plus one terminate circulation).

Two extension points support the fault-tolerance layers:

* **outbox hooks** (:meth:`MessageBus.add_outbox_hook`) observe every
  *first-class* send before the network touches it — the supervisor's
  write-ahead outbox log, fed even when the faulty transport then drops
  the message.  Retransmissions go through :meth:`MessageBus.resend`,
  which bypasses the hooks (a retry is not a new send).
* **delivery override** (:meth:`MessageBus._deliver`) — fault-injecting
  buses subclass the delivery step (drop, duplicate, crash-drop) without
  touching the send bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.distributed.messages import Message, MessageKind

__all__ = ["MessageBus"]


class MessageBus:
    """FIFO mailboxes for a fixed set of agents addressed by rank."""

    def __init__(self, n_agents: int, *, record_transcript: bool = True):
        if n_agents <= 0:
            raise ValueError("the bus needs at least one agent")
        self._mailboxes: tuple[deque[Message], ...] = tuple(
            deque() for _ in range(n_agents)
        )
        self._transcript: list[Message] = []
        self._record = record_transcript
        self._outbox_hooks: list[Callable[[Message], None]] = []

    @property
    def n_agents(self) -> int:
        return len(self._mailboxes)

    @property
    def transcript(self) -> tuple[Message, ...]:
        """All messages sent so far, in send order."""
        return tuple(self._transcript)

    def add_outbox_hook(self, hook: Callable[[Message], None]) -> None:
        """Observe every first-class ``send`` before delivery is attempted.

        Hooks fire even when a faulty transport subsequently drops the
        message — the sender *believes* it sent — which is exactly what a
        retransmission log needs.  ``resend`` does not fire hooks.
        """
        if not callable(hook):
            raise TypeError("outbox hook must be callable")
        self._outbox_hooks.append(hook)

    def _validate(self, message: Message) -> None:
        if not 0 <= message.receiver < self.n_agents:
            raise ValueError(f"receiver rank {message.receiver} out of range")
        if not 0 <= message.sender < self.n_agents:
            raise ValueError(f"sender rank {message.sender} out of range")

    def send(self, message: Message) -> None:
        """Deposit ``message`` into the receiver's mailbox."""
        self._validate(message)
        for hook in self._outbox_hooks:
            hook(message)
        self._deliver(message)

    def resend(self, message: Message) -> None:
        """Retransmit ``message`` without re-notifying the outbox hooks.

        The retry rides the same (possibly faulty) delivery path as the
        original, so a retransmission can itself be dropped and retried.
        """
        self._validate(message)
        self._deliver(message)

    def _deliver(self, message: Message) -> None:
        """Transport step — subclasses inject faults here."""
        self._mailboxes[message.receiver].append(message)
        if self._record:
            self._transcript.append(message)

    def recv(self, rank: int) -> Message:
        """Pop the oldest pending message for ``rank``.

        Raises ``LookupError`` when the mailbox is empty — agents in this
        runtime are only scheduled when a message is pending, so an empty
        recv indicates a protocol bug.
        """
        if not 0 <= rank < self.n_agents:
            raise ValueError(f"rank {rank} out of range")
        box = self._mailboxes[rank]
        if not box:
            raise LookupError(f"no pending message for rank {rank}")
        return box.popleft()

    def has_pending(self, rank: int) -> bool:
        return bool(self._mailboxes[rank])

    def pending_ranks(self) -> list[int]:
        """Ranks with at least one queued message, in rank order."""
        return [r for r, box in enumerate(self._mailboxes) if box]

    def clear_mailbox(self, rank: int) -> int:
        """Discard everything queued for ``rank`` (a crashed process loses
        its in-flight messages).  Returns the number discarded."""
        if not 0 <= rank < self.n_agents:
            raise ValueError(f"rank {rank} out of range")
        lost = len(self._mailboxes[rank])
        self._mailboxes[rank].clear()
        return lost

    def purge(self, kind: MessageKind) -> int:
        """Remove every queued message of ``kind`` from every mailbox.

        Used by the supervisor to cancel a stale TERMINATE wave when the
        ring is reopened after a topology change.  Returns the count.
        """
        purged = 0
        for box in self._mailboxes:
            keep = [msg for msg in box if msg.kind is not kind]
            purged += len(box) - len(keep)
            box.clear()
            box.extend(keep)
        return purged
