"""In-process message bus emulating the distributed system's network.

The reproduction cannot run on physical machines, so the Send/Recv calls
of the paper's pseudocode are realized over per-agent FIFO mailboxes.
The bus is deliberately MPI-flavoured (explicit ``send``/``recv`` with
integer ranks, as in the mpi4py idiom): a port of the agents to real MPI
ranks would only replace this class.

The bus also keeps a transcript of every delivered message, which the
tests use to check the protocol's message complexity (one token hop per
user per sweep plus one terminate circulation).
"""

from __future__ import annotations

from collections import deque

from repro.distributed.messages import Message

__all__ = ["MessageBus"]


class MessageBus:
    """FIFO mailboxes for a fixed set of agents addressed by rank."""

    def __init__(self, n_agents: int, *, record_transcript: bool = True):
        if n_agents <= 0:
            raise ValueError("the bus needs at least one agent")
        self._mailboxes: tuple[deque[Message], ...] = tuple(
            deque() for _ in range(n_agents)
        )
        self._transcript: list[Message] = []
        self._record = record_transcript

    @property
    def n_agents(self) -> int:
        return len(self._mailboxes)

    @property
    def transcript(self) -> tuple[Message, ...]:
        """All messages sent so far, in send order."""
        return tuple(self._transcript)

    def send(self, message: Message) -> None:
        """Deposit ``message`` into the receiver's mailbox."""
        if not 0 <= message.receiver < self.n_agents:
            raise ValueError(f"receiver rank {message.receiver} out of range")
        if not 0 <= message.sender < self.n_agents:
            raise ValueError(f"sender rank {message.sender} out of range")
        self._mailboxes[message.receiver].append(message)
        if self._record:
            self._transcript.append(message)

    def recv(self, rank: int) -> Message:
        """Pop the oldest pending message for ``rank``.

        Raises ``LookupError`` when the mailbox is empty — agents in this
        runtime are only scheduled when a message is pending, so an empty
        recv indicates a protocol bug.
        """
        if not 0 <= rank < self.n_agents:
            raise ValueError(f"rank {rank} out of range")
        box = self._mailboxes[rank]
        if not box:
            raise LookupError(f"no pending message for rank {rank}")
        return box.popleft()

    def has_pending(self, rank: int) -> bool:
        return bool(self._mailboxes[rank])

    def pending_ranks(self) -> list[int]:
        """Ranks with at least one queued message, in rank order."""
        return [r for r, box in enumerate(self._mailboxes) if box]
