"""Distributed execution of the NASH algorithm (paper Sec. 3).

An in-process message-passing runtime standing in for the physical
distributed system: FIFO mailboxes (:class:`MessageBus`), a shared
observable computer state (:class:`ComputerBoard`), and selfish
:class:`UserAgent` processes circulating the best-reply token around a
logical ring.

Robustness is layered: :mod:`repro.distributed.faults` survives a lossy
network (drops/duplicates), and :mod:`repro.distributed.chaos` survives a
crashy *system* — agents dying and restarting from checkpoints, and
computers failing out from under the game.
"""

from repro.distributed.chaos import (
    CrashyMessageBus,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilientAgent,
    ResilientOutcome,
    run_nash_protocol_resilient,
)
from repro.distributed.checkpoint import AgentCheckpoint, CheckpointStore
from repro.distributed.failure_detector import (
    ExponentialBackoff,
    HeartbeatFailureDetector,
)
from repro.distributed.faults import (
    DedupingAgent,
    LossyMessageBus,
    run_nash_protocol_lossy,
)
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent
from repro.distributed.runtime import ProtocolOutcome, run_nash_protocol
from repro.distributed.sampled import (
    SampledProtocolOutcome,
    SampledUserAgent,
    run_sampled_nash_protocol,
)

__all__ = [
    "AgentCheckpoint",
    "CheckpointStore",
    "CrashyMessageBus",
    "DedupingAgent",
    "ExponentialBackoff",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "HeartbeatFailureDetector",
    "LossyMessageBus",
    "ResilientAgent",
    "ResilientOutcome",
    "run_nash_protocol_lossy",
    "run_nash_protocol_resilient",
    "Message",
    "MessageKind",
    "MessageBus",
    "ComputerBoard",
    "UserAgent",
    "ProtocolOutcome",
    "SampledProtocolOutcome",
    "SampledUserAgent",
    "run_sampled_nash_protocol",
    "run_nash_protocol",
]
