"""Distributed execution of the NASH algorithm (paper Sec. 3).

An in-process message-passing runtime standing in for the physical
distributed system: FIFO mailboxes (:class:`MessageBus`), a shared
observable computer state (:class:`ComputerBoard`), and selfish
:class:`UserAgent` processes circulating the best-reply token around a
logical ring.
"""

from repro.distributed.faults import (
    DedupingAgent,
    LossyMessageBus,
    run_nash_protocol_lossy,
)
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent
from repro.distributed.runtime import ProtocolOutcome, run_nash_protocol

__all__ = [
    "DedupingAgent",
    "LossyMessageBus",
    "run_nash_protocol_lossy",
    "Message",
    "MessageKind",
    "MessageBus",
    "ComputerBoard",
    "UserAgent",
    "ProtocolOutcome",
    "run_nash_protocol",
]
