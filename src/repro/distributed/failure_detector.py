"""Heartbeat failure detection and retransmission backoff.

The supervisor of the resilient protocol cannot peek at the fault
schedule — like a real cluster manager it only *observes*: live agents
heartbeat every supervisor step, and an agent whose heartbeat is older
than ``suspect_after`` steps becomes *suspected*.  Suspicion gates
recovery: retransmissions to a suspected agent are suppressed (they
would be dropped on the floor anyway) until its heartbeat resumes, at
which point the supervisor retries immediately.

:class:`ExponentialBackoff` paces the stall-triggered retransmissions:
the first retry fires after ``base`` stalled steps, then the interval
doubles up to ``cap`` — the standard capped exponential schedule that
keeps a lossy-but-alive ring cheap to heal without hammering a dead one.
"""

from __future__ import annotations

__all__ = ["HeartbeatFailureDetector", "ExponentialBackoff"]


class HeartbeatFailureDetector:
    """Timeout-based failure detector over per-step heartbeats.

    Parameters
    ----------
    suspect_after:
        Number of silent steps after which an agent is suspected dead.
    """

    def __init__(self, suspect_after: int = 3):
        if suspect_after < 1:
            raise ValueError("suspect_after must be at least 1 step")
        self.suspect_after = int(suspect_after)
        self._last_beat: dict[int, int] = {}
        self._suspected: set[int] = set()
        #: Cumulative count of (rank, onset) suspicion events.
        self.suspicions = 0

    def beat(self, rank: int, step: int) -> None:
        """Record a heartbeat from ``rank`` at ``step``.

        A heartbeat from a suspected agent clears the suspicion — the
        in-process analogue of a process rejoining after restart.
        """
        self._last_beat[rank] = step
        self._suspected.discard(rank)

    def check(self, step: int) -> frozenset[int]:
        """Update and return the currently suspected ranks."""
        for rank, beat in self._last_beat.items():
            if rank in self._suspected:
                continue
            if step - beat > self.suspect_after:
                self._suspected.add(rank)
                self.suspicions += 1
        return frozenset(self._suspected)

    def is_suspected(self, rank: int) -> bool:
        return rank in self._suspected


class ExponentialBackoff:
    """Capped exponential retry schedule (in supervisor steps).

    >>> backoff = ExponentialBackoff(base=1, cap=8)
    >>> [backoff.advance() for _ in range(5)]
    [1, 2, 4, 8, 8]
    >>> backoff.reset(); backoff.current
    1
    """

    def __init__(self, base: int = 1, cap: int = 16):
        if base < 1:
            raise ValueError("backoff base must be at least 1")
        if cap < base:
            raise ValueError("backoff cap must be >= base")
        self.base = int(base)
        self.cap = int(cap)
        self.current = self.base

    def advance(self) -> int:
        """Return the current delay and double it (up to the cap)."""
        delay = self.current
        self.current = min(self.cap, self.current * 2)
        return delay

    def reset(self) -> None:
        """Progress observed: restart the schedule from ``base``."""
        self.current = self.base
