"""Checkpoint/recovery for the distributed protocol's user agents.

A crashed user process loses its volatile state: its dedup sweep cursor,
its last expected response time ``D_j`` (the baseline the convergence
norm is measured against), its termination flags and — for the initiator
— the norm history that decides convergence.  The supervisor therefore
snapshots every live agent periodically; when the fault layer restarts a
crashed agent, the latest snapshot is written back and the agent's flow
row is re-published on the :class:`~repro.distributed.node.ComputerBoard`
(restoring the state *other* users observe).

Checkpoints are intentionally allowed to be stale: a restored agent may
redo a sweep it had already acted on (its ``D_j`` baseline rolls back),
which inflates the circulation norm and costs extra sweeps — but never
corrupts the fixed point, because best replies are idempotent against the
board state.  That is the classic checkpoint/recovery trade-off: snapshot
interval buys recovery time, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.node import ComputerBoard, UserAgent

__all__ = ["AgentCheckpoint", "CheckpointStore"]


@dataclass(frozen=True)
class AgentCheckpoint:
    """One agent's recoverable state at a supervisor step.

    Attributes
    ----------
    rank:
        The agent's ring position.
    step:
        Supervisor step at which the snapshot was taken.
    generation:
        Ring generation (incremented by the supervisor each time the ring
        is reopened after a topology change); a snapshot from an older
        generation must not resurrect stale termination flags.
    last_acted_sweep:
        Dedup cursor — the newest token sweep the agent acted on.
    previous_time:
        The agent's ``D_j`` baseline for the convergence norm.
    finished, terminated:
        Termination flags (TERMINATE observed / forwarded).
    flows:
        The agent's published per-computer flow row (jobs/sec).
    norm_history:
        The initiator's recorded circulation norms (empty for rank != 0).
    """

    rank: int
    step: int
    generation: int
    last_acted_sweep: int
    previous_time: float
    finished: bool
    terminated: bool
    flows: tuple[float, ...]
    norm_history: tuple[float, ...]


class CheckpointStore:
    """Latest-snapshot-per-agent store with capture/restore accounting."""

    def __init__(self) -> None:
        self._latest: dict[int, AgentCheckpoint] = {}
        self.captures = 0
        self.restores = 0

    def __len__(self) -> int:
        return len(self._latest)

    def capture(
        self,
        agent: UserAgent,
        board: ComputerBoard,
        *,
        step: int = 0,
        generation: int = 0,
    ) -> AgentCheckpoint:
        """Snapshot ``agent`` (and its published flow row) as of ``step``."""
        snapshot = AgentCheckpoint(
            rank=agent.rank,
            step=step,
            generation=generation,
            last_acted_sweep=int(getattr(agent, "_last_acted_sweep", 0)),
            previous_time=float(agent._previous_time),
            finished=bool(agent.finished),
            terminated=bool(getattr(agent, "_terminated", False)),
            flows=tuple(float(f) for f in board.flows[agent.rank]),
            norm_history=tuple(agent.norm_history),
        )
        self._latest[agent.rank] = snapshot
        self.captures += 1
        return snapshot

    def latest(self, rank: int) -> AgentCheckpoint:
        """The newest snapshot for ``rank`` (KeyError if never captured)."""
        return self._latest[rank]

    def restore(
        self,
        agent: UserAgent,
        board: ComputerBoard,
        *,
        generation: int = 0,
    ) -> AgentCheckpoint:
        """Write the newest snapshot back into ``agent`` and the board.

        If the snapshot predates the current ring ``generation`` (the
        ring was reopened after the snapshot was taken), the termination
        flags are cleared — the decision they record is stale.
        """
        snapshot = self._latest[agent.rank]
        if hasattr(agent, "_last_acted_sweep"):
            agent._last_acted_sweep = snapshot.last_acted_sweep
        agent._previous_time = snapshot.previous_time
        stale_generation = snapshot.generation < generation
        agent.finished = snapshot.finished and not stale_generation
        if hasattr(agent, "_terminated"):
            agent._terminated = snapshot.terminated and not stale_generation
        agent.norm_history = list(snapshot.norm_history)
        board.publish(agent.rank, np.asarray(snapshot.flows, dtype=float))
        self.restores += 1
        return snapshot
