"""The user agent of the NASH distributed algorithm (paper Sec. 3).

Each user runs autonomously: when it receives the ring token it

1. *observes* the current available processing rate of every computer
   ("obtained by inspecting the run queue of each computer" in the paper —
   here by querying the shared :class:`ComputerBoard`, the stand-in for
   that observation);
2. runs the OPTIMAL algorithm on the observed rates to compute its best
   reply, and republishes its per-computer flows;
3. accumulates ``|D_j^{(l)} - D_j^{(l-1)}|`` into the token's norm and
   forwards the token to the next user on the ring.

The initiator (rank 0) additionally decides termination at the end of
each full circulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.best_response import optimal_fractions
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import MessageBus
from repro.telemetry.trace import DISABLED, Tracer

__all__ = ["ComputerBoard", "UserAgent"]


class ComputerBoard:
    """Shared observable state of the computers.

    Tracks each user's published flow on each computer so that any agent
    can observe the *available* rate ``mu_i - sum_{k != j} flow_ki`` — the
    distributed system's equivalent of estimating residual capacity from
    run-queue lengths.

    The board also carries the *online mask*: a computer taken offline by
    a failure advertises zero available rate, so every subsequent best
    reply routes around it (the OPTIMAL water-fill treats nonpositive
    rates as unavailable).  Bringing it back online simply restores its
    advertised capacity.
    """

    def __init__(self, service_rates: np.ndarray, n_users: int):
        mu = np.asarray(service_rates, dtype=float)
        if mu.ndim != 1 or np.any(mu <= 0.0):
            raise ValueError("service rates must be positive")
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        self._mu = mu.copy()
        self._flows = np.zeros((n_users, mu.size))
        # Aggregate published flow per computer, maintained incrementally
        # by publish() so observing the available rates is O(n) instead of
        # an O(m n) column sum per observation.
        self._total = np.zeros(mu.size)
        self._online = np.ones(mu.size, dtype=bool)

    @property
    def service_rates(self) -> np.ndarray:
        return self._mu

    @property
    def online_mask(self) -> np.ndarray:
        """Boolean mask of the computers currently online (a copy)."""
        return self._online.copy()

    @property
    def n_online(self) -> int:
        return int(self._online.sum())

    def set_computer_online(self, computer: int, online: bool = True) -> None:
        """Mark one computer as online/offline for every observer."""
        if not 0 <= computer < self._mu.size:
            raise ValueError(f"computer index {computer} out of range")
        self._online[computer] = bool(online)

    @property
    def flows(self) -> np.ndarray:
        """(users, computers) matrix of published flows (jobs/sec)."""
        return self._flows

    def publish(self, user: int, flows: np.ndarray) -> None:
        """User ``user`` re-publishes its per-computer flow vector."""
        flows = np.asarray(flows, dtype=float)
        if flows.shape != (self._mu.size,):
            raise ValueError("flow vector must have one entry per computer")
        if np.any(flows < 0.0):
            raise ValueError("flows must be nonnegative")
        self._total += flows - self._flows[user]
        self._flows[user] = flows

    def available_rates(self, user: int) -> np.ndarray:
        """Processing rate each computer can still offer ``user``.

        Offline computers advertise zero, which the OPTIMAL water-fill
        interprets as "unavailable" — best replies never route to them.
        """
        others = self._total - self._flows[user]
        return np.where(self._online, self._mu - others, 0.0)

    def available_rates_at(self, user: int, computers: np.ndarray) -> np.ndarray:
        """:meth:`available_rates` restricted to ``computers`` — O(k).

        The observation primitive of the sampled (power-of-k) protocol:
        polling ``k`` computers touches ``k`` board entries instead of
        all ``n``, which is the whole point of sampling.  Returns the
        available rates in the order of ``computers``.
        """
        idx = np.asarray(computers, dtype=np.intp)
        others = self._total[idx] - self._flows[user, idx]
        return np.where(self._online[idx], self._mu[idx] - others, 0.0)


class UserAgent:
    """One selfish user executing the ring protocol."""

    def __init__(
        self,
        rank: int,
        job_rate: float,
        board: ComputerBoard,
        bus: MessageBus,
        *,
        tolerance: float,
        max_sweeps: int,
        tracer: Tracer | None = None,
    ):
        if job_rate <= 0.0:
            raise ValueError("job rate must be positive")
        self.rank = rank
        self.job_rate = float(job_rate)
        self._board = board
        self._bus = bus
        self._tolerance = tolerance
        self._max_sweeps = max_sweeps
        self._tracer = tracer if tracer is not None else DISABLED
        self._next_rank = (rank + 1) % bus.n_agents
        self._previous_time = 0.0
        #: Probes the *last* update spent; stays zero for full-information
        #: agents, set per update by the sampled subclass so the token can
        #: accumulate the circulation's poll cost next to its norm.
        self._last_update_polls = 0
        #: Set once the agent has forwarded or received TERMINATE.
        self.finished = False
        #: Sweep norms observed by the initiator (rank 0 only).
        self.norm_history: list[float] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Initiator only: kick off the first sweep by updating itself."""
        if self.rank != 0:
            raise RuntimeError("only rank 0 starts the protocol")
        norm = self._update()
        self._bus.send(
            Message(
                kind=MessageKind.TOKEN,
                sender=self.rank,
                receiver=self._next_rank,
                sweep=1,
                norm=norm,
                polls=self._last_update_polls,
            )
        )

    def handle(self, message: Message) -> None:
        """Process one received message, dispatching on its kind."""
        if self.finished:
            raise RuntimeError(f"agent {self.rank} received a message after exit")
        if message.kind is MessageKind.TERMINATE:
            self._handle_terminate(message)
        elif message.kind is MessageKind.TOKEN:
            self._handle_token(message)
        else:  # pragma: no cover - unreachable until MessageKind grows
            raise ValueError(
                f"agent {self.rank} has no dispatch for {message.kind!r}"
            )

    def _handle_terminate(self, message: Message) -> None:
        # Forward around the ring until it is back at the initiator.
        self.finished = True
        if self._next_rank != 0:
            self._bus.send(
                Message(
                    kind=MessageKind.TERMINATE,
                    sender=self.rank,
                    receiver=self._next_rank,
                    sweep=message.sweep,
                )
            )

    def _handle_token(self, message: Message) -> None:
        if self.rank == 0:
            # The token completed a circulation: decide termination.
            self.norm_history.append(message.norm)
            if self._tracer.enabled:
                # The initiator's record of one completed circulation —
                # index mirrors the position in norm_history so a trace
                # replays the exact history (docs/OBSERVABILITY.md).
                self._tracer.emit(
                    "protocol.sweep",
                    index=len(self.norm_history) - 1,
                    sweep=message.sweep,
                    norm=message.norm,
                )
            self._record_circulation(message)
            if self._should_terminate(message):
                self.finished = True
                if self._next_rank != 0:
                    self._bus.send(
                        Message(
                            kind=MessageKind.TERMINATE,
                            sender=self.rank,
                            receiver=self._next_rank,
                            sweep=message.sweep,
                        )
                    )
                return
            norm = self._update()
            self._bus.send(
                Message(
                    kind=MessageKind.TOKEN,
                    sender=self.rank,
                    receiver=self._next_rank,
                    sweep=message.sweep + 1,
                    norm=norm,
                    polls=self._last_update_polls,
                )
            )
        else:
            norm = message.norm + self._update_delta()
            self._bus.send(
                Message(
                    kind=MessageKind.TOKEN,
                    sender=self.rank,
                    receiver=self._next_rank,
                    sweep=message.sweep,
                    norm=norm,
                    polls=message.polls + self._last_update_polls,
                )
            )

    # ------------------------------------------------------------------
    def _record_circulation(self, message: Message) -> None:
        """Initiator hook: one token circulation just completed.

        A no-op here; the sampled protocol's initiator overrides it to
        emit the per-circulation ``protocol.sample`` poll accounting.
        """

    def _should_terminate(self, message: Message) -> bool:
        """Initiator's acceptance test on a completed circulation.

        Extracted so resilient agents can harden it (e.g. refuse to
        accept a norm measured partly before a topology change).
        """
        return message.norm <= self._tolerance or message.sweep >= self._max_sweeps

    def _update(self) -> float:
        """Initiator's update: returns the fresh norm for the new sweep."""
        return self._update_delta()

    def _update_delta(self) -> float:
        """Observe, best-reply, publish; return ``|D_j new - D_j old|``."""
        available = self._board.available_rates(self.rank)
        reply = optimal_fractions(available, self.job_rate)
        self._board.publish(self.rank, reply.fractions * self.job_rate)
        delta = abs(reply.expected_response_time - self._previous_time)
        self._previous_time = reply.expected_response_time
        return delta
